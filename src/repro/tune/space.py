"""Declarative parameter spaces and the controller tunable registry.

A :class:`Param` describes one searchable knob — bounds, optional log scale,
optional integrality — and maps between its native range and the unit cube
the optimizer works in.  A :class:`ParamSpace` bundles several params.

Every controller kind in :data:`repro.adapt.spec._CONTROLLER_KINDS` registers
its tunable parameters here (the contract test in ``tests/test_control.py``
enforces coverage), so any spec rule that declares ``tune = true`` yields a
search space via :func:`spec_space` without further configuration:

>>> from repro.tune.space import controller_tunables
>>> [p.name for p in controller_tunables("proportional")]
['gain', 'max_step']
>>> p = controller_tunables("proportional")[0]
>>> (p.low, p.high, p.log)
(0.05, 32.0, True)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.adapt.spec import _CONTROLLER_KINDS, AdaptSpec, LoopSpec, SpecError

__all__ = [
    "Param",
    "ParamSpace",
    "TuneError",
    "controller_tunables",
    "register_tunables",
    "spec_space",
    "apply_values",
    "KIND_BY_CONTROLLER",
]


class TuneError(ValueError):
    """A tuning request is malformed (no tunables, bad bounds, ...)."""


@dataclass(frozen=True, slots=True)
class Param:
    """One searchable scalar: bounds, scale, and integrality.

    >>> gain = Param("gain", 0.05, 32.0, default=1.0, log=True)
    >>> round(gain.from_unit(gain.to_unit(4.0)), 6)
    4.0
    >>> steps = Param("max_step", 1, 16, default=4, integer=True)
    >>> steps.from_unit(0.0), steps.from_unit(1.0)
    (1, 16)
    """

    name: str
    low: float
    high: float
    default: float
    log: bool = False
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise TuneError("param needs a name")
        if not (self.low < self.high):
            raise TuneError(f"param {self.name!r}: need low < high, got [{self.low}, {self.high}]")
        if self.log and self.low <= 0:
            raise TuneError(f"param {self.name!r}: log scale needs low > 0, got {self.low}")
        if not (self.low <= self.default <= self.high):
            raise TuneError(
                f"param {self.name!r}: default {self.default} outside [{self.low}, {self.high}]"
            )

    def to_unit(self, value: float) -> float:
        """Map a native value into [0, 1] (clipping to the bounds)."""
        value = min(max(float(value), self.low), self.high)
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> float | int:
        """Map a [0, 1] coordinate back to a native (possibly integer) value."""
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            value = math.exp(
                math.log(self.low) + unit * (math.log(self.high) - math.log(self.low))
            )
        else:
            value = self.low + unit * (self.high - self.low)
        if self.integer:
            return int(min(max(round(value), self.low), self.high))
        return value

    def clamped_default(self, value: Any | None) -> "Param":
        """This param with its default replaced by ``value`` clamped in-bounds."""
        if value is None:
            return self
        try:
            clamped = min(max(float(value), self.low), self.high)
        except (TypeError, ValueError):
            return self
        return replace(self, default=clamped)


@dataclass(frozen=True)
class ParamSpace:
    """An ordered bundle of :class:`Param` defining one search space.

    >>> space = ParamSpace([
    ...     Param("gain", 0.05, 32.0, default=1.0, log=True),
    ...     Param("max_step", 1, 16, default=4, integer=True),
    ... ])
    >>> space.dimension
    2
    >>> decoded = space.decode(space.initial())
    >>> (round(decoded["gain"], 6), decoded["max_step"])
    (1.0, 4)
    """

    params: tuple[Param, ...] = field(default_factory=tuple)

    def __init__(self, params: Sequence[Param]) -> None:
        object.__setattr__(self, "params", tuple(params))
        if not self.params:
            raise TuneError("a parameter space needs at least one param")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise TuneError(f"duplicate param names in space: {names}")

    @property
    def dimension(self) -> int:
        return len(self.params)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def initial(self) -> np.ndarray:
        """The defaults as a unit-cube vector (the search start point)."""
        return np.array([p.to_unit(p.default) for p in self.params], dtype=np.float64)

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clip a genotype vector into the unit cube."""
        return np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)

    def decode(self, x: np.ndarray) -> dict[str, float | int]:
        """Unit-cube vector → named native values."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.dimension,):
            raise TuneError(f"expected shape ({self.dimension},), got {x.shape}")
        return {p.name: p.from_unit(float(u)) for p, u in zip(self.params, x)}

    def encode(self, values: Mapping[str, Any]) -> np.ndarray:
        """Named native values → unit-cube vector (missing keys use defaults)."""
        return np.array(
            [p.to_unit(float(values.get(p.name, p.default))) for p in self.params],
            dtype=np.float64,
        )


# --------------------------------------------------------------------- #
# Controller tunable registry
# --------------------------------------------------------------------- #

#: Builds the tunables for one controller kind given the rule's own options
#: (ladder needs ``levels`` to bound ``initial_level``).
TunableFactory = Callable[[Mapping[str, Any]], tuple[Param, ...]]

_TUNABLES: dict[str, TunableFactory] = {}


def register_tunables(kind: str, factory: TunableFactory) -> None:
    """Register (or override) the tunable metadata for a controller kind."""
    _TUNABLES[str(kind)] = factory


def controller_tunables(
    kind: str, options: Mapping[str, Any] | None = None
) -> tuple[Param, ...]:
    """The searchable parameters of controller ``kind``.

    ``options`` is the spec rule's ``controller_options``; it both
    parameterizes bounds (ladder rung count) and seeds defaults so the
    search starts from the hand-written values.
    """
    if kind not in _TUNABLES:
        raise TuneError(
            f"no tunables registered for controller kind {kind!r}; known: {sorted(_TUNABLES)}"
        )
    options = options or {}
    return tuple(p.clamped_default(options.get(p.name)) for p in _TUNABLES[kind](options))


def _step_tunables(options: Mapping[str, Any]) -> tuple[Param, ...]:
    return (Param("step", 1, 16, default=1, integer=True),)


def _proportional_tunables(options: Mapping[str, Any]) -> tuple[Param, ...]:
    return (
        Param("gain", 0.05, 32.0, default=1.0, log=True),
        Param("max_step", 1, 16, default=4, integer=True),
    )


def _pid_tunables(options: Mapping[str, Any]) -> tuple[Param, ...]:
    return (
        Param("kp", 1e-3, 64.0, default=1.0, log=True),
        Param("ki", 1e-4, 16.0, default=0.2, log=True),
        Param("kd", 0.0, 8.0, default=0.0),
    )


def _ladder_tunables(options: Mapping[str, Any]) -> tuple[Param, ...]:
    params = [Param("climb_margin", 0.0, 2.0, default=0.25)]
    levels = int(options.get("levels", 0))
    if levels >= 2:
        params.append(Param("initial_level", 0, levels - 1, default=0, integer=True))
    return tuple(params)


register_tunables("step", _step_tunables)
register_tunables("proportional", _proportional_tunables)
register_tunables("pid", _pid_tunables)
register_tunables("ladder", _ladder_tunables)

#: Controller class name → spec kind, for the contract test to pivot on.
KIND_BY_CONTROLLER: dict[str, str] = {
    "StepController": "step",
    "ProportionalStepController": "proportional",
    "PIDController": "pid",
    "LadderController": "ladder",
}

assert set(_TUNABLES) == set(_CONTROLLER_KINDS), "tunable registry drifted from spec kinds"


# --------------------------------------------------------------------- #
# Spec-level spaces
# --------------------------------------------------------------------- #

def _qualified(index: int, name: str) -> str:
    return f"loops[{index}].{name}"


def spec_space(spec: AdaptSpec) -> ParamSpace:
    """The joint search space over every ``tune = true`` rule in ``spec``.

    Param names are qualified as ``loops[<index>].<option>`` so
    :func:`apply_values` can route tuned values back to their rules.
    Defaults come from each rule's own ``controller_options`` (clamped
    in-bounds), so the search starts at the hand-written spec.
    """
    params: list[Param] = []
    for index, rule in enumerate(spec.loops):
        if not rule.tune:
            continue
        for param in controller_tunables(rule.controller, rule.controller_options):
            params.append(replace(param, name=_qualified(index, param.name)))
    if not params:
        raise TuneError("spec has no rules with tune = true; nothing to search")
    return ParamSpace(params)


def apply_values(spec: AdaptSpec, values: Mapping[str, float | int]) -> AdaptSpec:
    """A copy of ``spec`` with tuned controller options substituted.

    ``values`` uses the qualified names produced by :func:`spec_space`.
    """
    updates: dict[int, dict[str, float | int]] = {}
    for name, value in values.items():
        if not (name.startswith("loops[") and "]." in name):
            raise TuneError(f"unqualified tuned value {name!r}; expected 'loops[i].option'")
        index_text, option = name[len("loops["):].split("].", 1)
        try:
            index = int(index_text)
            rule = spec.loops[index]
        except (ValueError, IndexError) as exc:
            raise TuneError(f"tuned value {name!r} names no rule in the spec") from exc
        if not rule.tune:
            raise TuneError(f"tuned value {name!r} targets a rule without tune = true")
        updates.setdefault(index, {})[option] = value
    loops = []
    for index, rule in enumerate(spec.loops):
        if index in updates:
            options = dict(rule.controller_options)
            options.update(updates[index])
            rule = replace(rule, controller_options=options)
        loops.append(rule)
    try:
        return AdaptSpec(
            loops,
            window=spec.window,
            liveness_timeout=spec.liveness_timeout,
            num_shards=spec.num_shards,
            interval=spec.interval,
            min_beats=spec.min_beats,
            attach=spec.attach,
        )
    except SpecError as exc:  # pragma: no cover - registry bounds keep options valid
        raise TuneError(f"tuned values produced an invalid spec: {exc}") from exc
