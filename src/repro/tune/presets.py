"""Bundled hand-written AdaptSpecs the tuner starts from (and must beat).

The values here are deliberately the kind of conservative first guess a
human writes before measuring anything: a proportional controller with a
modest gain and single-core steps.  They hold the window eventually, but
ramp slowly — which is exactly what gives `repro tune` something to improve
and the regression tests something to pin.

>>> spec = scheduler_preset()
>>> [rule.tune for rule in spec.loops]
[True]
>>> spec.loops[0].controller
'proportional'
"""

from __future__ import annotations

from repro.adapt.spec import AdaptSpec

__all__ = ["scheduler_preset", "PRESET_SPECS"]


def scheduler_preset() -> AdaptSpec:
    """The hand-written core-allocation spec for the simulated scheduler fleet."""
    return AdaptSpec.from_dict(
        {
            "engine": {"window": 8, "min_beats": 2},
            "loops": [
                {
                    "match": "sim-*",
                    "actuator": "cores",
                    "target": [10.0, 12.0],
                    "controller": {"kind": "proportional", "gain": 0.4, "max_step": 1},
                    "tune": True,
                }
            ],
        }
    )


#: Preset name → builder, the names ``repro tune --spec`` accepts directly.
PRESET_SPECS = {"scheduler": scheduler_preset}
