"""The tuning driver: IPOP restarts, evaluation islands, metrics, flight log.

:class:`Tuner` wires the pieces together: it derives the search space from
the spec's ``tune = true`` rules, runs CMA-ES (restarting with a doubled
population whenever the strategy converges before the evaluation budget is
spent — the IPOP scheme) or the random-search baseline, and evaluates
candidates either inline or on a pool of worker processes
(``concurrent.futures``; candidates cross the boundary as plain dicts).

Determinism: every candidate's evaluation seed is a pure function of the
tuner seed, restart number, and generation — candidates within a generation
share one seed (common random numbers, so ranking compares gains rather
than noise draws) and generations rotate it (so the search cannot overfit
one noise realization).  The final baseline-versus-tuned comparison uses a
held-out seed no search generation ever saw.

>>> from repro.tune.objective import EvaluationConfig
>>> from repro.tune.presets import scheduler_preset
>>> cfg = EvaluationConfig(streams=2, ticks=6, beats_per_tick=2)
>>> tuner = Tuner(scheduler_preset(), config=cfg, budget=8, popsize=4, seed=3)
>>> result = tuner.run()
>>> result.evaluations >= 8
True
>>> sorted(result.best_values)
['loops[0].gain', 'loops[0].max_step']
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Union

import numpy as np

from repro.adapt.spec import AdaptSpec
from repro.obs import MetricsRegistry
from repro.tune.cmaes import CMAES, RandomSearch
from repro.tune.emit import FlightLog
from repro.tune.objective import (
    EvalResult,
    EvaluationConfig,
    evaluate_payload,
    evaluate_spec,
)
from repro.tune.space import ParamSpace, TuneError, apply_values, spec_space

__all__ = ["Tuner", "TuneResult", "STRATEGIES"]

STRATEGIES = ("cmaes", "random")

#: Offset mixing the held-out comparison seed away from every search seed.
_HOLDOUT_SEED_OFFSET = 86_028_121


@dataclass(frozen=True, slots=True)
class TuneResult:
    """Outcome of one :meth:`Tuner.run`."""

    strategy: str
    evaluations: int
    generations: int
    restarts: int
    best_values: dict[str, float | int]
    best_score: float
    spec: AdaptSpec
    baseline_result: EvalResult
    tuned_result: EvalResult

    @property
    def baseline_score(self) -> float:
        return self.baseline_result.score

    @property
    def tuned_score(self) -> float:
        return self.tuned_result.score

    @property
    def improved(self) -> bool:
        """Did tuning beat the hand-written spec on the held-out evaluation?"""
        return self.tuned_result.settle_median < self.baseline_result.settle_median


class Tuner:
    """Population-based search over one spec's tunable controller options."""

    def __init__(
        self,
        spec: AdaptSpec,
        *,
        config: EvaluationConfig | None = None,
        strategy: str = "cmaes",
        budget: int = 64,
        popsize: int | None = None,
        sigma0: float = 0.3,
        workers: int = 0,
        seed: int = 0,
        max_restarts: int = 4,
        metrics: MetricsRegistry | None = None,
        flight_log: FlightLog | None = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise TuneError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
        if budget < 1:
            raise TuneError(f"budget must be >= 1, got {budget}")
        self.spec = spec
        self.space: ParamSpace = spec_space(spec)
        self.config = config if config is not None else EvaluationConfig()
        self.strategy = strategy
        self.budget = int(budget)
        self.popsize = popsize
        self.sigma0 = float(sigma0)
        self.workers = int(workers)
        self.seed = int(seed)
        self.max_restarts = int(max_restarts)
        self.log = flight_log
        metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics = metrics
        self._evaluations = metrics.counter(
            "tune_evaluations_total", help="Objective evaluations performed."
        )
        self._generation_best = metrics.gauge(
            "tune_generation_best", help="Best score seen in the latest generation."
        )
        self._eval_duration = metrics.histogram(
            "tune_evaluation_duration_seconds", help="Wall seconds per evaluation."
        )

    # ------------------------------------------------------------------ #
    def _make_strategy(self, restart: int) -> Union[CMAES, RandomSearch]:
        if self.strategy == "random":
            return RandomSearch(
                self.space.dimension,
                popsize=self.popsize or 8,
                seed=self.seed,
            )
        popsize = self.popsize or (4 + int(3 * np.log(self.space.dimension + 1)))
        return CMAES(
            self.space.initial(),
            sigma0=self.sigma0,
            popsize=popsize * (2**restart),
            seed=self.seed + restart,
        )

    def _evaluate_batch(
        self, specs: list[AdaptSpec], config: EvaluationConfig, pool: ProcessPoolExecutor | None
    ) -> list[EvalResult]:
        payloads = [{"spec": s.to_dict(), "config": config.to_dict()} for s in specs]
        if pool is None:
            raws = [evaluate_payload(p) for p in payloads]
        else:
            raws = list(pool.map(evaluate_payload, payloads))
        results = []
        for raw in raws:
            self._evaluations.inc()
            self._eval_duration.observe(float(raw.get("elapsed_seconds", 0.0)))
            results.append(EvalResult.from_dict(raw))
        return results

    def run(self) -> TuneResult:
        """Search until the budget is spent, then compare against the baseline."""
        pool = ProcessPoolExecutor(max_workers=self.workers) if self.workers > 0 else None
        try:
            return self._run(pool)
        finally:
            if pool is not None:
                pool.shutdown()

    def _run(self, pool: ProcessPoolExecutor | None) -> TuneResult:
        spent = 0
        generations = 0
        restart = 0
        best_score = float("inf")
        best_values: dict[str, float | int] = self.space.decode(self.space.initial())
        while spent < self.budget and restart <= self.max_restarts:
            strategy = self._make_strategy(restart)
            if self.log is not None:
                self.log.write(
                    "restart", restart=restart, strategy=self.strategy,
                    popsize=strategy.popsize,
                )
            while spent < self.budget and strategy.stop() is None:
                genotypes = strategy.ask()
                values = [self.space.decode(self.space.clip(g)) for g in genotypes]
                candidates = [apply_values(self.spec, v) for v in values]
                gen_seed = self.seed + 1_000 * restart + generations
                config = replace(self.config, seed=gen_seed)
                started = time.perf_counter()
                results = self._evaluate_batch(candidates, config, pool)
                elapsed = time.perf_counter() - started
                scores = [r.score for r in results]
                strategy.tell(genotypes, scores)
                gen_best = int(np.argmin(scores))
                if scores[gen_best] < best_score:
                    best_score = scores[gen_best]
                    best_values = values[gen_best]
                self._generation_best.set(scores[gen_best])
                spent += len(results)
                generations += 1
                if self.log is not None:
                    for k, (v, r) in enumerate(zip(values, results)):
                        self.log.write(
                            "evaluation", generation=generations - 1, candidate=k,
                            seed=gen_seed, values=v, **r.to_dict(),
                        )
                    self.log.write(
                        "generation", generation=generations - 1, seed=gen_seed,
                        best_score=scores[gen_best], best_values=values[gen_best],
                        evaluations=spent, elapsed_seconds=elapsed,
                    )
            if self.strategy == "random":
                break  # random search never converges; one pass spends the budget
            restart += 1

        tuned_spec = apply_values(self.spec, best_values)
        holdout = replace(self.config, seed=self.seed + _HOLDOUT_SEED_OFFSET)
        baseline_result, tuned_result = self._evaluate_batch(
            [self.spec, tuned_spec], holdout, pool
        )
        result = TuneResult(
            strategy=self.strategy,
            evaluations=spent,
            generations=generations,
            restarts=restart if self.strategy != "random" else 0,
            best_values=best_values,
            best_score=best_score,
            spec=tuned_spec,
            baseline_result=baseline_result,
            tuned_result=tuned_result,
        )
        if self.log is not None:
            self.log.write(
                "result", strategy=self.strategy, evaluations=spent,
                generations=generations, best_score=best_score,
                best_values=best_values, baseline=baseline_result.to_dict(),
                tuned=tuned_result.to_dict(), improved=result.improved,
            )
        return result


def tune_spec(spec: AdaptSpec, **kwargs: Any) -> TuneResult:
    """One-call convenience: ``Tuner(spec, **kwargs).run()``."""
    return Tuner(spec, **kwargs).run()
