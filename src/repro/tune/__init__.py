"""Population-based auto-tuning of controller gains and AdaptSpecs.

Controller gains, ladder rungs, and spec target windows were hand-picked
until this subsystem landed.  `repro tune` closes the loop the way the
paper's own experiments suggest: the simulated execution engine is a cheap,
deterministic evaluator, so a population-based search (CMA-ES with
increasing-population restarts) can score candidate gains against simulated
fleets and emit a tuned, validated AdaptSpec TOML.

The pieces:

- :mod:`repro.tune.space` — declarative parameter spaces plus the
  tunable-parameter registry covering every ``repro.control`` controller kind.
- :mod:`repro.tune.objective` — the evaluation harness: a
  ``ControlLoop``/``AdaptationEngine`` fleet over per-stream simulated
  machines, scored from :class:`~repro.adapt.loop.DecisionTrace` records.
- :mod:`repro.tune.cmaes` — dependency-free CMA-ES and the random-search
  baseline.
- :mod:`repro.tune.optimizer` — the search driver: IPOP restarts,
  multiprocess evaluation islands, deterministic per-candidate seeding,
  ``obs`` metrics and the JSONL flight log.
- :mod:`repro.tune.emit` — tuned-spec emission with round-trip validation.
- :mod:`repro.tune.presets` — bundled hand-written baseline specs.
"""

from repro.tune.cmaes import CMAES, RandomSearch
from repro.tune.emit import FlightLog, write_tuned_spec
from repro.tune.objective import EvalResult, EvaluationConfig, evaluate_spec
from repro.tune.optimizer import TuneResult, Tuner
from repro.tune.presets import PRESET_SPECS, scheduler_preset
from repro.tune.space import (
    Param,
    ParamSpace,
    apply_values,
    controller_tunables,
    register_tunables,
    spec_space,
)

__all__ = [
    "CMAES",
    "EvalResult",
    "EvaluationConfig",
    "FlightLog",
    "PRESET_SPECS",
    "Param",
    "ParamSpace",
    "RandomSearch",
    "TuneResult",
    "Tuner",
    "apply_values",
    "controller_tunables",
    "evaluate_spec",
    "register_tunables",
    "scheduler_preset",
    "spec_space",
    "write_tuned_spec",
]
