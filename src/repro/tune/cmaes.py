"""Dependency-free CMA-ES and a random-search baseline.

The implementation follows Hansen's tutorial formulation of (μ/μ_w, λ)-CMA-ES
— rank-based recombination weights, cumulative step-size adaptation, and a
rank-one plus rank-μ covariance update — on top of numpy only.  Increasing-
population (IPOP) restarts live in :mod:`repro.tune.optimizer`, which
re-instantiates the strategy with a doubled ``popsize`` when it converges;
both strategies here expose the same deterministic ask/tell interface:

>>> import numpy as np
>>> es = CMAES(np.full(3, 0.5), sigma0=0.3, seed=7)
>>> for _ in range(30):
...     xs = es.ask()
...     es.tell(xs, [float(np.sum((x - 0.2) ** 2)) for x in xs])
>>> bool(np.all(np.abs(es.best_x - 0.2) < 0.05))
True

Minimization throughout: lower objective values are better.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["CMAES", "RandomSearch"]


class CMAES:
    """(μ/μ_w, λ) covariance-matrix-adaptation evolution strategy.

    Parameters
    ----------
    x0:
        Initial mean (genotype space; callers clip/decode phenotypes).
    sigma0:
        Initial step size.
    popsize:
        Offspring per generation λ; defaults to ``4 + 3·ln(n)``.
    seed:
        Seed for the strategy's private generator; sampling is fully
        deterministic given the seed and the tell history.
    tolfun / tolx / maxiter:
        Convergence criteria: best-objective spread across recent
        generations, step-size collapse, and a generation cap.
    """

    def __init__(
        self,
        x0: np.ndarray,
        *,
        sigma0: float = 0.3,
        popsize: int | None = None,
        seed: int = 0,
        tolfun: float = 1e-9,
        tolx: float = 1e-11,
        maxiter: int = 1000,
    ) -> None:
        self.mean = np.array(x0, dtype=np.float64).ravel()
        self.n = len(self.mean)
        if self.n == 0:
            raise ValueError("CMA-ES needs at least one dimension")
        if sigma0 <= 0:
            raise ValueError(f"sigma0 must be positive, got {sigma0}")
        self.sigma = float(sigma0)
        self.popsize = int(popsize) if popsize else 4 + int(3 * math.log(self.n + 1))
        if self.popsize < 2:
            raise ValueError(f"popsize must be >= 2, got {self.popsize}")
        self.rng = np.random.default_rng(seed)
        self.tolfun = float(tolfun)
        self.tolx = float(tolx)
        self.maxiter = int(maxiter)

        # Recombination weights (Hansen's defaults).
        self.mu = self.popsize // 2
        weights = np.log(self.mu + 0.5) - np.log(np.arange(1, self.mu + 1))
        self.weights = weights / weights.sum()
        self.mueff = float(1.0 / np.sum(self.weights**2))

        n = float(self.n)
        self.cc = (4 + self.mueff / n) / (n + 4 + 2 * self.mueff / n)
        self.cs = (self.mueff + 2) / (n + self.mueff + 5)
        self.c1 = 2 / ((n + 1.3) ** 2 + self.mueff)
        self.cmu = min(
            1 - self.c1,
            2 * (self.mueff - 2 + 1 / self.mueff) / ((n + 2) ** 2 + self.mueff),
        )
        self.damps = 1 + 2 * max(0.0, math.sqrt((self.mueff - 1) / (n + 1)) - 1) + self.cs
        self.chi_n = math.sqrt(n) * (1 - 1 / (4 * n) + 1 / (21 * n * n))

        self.pc = np.zeros(self.n)
        self.ps = np.zeros(self.n)
        self.C = np.eye(self.n)
        self._decompose()

        self.generation = 0
        self.best_x = self.mean.copy()
        self.best_f = math.inf
        self._recent_best: list[float] = []
        self._pending: np.ndarray | None = None

    def _decompose(self) -> None:
        self.C = np.triu(self.C) + np.triu(self.C, 1).T  # enforce symmetry
        eigvals, eigvecs = np.linalg.eigh(self.C)
        eigvals = np.maximum(eigvals, 1e-20)
        self._B = eigvecs
        self._D = np.sqrt(eigvals)
        self._inv_sqrt_C = eigvecs @ np.diag(1.0 / self._D) @ eigvecs.T

    # ------------------------------------------------------------------ #
    # Ask / tell
    # ------------------------------------------------------------------ #
    def ask(self) -> list[np.ndarray]:
        """Sample λ candidate genotypes for this generation."""
        z = self.rng.standard_normal((self.popsize, self.n))
        y = z @ (self._B * self._D).T
        self._pending = y
        return [self.mean + self.sigma * yi for yi in y]

    def tell(self, xs: list[np.ndarray], fs: list[float]) -> None:
        """Rank the evaluated candidates and update mean, paths, C, sigma."""
        if self._pending is None:
            raise RuntimeError("tell() before ask()")
        if len(xs) != self.popsize or len(fs) != self.popsize:
            raise ValueError(f"expected {self.popsize} candidates, got {len(xs)}/{len(fs)}")
        order = np.argsort(np.asarray(fs, dtype=np.float64), kind="stable")
        y = self._pending[order[: self.mu]]
        self._pending = None

        y_w = self.weights @ y
        self.mean = self.mean + self.sigma * y_w

        self.ps = (1 - self.cs) * self.ps + math.sqrt(
            self.cs * (2 - self.cs) * self.mueff
        ) * (self._inv_sqrt_C @ y_w)
        expected_decay = math.sqrt(
            1 - (1 - self.cs) ** (2 * (self.generation + 1))
        )
        hsig = float(
            np.linalg.norm(self.ps) / expected_decay / self.chi_n < 1.4 + 2 / (self.n + 1)
        )
        self.pc = (1 - self.cc) * self.pc + hsig * math.sqrt(
            self.cc * (2 - self.cc) * self.mueff
        ) * y_w

        rank_mu = (y * self.weights[:, None]).T @ y
        self.C = (
            (1 - self.c1 - self.cmu) * self.C
            + self.c1
            * (np.outer(self.pc, self.pc) + (1 - hsig) * self.cc * (2 - self.cc) * self.C)
            + self.cmu * rank_mu
        )
        self.sigma *= math.exp(
            (self.cs / self.damps) * (np.linalg.norm(self.ps) / self.chi_n - 1)
        )
        self._decompose()
        self.generation += 1

        gen_best = int(order[0])
        if fs[gen_best] < self.best_f:
            self.best_f = float(fs[gen_best])
            self.best_x = np.array(xs[gen_best], dtype=np.float64)
        self._recent_best.append(float(fs[gen_best]))
        if len(self._recent_best) > 10 + int(30 * self.n / self.popsize):
            self._recent_best.pop(0)

    def stop(self) -> str | None:
        """The convergence reason, or ``None`` while the search should go on."""
        if self.generation >= self.maxiter:
            return "maxiter"
        history = self._recent_best
        if len(history) >= 10 and max(history) - min(history) < self.tolfun:
            return "tolfun"
        if self.sigma * float(np.max(self._D)) < self.tolx:
            return "tolx"
        if not np.all(np.isfinite(self.C)):  # pragma: no cover - defensive
            return "divergence"
        return None


class RandomSearch:
    """Uniform random sampling with the CMA-ES ask/tell interface.

    The baseline `repro tune --strategy random` runs, and the floor the
    tune-smoke CI step pins CMA-ES against.  Samples uniformly in the unit
    cube around no structure at all; never converges on its own (``stop()``
    only triggers on the generation cap).

    >>> rs = RandomSearch(3, popsize=8, seed=1)
    >>> xs = rs.ask()
    >>> rs.tell(xs, [float(x.sum()) for x in xs])
    >>> rs.best_f <= 1.5
    True
    """

    def __init__(
        self,
        dimension: int,
        *,
        popsize: int = 8,
        seed: int = 0,
        maxiter: int = 1000,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.n = int(dimension)
        self.popsize = int(popsize)
        if self.popsize < 1:
            raise ValueError(f"popsize must be >= 1, got {self.popsize}")
        self.rng = np.random.default_rng(seed)
        self.maxiter = int(maxiter)
        self.generation = 0
        self.best_x = np.full(self.n, 0.5)
        self.best_f = math.inf

    def ask(self) -> list[np.ndarray]:
        return [self.rng.random(self.n) for _ in range(self.popsize)]

    def tell(self, xs: list[np.ndarray], fs: list[float]) -> None:
        for x, f in zip(xs, fs):
            if f < self.best_f:
                self.best_f = float(f)
                self.best_x = np.array(x, dtype=np.float64)
        self.generation += 1

    def stop(self) -> str | None:
        return "maxiter" if self.generation >= self.maxiter else None
