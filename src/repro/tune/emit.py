"""Tuned-spec emission and the JSONL tuning flight log.

:func:`write_tuned_spec` is the last step of `repro tune`: serialize the
tuned :class:`~repro.adapt.spec.AdaptSpec` to TOML, prove the text parses
back to an equal spec, and only then move it into place (atomic rename, so
a crash never leaves a half-written spec behind).  On Python 3.10 — where
:mod:`tomllib` does not exist — validation falls back to the dict round
trip, which exercises the same ``from_mapping`` path.

:class:`FlightLog` is the tuner's black box: one JSON object per line, an
event per evaluation and per generation, flushed as written so a killed run
still leaves a readable trace.

>>> import io, json
>>> buffer = io.StringIO()
>>> log = FlightLog(buffer)
>>> log.write("evaluation", candidate=0, score=1.5)
>>> json.loads(buffer.getvalue())["event"]
'evaluation'
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from typing import IO, Any, Union

from repro.adapt.spec import AdaptSpec, SpecError

__all__ = ["FlightLog", "write_tuned_spec"]


class FlightLog:
    """Append-only JSONL event stream for one tuning run.

    Accepts an open text file or a path; owns (and closes) the handle only
    when it opened the file itself.  Usable as a context manager.
    """

    def __init__(self, sink: Union[str, os.PathLike[str], IO[str]]) -> None:
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(os.fspath(sink), "w", encoding="utf-8")  # type: ignore[arg-type]
            self._owns = True
        self.records = 0

    def write(self, event: str, **fields: Any) -> None:
        """Append one event line (``{"event": ..., **fields}``) and flush."""
        record = {"event": event}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.records += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "FlightLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _validate_round_trip(spec: AdaptSpec, text: str) -> None:
    if sys.version_info >= (3, 11):
        parsed = AdaptSpec.parse(text)
    else:  # pragma: no cover - tomllib-less interpreters only
        parsed = AdaptSpec.from_dict(spec.to_dict())
    if parsed != spec:
        raise SpecError("emitted spec did not round-trip to an equal AdaptSpec")


def write_tuned_spec(spec: AdaptSpec, path: Union[str, os.PathLike[str]]) -> str:
    """Write ``spec`` as validated TOML at ``path``; returns the emitted text.

    The text is parsed back and compared for equality *before* the atomic
    rename, so an emitter regression can never produce an unloadable file.
    """
    text = spec.to_toml()
    _validate_round_trip(spec, text)
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=".tuned-", suffix=".toml", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return text
