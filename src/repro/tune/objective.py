"""The tuning objective: score an AdaptSpec against a simulated fleet.

:func:`evaluate_spec` builds one independent simulated plant per stream —
its own :class:`~repro.clock.SimulatedClock`, machine, and execution engine,
so rate windows never see another stream's time — attaches every stream to a
shared :class:`~repro.core.aggregator.HeartbeatAggregator`, and drives the
spec's :class:`~repro.adapt.engine.AdaptationEngine` for a fixed number of
adaptation ticks.  Scoring reads the recorded per-tick rates and the
engine's :class:`~repro.adapt.loop.DecisionTrace` records:

- **settle time** — per stream, the simulated time of the last tick whose
  rate sat outside the target window (a stream that never settles is charged
  twice its whole run); the median across streams is the headline number.
- **overshoot** — worst relative excursion above the window, averaged.
- **in-window fraction** — share of all (stream, tick) samples in-window.
- **actuation cost** — mean absolute knob movement per stream, from traces.

Everything is deterministic given ``EvaluationConfig.seed``:

>>> from repro.tune.presets import scheduler_preset
>>> cfg = EvaluationConfig(streams=2, ticks=4, beats_per_tick=2, seed=7)
>>> a = evaluate_spec(scheduler_preset(), cfg)
>>> b = evaluate_spec(scheduler_preset(), cfg)
>>> a == b
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.adapt.actuator import Actuator, CoreActuator
from repro.adapt.loop import DecisionTrace
from repro.adapt.spec import AdaptSpec
from repro.clock import ManualClock, SimulatedClock
from repro.control import TargetWindow
from repro.core.aggregator import HeartbeatAggregator
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import MonitorReading
from repro.scheduler.allocator import CoreAllocator
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import LinearScaling
from repro.tune.space import TuneError
from repro.workloads.base import Workload

__all__ = ["EvaluationConfig", "EvalResult", "evaluate_spec", "evaluate_payload", "PROFILES"]

#: Workload profiles the harness can replay.
PROFILES = ("steady", "step-load", "churn", "skewed")

#: Stream-name prefix the bundled presets match against.
STREAM_PREFIX = "sim-"


@dataclass(frozen=True, slots=True)
class EvaluationConfig:
    """How to exercise a candidate spec.

    ``streams`` plants run for ``ticks`` adaptation rounds of
    ``beats_per_tick`` simulated heartbeats each.  The plant is calibrated so
    a stream's heart rate equals its allocated core count times
    ``target_rate / 8`` — with the default ``target_rate`` of 8.0 the rate
    *is* the core count, and the default [10, 12] window demands ten to
    twelve of the sixteen cores.
    """

    streams: int = 16
    ticks: int = 30
    beats_per_tick: int = 4
    profile: str = "steady"
    seed: int = 0
    cores: int = 16
    window: int = 8
    target: tuple[float, float] = (10.0, 12.0)
    target_rate: float = 8.0
    noise: float = 0.02

    def __post_init__(self) -> None:
        if self.streams < 1 or self.ticks < 1 or self.beats_per_tick < 1:
            raise TuneError("streams, ticks and beats_per_tick must all be >= 1")
        if self.profile not in PROFILES:
            raise TuneError(f"unknown profile {self.profile!r}; choose from {PROFILES}")
        if not (0 < self.target[0] < self.target[1]):
            raise TuneError(f"target window must be 0 < min < max, got {self.target}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "streams": self.streams,
            "ticks": self.ticks,
            "beats_per_tick": self.beats_per_tick,
            "profile": self.profile,
            "seed": self.seed,
            "cores": self.cores,
            "window": self.window,
            "target": list(self.target),
            "target_rate": self.target_rate,
            "noise": self.noise,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationConfig":
        kwargs = dict(data)
        if "target" in kwargs:
            low, high = kwargs["target"]
            kwargs["target"] = (float(low), float(high))
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class EvalResult:
    """One evaluation's scores (lower ``score`` is better)."""

    score: float
    settle_median: float
    settle_mean: float
    overshoot: float
    in_window_fraction: float
    actuation_cost: float
    unsettled_streams: int
    duration_median: float
    streams: int
    ticks: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "score": self.score,
            "settle_median": self.settle_median,
            "settle_mean": self.settle_mean,
            "overshoot": self.overshoot,
            "in_window_fraction": self.in_window_fraction,
            "actuation_cost": self.actuation_cost,
            "unsettled_streams": self.unsettled_streams,
            "duration_median": self.duration_median,
            "streams": self.streams,
            "ticks": self.ticks,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalResult":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__})


class _TunedWorkload(Workload):
    """Synthetic plant whose per-beat cost follows the selected profile."""

    NAME = "tuned-plant"
    HEARTBEAT_LOCATION = "every simulated beat"
    PAPER_HEART_RATE = 8.0
    DEFAULT_SCALING = LinearScaling(1.0)

    def __init__(self, *, shift_beat: int | None = None, shift_factor: float = 1.0,
                 **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.shift_beat = shift_beat
        self.shift_factor = float(shift_factor)

    def phase_multiplier(self, beat_index: int) -> float:
        if self.shift_beat is not None and beat_index >= self.shift_beat:
            return self.shift_factor
        return 1.0

    def execute_beat(self, beat_index: int) -> float:
        return float(beat_index)


@dataclass(slots=True)
class _Plant:
    """One stream's isolated simulated stack."""

    name: str
    clock: SimulatedClock
    engine: ExecutionEngine
    process: SimulatedProcess
    heartbeat: Heartbeat
    allocator: CoreAllocator


def _build_plants(config: EvaluationConfig) -> list[_Plant]:
    total_beats = config.ticks * config.beats_per_tick
    base_seed = (config.seed + 1) * 7_919
    spread = np.random.default_rng(base_seed)
    plants: list[_Plant] = []
    for i in range(config.streams):
        target_rate = config.target_rate
        shift_beat: int | None = None
        shift_factor = 1.0
        if config.profile == "step-load":
            shift_beat = total_beats // 2
            shift_factor = 2.0
        elif config.profile == "churn":
            shift_beat = int(spread.integers(total_beats // 4, 3 * total_beats // 4))
            shift_factor = float(spread.uniform(0.5, 2.0))
        elif config.profile == "skewed":
            target_rate = float(np.exp(spread.uniform(np.log(8.0), np.log(16.0))))
        workload = _TunedWorkload(
            target_rate=target_rate,
            noise=config.noise,
            seed=base_seed + i,
            shift_beat=shift_beat,
            shift_factor=shift_factor,
        )
        clock = SimulatedClock()
        name = f"{STREAM_PREFIX}{i:04d}"
        heartbeat = Heartbeat(
            config.window, name=name, clock=clock, history=64, thread_safe=False
        )
        heartbeat.set_target_rate(config.target[0], config.target[1])
        machine = SimulatedMachine(config.cores)
        process = SimulatedProcess(workload, heartbeat, machine, cores=1, pid=i + 1)
        allocator = CoreAllocator(machine, process)
        plants.append(
            _Plant(
                name=name,
                clock=clock,
                engine=ExecutionEngine(clock),
                process=process,
                heartbeat=heartbeat,
                allocator=allocator,
            )
        )
    return plants


def _resolve_window(spec: AdaptSpec, plant: _Plant, config: EvaluationConfig) -> TargetWindow:
    rule = spec.rule_for(plant.name)
    if rule is not None and rule.target is not None:
        return TargetWindow(float(rule.target[0]), float(rule.target[1]))
    return TargetWindow(config.target[0], config.target[1])


def evaluate_spec(spec: AdaptSpec, config: EvaluationConfig) -> EvalResult:
    """Run one deterministic evaluation of ``spec`` under ``config``."""
    plants = _build_plants(config)
    by_name = {plant.name: plant for plant in plants}
    if spec.rule_for(plants[0].name) is None:
        raise TuneError(
            f"spec matches no harness stream (names look like {plants[0].name!r})"
        )

    fleet_clock = ManualClock(0.0)
    aggregator = HeartbeatAggregator(
        clock=fleet_clock,
        window=spec.window,
        liveness_timeout=None,
        num_shards=spec.num_shards,
    )
    for plant in plants:
        aggregator.attach_stream(plant.name, plant.heartbeat)

    def cores_factory(name: str, reading: MonitorReading, options: Mapping[str, Any]) -> Actuator:
        return CoreActuator(by_name[name].allocator)

    engine = spec.build_engine(aggregator=aggregator, actuators={"cores": cores_factory})

    windows = {plant.name: _resolve_window(spec, plant, config) for plant in plants}
    last_out_time = {plant.name: 0.0 for plant in plants}
    settled_once = {plant.name: False for plant in plants}
    overshoot = {plant.name: 0.0 for plant in plants}
    in_window_samples = 0
    total_samples = 0
    traces: list[DecisionTrace] = []

    for _ in range(config.ticks):
        for plant in plants:
            plant.engine.run(plant.process, config.beats_per_tick, rate_window=config.window)
        fleet_clock.time = max(plant.clock.now() for plant in plants)
        tick = engine.tick()
        traces.extend(tick.traces)
        for plant in plants:
            rate = plant.heartbeat.current_rate(config.window)
            window = windows[plant.name]
            total_samples += 1
            if window.contains(rate):
                in_window_samples += 1
                settled_once[plant.name] = True
            else:
                last_out_time[plant.name] = plant.clock.now()
            if rate > window.maximum:
                excursion = (rate - window.maximum) / window.maximum
                overshoot[plant.name] = max(overshoot[plant.name], excursion)

    settle_times = []
    unsettled = 0
    durations = []
    for plant in plants:
        duration = plant.clock.now()
        durations.append(duration)
        rate = plant.heartbeat.current_rate(config.window)
        if windows[plant.name].contains(rate) and settled_once[plant.name]:
            settle_times.append(last_out_time[plant.name])
        else:
            unsettled += 1
            settle_times.append(2.0 * duration)

    settle_median = float(np.median(settle_times))
    settle_mean = float(np.mean(settle_times))
    mean_overshoot = float(np.mean(list(overshoot.values())))
    in_window_fraction = in_window_samples / max(total_samples, 1)
    actuation = sum(abs(t.after - t.before) for t in traces if t.changed)
    actuation_cost = float(actuation) / config.streams
    duration_median = float(np.median(durations))

    score = (
        settle_median
        + 5.0 * mean_overshoot
        + 10.0 * (1.0 - in_window_fraction)
        + 0.05 * actuation_cost
    )
    return EvalResult(
        score=float(score),
        settle_median=settle_median,
        settle_mean=settle_mean,
        overshoot=mean_overshoot,
        in_window_fraction=float(in_window_fraction),
        actuation_cost=actuation_cost,
        unsettled_streams=unsettled,
        duration_median=duration_median,
        streams=config.streams,
        ticks=config.ticks,
    )


def evaluate_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Process-pool entry point: plain dicts in, plain dicts out.

    Workers rebuild the spec and config from mappings so nothing fancier
    than pickleable builtins ever crosses the process boundary.  The result
    dict carries an extra ``elapsed_seconds`` key (worker-side wall time)
    for the tuner's evaluation-duration histogram.
    """
    import time

    spec = AdaptSpec.from_dict(payload["spec"])
    config = EvaluationConfig.from_dict(payload["config"])
    started = time.perf_counter()
    result = evaluate_spec(spec, config).to_dict()
    result["elapsed_seconds"] = time.perf_counter() - started
    return result
