"""Fleet-scale adaptation: many control loops over one incremental poll.

:class:`AdaptationEngine` closes the loop the fleet observation pipeline
left open: a :class:`~repro.core.aggregator.HeartbeatAggregator` already
turns thousands of heartbeat streams into one O(new-beats) incremental
:meth:`poll`, and the engine feeds each polled rate into that stream's
:class:`~repro.adapt.loop.ControlLoop` — so a 10k-stream fleet is *adapted*,
not just observed, at the cost of one sharded poll per tick.

Membership is dynamic.  Streams that appear (a producer dials into an
attached collector, a registry grows) are offered to the ``loop_factory``,
which returns a loop to manage them or ``None`` to leave them observed-only;
streams that vanish from the aggregator have their loops dropped.  Streams
classified STALLED are observed but not stepped — acting on a dead
producer's stale rate is how a balancer migrates a VM into the ground.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union

from repro.adapt.loop import ControlLoop, DecisionTrace
from repro.core.aggregator import FleetSample, HeartbeatAggregator
from repro.core.monitor import HealthStatus, MonitorReading
from repro.obs.registry import MetricsRegistry

__all__ = ["AdaptationEngine", "EngineTick", "LoopFactory"]

#: Offered one (stream name, first reading) pair per new stream; returns the
#: loop that should manage the stream, or ``None`` to leave it unmanaged.
LoopFactory = Callable[[str, MonitorReading], Union[ControlLoop, None]]


@dataclass(frozen=True, slots=True)
class EngineTick:
    """What one :meth:`AdaptationEngine.tick` observed and decided."""

    #: Monotonic tick index (the beat number loops were stepped with).
    index: int
    #: The fleet sample the decisions were based on.
    sample: FleetSample
    #: Streams that gained a loop this tick.
    attached: tuple[str, ...]
    #: Streams whose loop was dropped this tick (stream vanished).
    detached: tuple[str, ...]
    #: Decisions taken this tick, in loop order.
    traces: tuple[DecisionTrace, ...]
    #: Per-stream factory/step failures this tick (one bad stream never
    #: poisons the rest of the fleet; its error is reported here instead).
    errors: Mapping[str, str]

    @property
    def decisions(self) -> int:
        return len(self.traces)

    @property
    def changes(self) -> int:
        """How many decisions actually moved an actuator."""
        return sum(1 for trace in self.traces if trace.changed)


class AdaptationEngine:
    """Runs many control loops over a fleet through one aggregator.

    Parameters
    ----------
    aggregator:
        The observation fan-in.  Attach local heartbeats, files, segments,
        registries or collectors to it (or through the engine's
        :meth:`attach_collector` convenience) — the engine adapts whatever
        the aggregator observes.
    loop_factory:
        Called once per newly observed stream with its first reading.
        Streams with no published goal are re-offered on later ticks (their
        producer may publish a target after dialling in); a ``None`` for a
        stream that *has* a goal is remembered and the stream stays
        unmanaged.
    min_beats:
        Beats a stream must have produced before its loop is stepped (a
        rate needs two beats to exist at all).
    step_stalled:
        Step loops even when their stream is classified STALLED.  Off by
        default: a stalled stream's rate is stale, and acting on it usually
        does harm.
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` holding the
        engine's tick/decision counters.  A private registry is created
        when omitted.
    """

    def __init__(
        self,
        aggregator: HeartbeatAggregator,
        loop_factory: LoopFactory,
        *,
        min_beats: int = 2,
        step_stalled: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if min_beats < 0:
            raise ValueError(f"min_beats must be >= 0, got {min_beats}")
        self._aggregator = aggregator
        self._factory = loop_factory
        self._min_beats = int(min_beats)
        self._step_stalled = bool(step_stalled)
        self.loops: dict[str, ControlLoop] = {}
        self._declined: set[str] = set()
        self._ticks = 0
        self.last_tick: EngineTick | None = None
        #: The exception that killed the threaded drive, if one did; the
        #: drive also flips :attr:`running` off, so a silent dead thread
        #: can never masquerade as a live engine.
        self.last_error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._tick_lock = threading.Lock()
        self._listeners: list[Callable[[EngineTick], None]] = []

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_ticks = self.metrics.counter(
            "engine_ticks_total", help="engine rounds run"
        )
        self._m_decisions = self.metrics.counter(
            "engine_decisions_total", help="control decisions taken"
        )
        self._m_changes = self.metrics.counter(
            "engine_changes_total", help="decisions that moved an actuator"
        )
        self._m_stream_errors = self.metrics.counter(
            "engine_stream_errors_total", help="per-stream factory/step failures"
        )
        self.metrics.gauge(
            "engine_loops", help="streams under active management",
            fn=lambda: float(len(self.loops)),
        )

    # ------------------------------------------------------------------ #
    # Observation plumbing
    # ------------------------------------------------------------------ #
    @property
    def aggregator(self) -> HeartbeatAggregator:
        """The underlying fleet observer."""
        return self._aggregator

    def attach_collector(self, collector: object, *, prefix: str = "") -> list[str]:
        """Observe every stream of a network collector (dynamic attachment)."""
        return self._aggregator.attach_collector(collector, prefix=prefix)  # type: ignore[arg-type]

    @property
    def ticks(self) -> int:
        """Ticks run so far."""
        return self._ticks

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self) -> Iterator[ControlLoop]:
        return iter(list(self.loops.values()))

    def subscribe(self, listener: Callable[[EngineTick], None]) -> Callable[[], None]:
        """Call ``listener`` with every :class:`EngineTick`, as it happens.

        Listeners run on the ticking thread, in subscription order, after
        the tick's state is committed (``last_tick`` already updated); a
        listener that raises is skipped for that tick, never unsubscribed,
        and never breaks the tick itself.  Returns an idempotent
        unsubscribe callable.

        This is the engine's export hook: a
        :class:`~repro.obs.tracing.DecisionTraceLog` streams decisions to
        JSONL through it, and the dashboard streams them over SSE.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    # ------------------------------------------------------------------ #
    # The engine step
    # ------------------------------------------------------------------ #
    def tick(self) -> EngineTick:
        """One engine round: poll the fleet, sync loops, step every loop.

        Concurrent calls (a threaded drive racing a manual tick) are
        serialised; the poll itself is the aggregator's sharded incremental
        pass, so the cost of a mostly idle fleet is the probe pass plus the
        loops that actually had news.
        """
        with self._tick_lock:
            return self._tick_locked()

    def _tick_locked(self) -> EngineTick:
        sample = self._aggregator.poll()
        index = self._ticks
        self._ticks += 1

        observed = set(sample.names)
        detached = tuple(
            name for name in self.loops if name not in observed and name not in sample.errors
        )
        for name in detached:
            del self.loops[name]
        self._declined &= observed

        attached: list[str] = []
        errors: dict[str, str] = {}
        for name in sample.names:
            if name in self.loops or name in self._declined:
                continue
            reading = sample.get(name)
            if reading is None:  # pragma: no cover - names never error in-sample
                continue
            try:
                loop = self._factory(name, reading)
            except Exception as exc:
                # One stream with a poisoned goal or a broken factory must
                # not take the fleet down; refuse it and report.
                errors[name] = f"loop factory failed: {exc}"
                self._declined.add(name)
                continue
            if loop is None:
                if reading.target_min > 0.0 or reading.target_max > 0.0:
                    # Goal published and still refused: a definitive "not
                    # managed".  Goalless streams are re-offered later.
                    self._declined.add(name)
                continue
            self.loops[name] = loop
            attached.append(name)

        traces: list[DecisionTrace] = []
        for name, loop in self.loops.items():
            reading = sample.get(name)
            if reading is None or reading.total_beats < self._min_beats:
                continue
            if reading.status is HealthStatus.STALLED and not self._step_stalled:
                continue
            try:
                trace = loop.step(index, rate=reading.rate)
            except Exception as exc:
                errors[name] = f"step failed: {exc}"
                continue
            if trace is not None:
                traces.append(trace)

        tick = EngineTick(
            index=index,
            sample=sample,
            attached=tuple(attached),
            detached=detached,
            traces=tuple(traces),
            errors=errors,
        )
        self.last_tick = tick
        self._m_ticks.inc()
        self._m_decisions.inc(tick.decisions)
        self._m_changes.inc(tick.changes)
        self._m_stream_errors.inc(len(errors))
        for listener in list(self._listeners):
            try:
                listener(tick)
            except Exception:  # noqa: BLE001 - a bad exporter must not stop ticking
                pass
        return tick

    def run(
        self,
        ticks: int,
        *,
        interval: float = 0.0,
        between: Callable[[EngineTick], None] | None = None,
    ) -> list[EngineTick]:
        """Run ``ticks`` engine rounds, sleeping ``interval`` between them.

        ``between`` is called after every tick (simulations advance their
        clock and produce the next round of beats there).
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        results: list[EngineTick] = []
        for i in range(ticks):
            results.append(self.tick())
            if between is not None:
                between(results[-1])
            if interval > 0 and i + 1 < ticks:
                time.sleep(interval)
        return results

    # ------------------------------------------------------------------ #
    # Fleet-level questions
    # ------------------------------------------------------------------ #
    def converged(self, sample: FleetSample | None = None) -> bool:
        """True when every managed stream's rate sits inside its loop's window.

        Streams still warming up (< ``min_beats``) count as not converged.
        ``sample`` defaults to the last tick's sample.
        """
        if sample is None:
            if self.last_tick is None:
                return False
            sample = self.last_tick.sample
        if not self.loops:
            return False
        for name, loop in self.loops.items():
            reading = sample.get(name)
            if reading is None or reading.total_beats < max(self._min_beats, 2):
                return False
            if not loop.in_target(reading.rate):
                return False
        return True

    def lagging(self, sample: FleetSample | None = None) -> list[str]:
        """Managed streams currently outside their loop's target window."""
        if sample is None:
            sample = self.last_tick.sample if self.last_tick is not None else None
        if sample is None:
            return sorted(self.loops)
        out = []
        for name, loop in self.loops.items():
            reading = sample.get(name)
            if reading is None or not loop.in_target(reading.rate):
                out.append(name)
        return out

    # ------------------------------------------------------------------ #
    # Threaded drive and lifecycle
    # ------------------------------------------------------------------ #
    def start(self, interval: float) -> None:
        """Tick the engine every ``interval`` seconds on a background thread.

        A tick that raises stops the drive, records the exception in
        :attr:`last_error` and marks the engine not :attr:`running` — per-
        stream failures are already absorbed into ``EngineTick.errors``, so
        anything reaching here is a systemic fault the owner must see.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if self._thread is not None:
            raise RuntimeError("engine is already running")
        self._stop.clear()
        self.last_error = None

        def drive() -> None:
            try:
                while not self._stop.wait(interval):
                    self.tick()
            except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
                self.last_error = exc
            finally:
                self._thread = None

        self._thread = threading.Thread(target=drive, name="adaptation-engine", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the threaded drive (no-op when not running)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        """True while the threaded drive is alive (False once it errors)."""
        return self._thread is not None

    def close(self, *, close_aggregator: bool = False) -> None:
        """Stop driving and drop every loop; optionally close the aggregator."""
        self.stop()
        for loop in self.loops.values():
            loop.stop()
        self.loops.clear()
        self._declined.clear()
        self._listeners.clear()
        if close_aggregator:
            self._aggregator.close()

    def __enter__(self) -> "AdaptationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdaptationEngine(loops={len(self.loops)}, ticks={self._ticks})"
