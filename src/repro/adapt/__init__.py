"""The unified adaptation runtime: observe → decide → act, at any scale.

The paper's thesis is that heartbeats are a generic interface between
applications and external adaptive services.  This package is the actuation
counterpart of that interface — one composable runtime binding any heartbeat
source to any controller to any knob:

* :class:`~repro.adapt.actuator.Actuator` — the knob protocol
  (``apply``/``current``/``bounds``, optional ``cost``), with adapters for
  core allocations, frequency ladders, discrete quality ladders, plain
  attributes and advisory dry-runs;
* :class:`~repro.adapt.loop.ControlLoop` — one stream + target window +
  controller + actuator, stepped on a beat cadence or driven on a thread,
  recording uniform :class:`~repro.adapt.loop.DecisionTrace` records;
* :class:`~repro.adapt.engine.AdaptationEngine` — many loops over a fleet
  through one incremental :class:`~repro.core.aggregator.HeartbeatAggregator`
  poll, with dynamic attach/detach as collector streams appear and die;
* :class:`~repro.adapt.spec.AdaptSpec` — declarative dict/TOML/JSON specs
  building whole engines (the ``repro adapt`` CLI subcommand).

The legacy ``ExternalScheduler``, ``DVFSGovernor``, ``AdaptiveEncoder`` and
balancer slow-VM handling are facades over these pieces.
"""

from repro.adapt.actuator import (
    Actuator,
    CoreActuator,
    FrequencyActuator,
    FunctionActuator,
    LadderActuator,
    LogActuator,
    actuator_cost,
)
from repro.adapt.engine import AdaptationEngine, EngineTick, LoopFactory
from repro.adapt.loop import (
    ControlLoop,
    DecisionTrace,
    backend_monitor,
    collector_monitor,
)
from repro.adapt.spec import ActuatorFactory, AdaptSpec, LoopSpec, SpecError

__all__ = [
    "Actuator",
    "actuator_cost",
    "CoreActuator",
    "FrequencyActuator",
    "LadderActuator",
    "FunctionActuator",
    "LogActuator",
    "ControlLoop",
    "DecisionTrace",
    "backend_monitor",
    "collector_monitor",
    "AdaptationEngine",
    "EngineTick",
    "LoopFactory",
    "AdaptSpec",
    "LoopSpec",
    "SpecError",
    "ActuatorFactory",
]
