"""The act side of the adaptation runtime: the :class:`Actuator` protocol.

The paper treats heartbeats as the *observe* interface between applications
and external adaptive services; this module is the matching *act* interface.
An actuator owns one knob — a core count, a frequency ladder level, an
encoder preset, a VM placement — and applies
:class:`~repro.control.base.ControlDecision` objects to it, so any
:class:`~repro.control.base.Controller` can drive any knob through a
:class:`~repro.adapt.loop.ControlLoop` without knowing what the knob is.

The contract is deliberately small:

``apply(decision, beat=...) -> applied``
    Apply one decision (clamping to :attr:`bounds`) and return the value the
    knob actually landed on — which may differ from what the decision asked
    for when the request saturates the bounds or the knob refuses the move.
``current() -> value``
    The knob's current value, in the same units ``apply`` returns.
``bounds``
    The inclusive ``(minimum, maximum)`` range of the knob.

Implementations may additionally expose ``cost() -> float`` — the resource
price of the current setting (cores held, relative frequency, work units per
unit of output) — which engines and reports read through
:func:`actuator_cost` so the member stays optional.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.control.base import ControlDecision

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps the import graph flat
    from repro.scheduler.allocator import CoreAllocator
    from repro.sim.machine import SimulatedMachine

__all__ = [
    "Actuator",
    "actuator_cost",
    "CoreActuator",
    "FrequencyActuator",
    "LadderActuator",
    "FunctionActuator",
    "LogActuator",
]


@runtime_checkable
class Actuator(Protocol):
    """What a :class:`~repro.adapt.loop.ControlLoop` needs from a knob."""

    @property
    def bounds(self) -> tuple[float, float]:  # pragma: no cover - protocol stub
        """Inclusive ``(minimum, maximum)`` range of the knob."""
        ...

    def current(self) -> float:  # pragma: no cover - protocol stub
        """The knob's current value."""
        ...

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:  # pragma: no cover - protocol stub
        """Apply one decision and return the value actually reached."""
        ...


def actuator_cost(actuator: Actuator) -> float:
    """The actuator's resource cost, via its optional ``cost()`` member.

    Actuators without a ``cost()`` report their current value — the natural
    reading for counted resources such as cores.
    """
    cost = getattr(actuator, "cost", None)
    if callable(cost):
        return float(cost())
    return float(actuator.current())


def _clamp(value: float, bounds: tuple[float, float]) -> float:
    low, high = bounds
    return min(max(value, low), high)


class CoreActuator:
    """Core-allocation knob over a :class:`~repro.scheduler.allocator.CoreAllocator`.

    Absolute decisions (``value``) are ceiled onto whole cores and clamped by
    the allocator; relative decisions (``delta``) adjust the current count.
    The allocator keeps its usual :class:`AllocationChange` history, so the
    twin core/heart-rate traces of Figures 5-7 come out unchanged.
    """

    def __init__(self, allocator: "CoreAllocator") -> None:
        self.allocator = allocator

    @property
    def bounds(self) -> tuple[float, float]:
        return (float(self.allocator.min_cores), float(self.allocator.max_cores))

    def current(self) -> float:
        return float(self.allocator.current_cores)

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:
        if decision.value is not None:
            return float(self.allocator.set_cores(math.ceil(decision.value), beat=beat))
        if decision.delta:
            return float(self.allocator.adjust(decision.delta, beat=beat))
        return self.current()

    def cost(self) -> float:
        """Cores currently held (the resource the scheduler minimises)."""
        return self.current()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoreActuator(current={self.allocator.current_cores}, bounds={self.bounds})"


class FrequencyActuator:
    """Machine-frequency knob over a discrete P-state-like ladder.

    ``delta`` moves one or more rungs along the sorted ladder (positive =
    faster, the controllers' "more resource" direction); ``value`` selects
    the closest rung.  The machine's frequency is only touched when the rung
    actually changes.
    """

    def __init__(
        self,
        machine: "SimulatedMachine",
        frequencies: tuple[float, ...],
        *,
        initial_level: int | None = None,
        apply_initial: bool = True,
    ) -> None:
        if not frequencies or any(f <= 0 for f in frequencies):
            raise ValueError("frequencies must be a non-empty tuple of positive values")
        self.machine = machine
        self.frequencies = tuple(sorted(float(f) for f in frequencies))
        top = len(self.frequencies) - 1
        level = top if initial_level is None else int(initial_level)
        if not 0 <= level <= top:
            raise ValueError(f"initial_level must be in [0, {top}], got {level}")
        self.level = level
        if apply_initial:
            self.machine.set_frequency(self.frequency)

    @property
    def frequency(self) -> float:
        return self.frequencies[self.level]

    @property
    def bounds(self) -> tuple[float, float]:
        return (self.frequencies[0], self.frequencies[-1])

    def current(self) -> float:
        return self.frequency

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:
        level = self.level
        if decision.value is not None:
            target = _clamp(decision.value, self.bounds)
            level = min(
                range(len(self.frequencies)),
                key=lambda i: (abs(self.frequencies[i] - target), i),
            )
        elif decision.delta:
            level = min(max(level + decision.delta, 0), len(self.frequencies) - 1)
        if level != self.level:
            self.level = level
            self.machine.set_frequency(self.frequency)
        return self.frequency

    def cost(self) -> float:
        """Relative frequency — the energy proxy the DVFS experiments report."""
        return self.frequency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrequencyActuator(frequency={self.frequency}, ladder={self.frequencies})"


class LadderActuator:
    """Position on an ordered discrete ladder (quality presets, batch sizes).

    Level 0 is the most demanding setting, matching the encoder's preset
    ladder and :class:`~repro.control.ladder.LadderController`'s sign
    convention (+1 = move to a cheaper level).  ``on_change`` is called with
    the new level whenever the position actually moves — the encoder facade
    uses it to swap presets.
    """

    def __init__(
        self,
        levels: int,
        *,
        initial_level: int = 0,
        on_change: Callable[[int], None] | None = None,
        cost_of: Callable[[int], float] | None = None,
    ) -> None:
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if not 0 <= initial_level < levels:
            raise ValueError(f"initial_level must be in [0, {levels - 1}], got {initial_level}")
        self.levels = int(levels)
        self.level = int(initial_level)
        self._on_change = on_change
        self._cost_of = cost_of

    @property
    def bounds(self) -> tuple[float, float]:
        return (0.0, float(self.levels - 1))

    def current(self) -> float:
        return float(self.level)

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:
        level = self.level
        if decision.value is not None:
            level = int(_clamp(round(decision.value), self.bounds))
        elif decision.delta:
            level = int(_clamp(level + decision.delta, self.bounds))
        if level != self.level:
            self.level = level
            if self._on_change is not None:
                self._on_change(level)
        return float(self.level)

    def cost(self) -> float:
        """Cost of the current level (``cost_of`` hook; defaults to the level)."""
        if self._cost_of is not None:
            return float(self._cost_of(self.level))
        return float(self.level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LadderActuator(level={self.level}/{self.levels - 1})"


class FunctionActuator:
    """Adapter turning a get/set pair into an actuator.

    The declarative spec layer and simulations use this to bind loops to
    plain attributes — a producer's request rate, a worker pool size —
    without writing a class per knob.  ``step`` scales relative deltas
    (controllers speak in unit steps; the knob may move in other units).
    """

    def __init__(
        self,
        get: Callable[[], float],
        set_value: Callable[[float], float | None],
        *,
        bounds: tuple[float, float] = (-math.inf, math.inf),
        step: float = 1.0,
    ) -> None:
        low, high = float(bounds[0]), float(bounds[1])
        if high < low:
            raise ValueError(f"bounds maximum ({high}) must be >= minimum ({low})")
        self._get = get
        self._set = set_value
        self._bounds = (low, high)
        self.step = float(step)

    @property
    def bounds(self) -> tuple[float, float]:
        return self._bounds

    def current(self) -> float:
        return float(self._get())

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:
        if decision.value is not None:
            requested: float | None = float(decision.value)
        elif decision.delta:
            requested = self.current() + decision.delta * self.step
        else:
            requested = None
        if requested is None:
            return self.current()
        granted = self._set(_clamp(requested, self._bounds))
        return self.current() if granted is None else float(granted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionActuator(current={self.current()}, bounds={self._bounds})"


class LogActuator:
    """Advisory (dry-run) actuator: decisions move an internal value only.

    The ``repro adapt`` CLI binds spec loops to this by default, so an
    operator can point a spec at a live fleet and see exactly which
    adjustments the controllers *would* make before wiring real knobs in.
    Every applied decision is kept in :attr:`applied` as
    ``(beat, before, after)``.
    """

    def __init__(
        self,
        initial: float = 0.0,
        *,
        bounds: tuple[float, float] = (-math.inf, math.inf),
        step: float = 1.0,
    ) -> None:
        low, high = float(bounds[0]), float(bounds[1])
        if high < low:
            raise ValueError(f"bounds maximum ({high}) must be >= minimum ({low})")
        self._bounds = (low, high)
        self.value = _clamp(float(initial), self._bounds)
        self.step = float(step)
        self.applied: list[tuple[int, float, float]] = []

    @property
    def bounds(self) -> tuple[float, float]:
        return self._bounds

    def current(self) -> float:
        return self.value

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:
        before = self.value
        if decision.value is not None:
            self.value = _clamp(float(decision.value), self._bounds)
        elif decision.delta:
            self.value = _clamp(self.value + decision.delta * self.step, self._bounds)
        if self.value != before:
            self.applied.append((beat, before, self.value))
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogActuator(value={self.value}, applied={len(self.applied)})"
