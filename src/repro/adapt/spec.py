"""Declarative adaptation specs: dict/TOML/JSON → :class:`AdaptationEngine`.

A spec names *what* to adapt — which streams (glob patterns over stream
names), towards which target window, with which controller, through which
actuator — and :meth:`AdaptSpec.build_engine` assembles the runtime.  New
scenarios (a fleet-wide DVFS sweep, encoder ladder + core allocation
co-adaptation) become a few lines of data instead of a bespoke
observe-and-act class:

.. code-block:: toml

    [engine]
    liveness_timeout = 5.0
    attach = ["tcp://0.0.0.0:7717", "shm://svc", "file:///var/log/enc.hblog"]

    [[loops]]
    match = "svc-*"
    target = "published"                # the window each app publishes
    controller = { kind = "step" }
    actuator = "cores"

    [[loops]]
    match = "enc-*"
    target = [28.0, 1e9]
    controller = { kind = "ladder", levels = 5 }
    actuator = "preset"

``attach`` names the observed streams by telemetry endpoint URL (see
:mod:`repro.endpoints`), validated at parse time: a ``tcp://`` entry binds a
collector and observes every producer that dials in, ``shm://``/``file://``
entries attach single same-host streams.  The endpoints are wired by
whoever owns the runtime — :meth:`repro.session.TelemetrySession.adapt`
(which also owns their teardown) or the ``repro adapt`` CLI, where
positional endpoint arguments extend the spec's own list.

Actuator *names* bind to factories supplied at build time (specs are data;
knobs are code).  The built-in ``log`` actuator needs no factory: it applies
decisions to an internal value only, which is how the ``repro adapt`` CLI
dry-runs a spec against a live fleet.

TOML parsing uses :mod:`tomllib` and therefore Python 3.11+; on 3.10 use
JSON files or build from a dict.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, Union

from repro.adapt.actuator import Actuator, LogActuator
from repro.adapt.engine import AdaptationEngine, LoopFactory
from repro.adapt.loop import ControlLoop
from repro.clock import Clock
from repro.control import (
    Controller,
    LadderController,
    PIDController,
    ProportionalStepController,
    StepController,
    TargetWindow,
)
from repro.core.aggregator import HeartbeatAggregator
from repro.core.monitor import MonitorReading
from repro.endpoints import Endpoint, EndpointError

__all__ = ["AdaptSpec", "LoopSpec", "SpecError", "ActuatorFactory"]


class SpecError(ValueError):
    """A declarative adaptation spec is malformed."""


def _parse_attach(entries: Sequence[Union[str, Endpoint]]) -> list[Endpoint]:
    """Validate the spec's ``attach`` endpoints at parse time, not at wiring."""
    parsed: list[Endpoint] = []
    for entry in entries:
        if not isinstance(entry, (str, Endpoint)):
            raise SpecError(
                f"'attach' entries must be endpoint URL strings, got {entry!r}"
            )
        try:
            parsed.append(Endpoint.parse(entry))
        except EndpointError as exc:
            raise SpecError(f"invalid attach endpoint {entry!r}: {exc}") from exc
    return parsed


#: Builds the actuator for one matched stream: ``(stream name, first
#: reading, the loop spec's actuator options)``.
ActuatorFactory = Callable[[str, MonitorReading, Mapping[str, Any]], Actuator]

_CONTROLLER_KINDS = ("step", "proportional", "pid", "ladder")


def _build_controller(kind: str, target: TargetWindow, options: Mapping[str, Any]) -> Controller:
    try:
        if kind == "step":
            return StepController(target, step=int(options.get("step", 1)))
        if kind == "proportional":
            return ProportionalStepController(
                target,
                gain=float(options.get("gain", 1.0)),
                max_step=int(options.get("max_step", 4)),
            )
        if kind == "pid":
            return PIDController(
                target,
                kp=float(options.get("kp", 1.0)),
                ki=float(options.get("ki", 0.2)),
                kd=float(options.get("kd", 0.0)),
                base_output=float(options.get("base_output", 1.0)),
                minimum_output=float(options.get("minimum_output", 1.0)),
                maximum_output=float(options.get("maximum_output", 64.0)),
            )
        if kind == "ladder":
            if "levels" not in options:
                raise SpecError("ladder controller needs 'levels'")
            return LadderController(
                target,
                levels=int(options["levels"]),
                initial_level=int(options.get("initial_level", 0)),
                climb_margin=float(options.get("climb_margin", 0.25)),
            )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError(f"invalid {kind} controller options {dict(options)!r}: {exc}") from exc
    raise SpecError(f"unknown controller kind {kind!r}; choose from {_CONTROLLER_KINDS}")


def _log_actuator_factory(name: str, reading: MonitorReading, options: Mapping[str, Any]) -> Actuator:
    bounds = options.get("bounds", (-math.inf, math.inf))
    return LogActuator(
        initial=float(options.get("initial", 0.0)),
        bounds=(float(bounds[0]), float(bounds[1])),
        step=float(options.get("step", 1.0)),
    )


#: Actuator factories every spec can name without registering anything.
BUILTIN_ACTUATORS: dict[str, ActuatorFactory] = {"log": _log_actuator_factory}


_BARE_KEY_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
)


def _toml_key(key: str) -> str:
    if key and set(key) <= _BARE_KEY_CHARS:
        return key
    return json.dumps(key)


def _toml_value(value: Any) -> str:
    """Serialize one value as TOML (strings, bools, numbers, arrays, inline tables).

    JSON string escaping is a subset of TOML basic-string escaping, so
    :func:`json.dumps` is reused for string literals; ``inf``/``nan`` are
    spelt directly (valid TOML, invalid JSON).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        return repr(value)  # repr floats always carry a '.' or 'e'/'inf'/'nan'
    if isinstance(value, Mapping):
        items = ", ".join(f"{_toml_key(str(k))} = {_toml_value(v)}" for k, v in value.items())
        return "{" + items + "}"
    if isinstance(value, Sequence):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise SpecError(f"cannot serialize {value!r} ({type(value).__name__}) as TOML")


@dataclass(frozen=True, slots=True)
class LoopSpec:
    """One loop rule: which streams, which goal, which controller and knob."""

    #: ``fnmatch`` pattern over stream names (``vm-*``, ``enc-??``, ...).
    match: str
    #: Actuator factory name resolved at build time (``log`` is built in).
    actuator: str = "log"
    #: Controller kind (one of ``step``/``proportional``/``pid``/``ladder``).
    controller: str = "step"
    #: Extra controller constructor options (gain, levels, kp, ...).
    controller_options: Mapping[str, Any] = field(default_factory=dict)
    #: ``(minimum, maximum)`` target window, or ``None`` to adopt the window
    #: each matched stream published itself (``"published"`` in files).
    target: tuple[float, float] | None = None
    #: Beats (engine ticks) between decisions.
    decision_interval: int = 1
    #: Beats before the first decision.  The spec layer defaults to 0 —
    #: decide as soon as the stream has a measurable rate — since engines
    #: already gate stepping on ``min_beats``; ``None`` defers to
    #: ``decision_interval`` (the bare :class:`ControlLoop` default, spelt
    #: ``"auto"`` in spec files, which cannot express null).
    warmup: int | None = 0
    #: Whether ``repro tune`` may search this rule's controller parameters
    #: (see :mod:`repro.tune`); inert at build time.
    tune: bool = False
    #: Options handed to the actuator factory.
    actuator_options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.match:
            raise SpecError("loop spec needs a non-empty 'match' pattern")
        if self.controller not in _CONTROLLER_KINDS:
            raise SpecError(
                f"unknown controller kind {self.controller!r}; choose from {_CONTROLLER_KINDS}"
            )
        if self.decision_interval < 1:
            raise SpecError(f"decision_interval must be >= 1, got {self.decision_interval}")
        if self.controller == "ladder" and "levels" not in self.controller_options:
            # Fail at parse time, not when the first stream matches.
            raise SpecError(f"loop {self.match!r}: ladder controller needs 'levels'")

    def matches(self, name: str) -> bool:
        return fnmatch.fnmatchcase(name, self.match)

    def resolve_target(self, reading: MonitorReading) -> TargetWindow | None:
        """The loop's goal for one stream; ``None`` when nothing usable is published.

        A malformed published window (inverted, or a negative minimum — the
        producer-side API forbids both, but the wire path does not validate)
        is treated exactly like "no goal yet": the stream stays unmanaged
        rather than poisoning the whole engine tick.
        """
        if self.target is not None:
            return TargetWindow(float(self.target[0]), float(self.target[1]))
        tmin, tmax = reading.target_min, reading.target_max
        if tmin <= 0.0 and tmax <= 0.0:
            return None
        maximum = tmax if tmax > 0.0 else math.inf
        minimum = max(tmin, 0.0)
        if maximum < minimum:
            return None
        return TargetWindow(minimum, maximum)

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "LoopSpec":
        known = {
            "match", "actuator", "controller", "target",
            "decision_interval", "warmup", "tune", "actuator_options",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown loop spec keys {sorted(unknown)}; known: {sorted(known)}")
        if "match" not in data:
            raise SpecError("loop spec needs a 'match' pattern")
        controller = data.get("controller", {"kind": "step"})
        if isinstance(controller, str):
            controller = {"kind": controller}
        if not isinstance(controller, Mapping) or "kind" not in controller:
            raise SpecError(f"loop controller must be a kind name or a table with 'kind', got {controller!r}")
        options = {k: v for k, v in controller.items() if k != "kind"}
        target = data.get("target", "published")
        if isinstance(target, str):
            if target != "published":
                raise SpecError(f"target must be [min, max] or 'published', got {target!r}")
            resolved: tuple[float, float] | None = None
        else:
            try:
                low, high = target
                resolved = (float(low), float(high))
            except (TypeError, ValueError) as exc:
                raise SpecError(f"target must be [min, max] or 'published', got {target!r}") from exc
        warmup = data.get("warmup", 0)
        if warmup == "auto":
            # TOML cannot express null; "auto" is the file spelling for the
            # bare-ControlLoop default (warmup = decision_interval).
            warmup = None
        return cls(
            match=str(data["match"]),
            actuator=str(data.get("actuator", "log")),
            controller=str(controller["kind"]),
            controller_options=options,
            target=resolved,
            decision_interval=int(data.get("decision_interval", 1)),
            warmup=None if warmup is None else int(warmup),
            tune=bool(data.get("tune", False)),
            actuator_options=dict(data.get("actuator_options", {})),
        )

    def to_dict(self) -> dict[str, Any]:
        """The plain mapping :meth:`from_mapping` parses back to an equal spec.

        >>> rule = LoopSpec(match="vm-*", controller="pid", warmup=None)
        >>> LoopSpec.from_mapping(rule.to_dict()) == rule
        True
        """
        controller: dict[str, Any] = {"kind": self.controller}
        controller.update(self.controller_options)
        return {
            "match": self.match,
            "actuator": self.actuator,
            "controller": controller,
            "target": "published" if self.target is None else list(self.target),
            "decision_interval": self.decision_interval,
            "warmup": "auto" if self.warmup is None else self.warmup,
            "tune": self.tune,
            "actuator_options": dict(self.actuator_options),
        }


class AdaptSpec:
    """A whole adaptation-engine description: engine knobs plus loop rules.

    Streams are matched against the loop rules in order; the first matching
    rule wins, so specific patterns go before catch-alls.
    """

    def __init__(
        self,
        loops: Sequence[LoopSpec],
        *,
        window: int = 0,
        liveness_timeout: float | None = None,
        num_shards: int = 1,
        interval: float = 1.0,
        min_beats: int = 2,
        attach: Sequence[Union[str, Endpoint]] = (),
    ) -> None:
        if not loops:
            raise SpecError("an adaptation spec needs at least one [[loops]] entry")
        if interval <= 0:
            raise SpecError(f"engine interval must be positive, got {interval}")
        self.loops = tuple(loops)
        self.window = int(window)
        self.liveness_timeout = liveness_timeout
        self.num_shards = int(num_shards)
        self.interval = float(interval)
        self.min_beats = int(min_beats)
        self.attach = tuple(_parse_attach(attach))

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptSpec":
        unknown = set(data) - {"engine", "loops"}
        if unknown:
            raise SpecError(f"unknown spec sections {sorted(unknown)}; known: ['engine', 'loops']")
        engine = data.get("engine", {})
        if not isinstance(engine, Mapping):
            raise SpecError(f"'engine' must be a table, got {type(engine).__name__}")
        known_engine = {
            "window", "liveness_timeout", "num_shards", "interval", "min_beats", "attach",
        }
        unknown = set(engine) - known_engine
        if unknown:
            raise SpecError(f"unknown engine keys {sorted(unknown)}; known: {sorted(known_engine)}")
        raw_loops = data.get("loops", [])
        if not isinstance(raw_loops, Sequence) or isinstance(raw_loops, (str, bytes)):
            raise SpecError("'loops' must be an array of loop tables")
        loops = [LoopSpec.from_mapping(entry) for entry in raw_loops]
        timeout = engine.get("liveness_timeout")
        attach = engine.get("attach", ())
        if isinstance(attach, (str, bytes)) or not isinstance(attach, Sequence):
            raise SpecError("'attach' must be an array of endpoint URL strings")
        return cls(
            loops,
            window=int(engine.get("window", 0)),
            liveness_timeout=None if timeout is None else float(timeout),
            num_shards=int(engine.get("num_shards", 1)),
            interval=float(engine.get("interval", 1.0)),
            min_beats=int(engine.get("min_beats", 2)),
            attach=attach,
        )

    @classmethod
    def from_toml(cls, text: str) -> "AdaptSpec":
        """Parse a TOML spec (requires Python 3.11+ for :mod:`tomllib`)."""
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # pragma: no cover - py3.10 only
            raise SpecError(
                "TOML specs need Python 3.11+ (tomllib); use a JSON spec or AdaptSpec.from_dict"
            ) from exc
        try:
            return cls.from_dict(tomllib.loads(text))
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "AdaptSpec":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON: {exc}") from exc

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike[str]]) -> "AdaptSpec":
        """Load a spec file: ``.toml`` via tomllib, anything else as JSON."""
        path = os.fspath(path)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if path.endswith(".toml"):
            return cls.from_toml(text)
        return cls.from_json(text)

    @classmethod
    def parse(cls, text: str) -> "AdaptSpec":
        """Parse spec text by sniffing the format: JSON objects else TOML."""
        if text.lstrip().startswith("{"):
            return cls.from_json(text)
        return cls.from_toml(text)

    # ------------------------------------------------------------------ #
    # Emitting
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """The plain mapping :meth:`from_dict` parses back to an equal spec.

        >>> spec = AdaptSpec([LoopSpec(match="vm-*")], interval=0.5)
        >>> AdaptSpec.from_dict(spec.to_dict()) == spec
        True
        """
        engine: dict[str, Any] = {
            "window": self.window,
            "num_shards": self.num_shards,
            "interval": self.interval,
            "min_beats": self.min_beats,
        }
        if self.liveness_timeout is not None:
            engine["liveness_timeout"] = self.liveness_timeout
        if self.attach:
            engine["attach"] = [str(endpoint) for endpoint in self.attach]
        return {"engine": engine, "loops": [rule.to_dict() for rule in self.loops]}

    def to_toml(self) -> str:
        """Emit TOML text that parses back to an equal spec (any Python version).

        The emitter is dependency free — :mod:`tomllib` is parse-only and
        3.11+, while emitting must work everywhere ``repro tune`` runs.
        """
        data = self.to_dict()
        lines = ["[engine]"]
        for key, value in data["engine"].items():
            lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
        for loop in data["loops"]:
            lines.append("")
            lines.append("[[loops]]")
            for key, value in loop.items():
                lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdaptSpec):
            return NotImplemented
        return (
            self.loops == other.loops
            and self.window == other.window
            and self.liveness_timeout == other.liveness_timeout
            and self.num_shards == other.num_shards
            and self.interval == other.interval
            and self.min_beats == other.min_beats
            and self.attach == other.attach
        )

    __hash__ = None  # type: ignore[assignment]  # mutable-ish container semantics

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def rule_for(self, name: str) -> LoopSpec | None:
        """The first loop rule matching ``name``, if any."""
        for rule in self.loops:
            if rule.matches(name):
                return rule
        return None

    def loop_factory(
        self, actuators: Mapping[str, ActuatorFactory] | None = None
    ) -> LoopFactory:
        """The engine loop factory implied by this spec.

        ``actuators`` maps spec actuator names to factories; built-ins
        (``log``) are always available but can be overridden.
        """
        registry = dict(BUILTIN_ACTUATORS)
        if actuators:
            registry.update(actuators)
        for rule in self.loops:
            if rule.actuator not in registry:
                raise SpecError(
                    f"loop {rule.match!r} names unknown actuator {rule.actuator!r}; "
                    f"available: {sorted(registry)}"
                )

        def factory(name: str, reading: MonitorReading) -> ControlLoop | None:
            rule = self.rule_for(name)
            if rule is None:
                return None
            target = rule.resolve_target(reading)
            if target is None:
                return None  # no goal yet; the engine re-offers the stream later
            controller = _build_controller(rule.controller, target, rule.controller_options)
            actuator = registry[rule.actuator](name, reading, rule.actuator_options)
            return ControlLoop(
                None,
                controller,
                actuator,
                name=name,
                decision_interval=rule.decision_interval,
                warmup=rule.warmup,
            )

        return factory

    def build_engine(
        self,
        *,
        aggregator: HeartbeatAggregator | None = None,
        clock: Clock | None = None,
        actuators: Mapping[str, ActuatorFactory] | None = None,
        step_stalled: bool = False,
    ) -> AdaptationEngine:
        """Assemble the engine (creating an aggregator unless one is passed)."""
        if aggregator is None:
            aggregator = HeartbeatAggregator(
                clock=clock,
                window=self.window,
                liveness_timeout=self.liveness_timeout,
                num_shards=self.num_shards,
            )
        return AdaptationEngine(
            aggregator,
            self.loop_factory(actuators),
            min_beats=self.min_beats,
            step_stalled=step_stalled,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdaptSpec(loops={[rule.match for rule in self.loops]}, interval={self.interval})"
