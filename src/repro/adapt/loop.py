"""The closed adaptation loop: one stream, one controller, one actuator.

:class:`ControlLoop` is the runtime the paper's two adaptation loops — the
encoder walking its preset ladder (Section 5.2) and the external scheduler
resizing a core allocation (Section 5.3) — turn out to share once the
observe, decide and act stages are named: read the heart rate from a stream
source, hand it to a :class:`~repro.control.base.Controller`, apply the
resulting decision through an :class:`~repro.adapt.actuator.Actuator`, and
record a uniform :class:`DecisionTrace`.  The legacy ``observe_and_act``
entry points (``ExternalScheduler``, ``DVFSGovernor``, ``AdaptiveEncoder``,
the balancer's slow-VM handling) are thin facades over this class.

A loop can bind any of the stream shapes the observation side knows:

* an in-process :class:`~repro.core.heartbeat.Heartbeat` or a
  :class:`~repro.core.monitor.HeartbeatMonitor` (both expose
  ``current_rate``), passed directly as ``source``;
* any storage :class:`~repro.core.backends.base.Backend` via
  :func:`backend_monitor`, which wires the backend's ``snapshot_since``
  cursors so steady polling costs O(new beats);
* one stream of a :class:`~repro.net.collector.HeartbeatCollector` via
  :func:`collector_monitor`;
* no source at all (``source=None``) when a fleet engine feeds observed
  rates into :meth:`ControlLoop.step` directly.

Stepping is cadence-aware: a :class:`~repro.control.hysteresis.DecisionSpacer`
gates decisions onto a beat cadence, and :meth:`start`/:meth:`stop` provide a
threaded time-cadence drive for wall-clock loops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Union

from repro.adapt.actuator import Actuator, LadderActuator
from repro.control.base import ControlDecision, Controller, TargetWindow
from repro.control.hysteresis import DecisionSpacer
from repro.core.monitor import HeartbeatMonitor

__all__ = [
    "DecisionTrace",
    "ControlLoop",
    "RateQuery",
    "backend_monitor",
    "collector_monitor",
]

#: A windowed rate query: ``query(window)`` with ``None`` meaning "the
#: source's configured default window".
RateQuery = Callable[[Union[int, None]], float]


@dataclass(frozen=True, slots=True)
class DecisionTrace:
    """One uniform observe-decide-act record.

    Supersedes the bespoke per-loop records (``SchedulerDecisionRecord``,
    ``DVFSDecisionRecord`` and the balancer's ad-hoc action bookkeeping):
    every loop, whatever its knob, traces the same six fields, so fleet-wide
    analyses can mix scheduler, DVFS and encoder decisions freely.  The
    legacy record types are kept as conversions inside their facades.
    """

    #: Name of the loop that took the decision.
    loop: str
    #: Beat (or engine tick) index at which the decision was taken.
    beat: int
    #: The heart rate the controller saw.
    observed_rate: float
    #: The controller's raw decision.
    decision: ControlDecision
    #: Actuator value before the decision was applied.
    before: float
    #: Actuator value the knob actually landed on.
    after: float

    @property
    def changed(self) -> bool:
        """True when the actuator value moved."""
        return self.after != self.before


def _as_rate_query(source: object) -> RateQuery:
    """Normalise the accepted source shapes into one windowed rate query."""
    current_rate = getattr(source, "current_rate", None)
    if current_rate is not None:

        def query(window: int | None) -> float:
            # Heartbeat spells "default window" as 0, HeartbeatMonitor as
            # None; calling with no argument lets each use its own default.
            if window is None:
                return float(current_rate())
            return float(current_rate(window))

        return query
    if callable(source):
        return source  # type: ignore[return-value]
    raise TypeError(
        "source must expose current_rate(window) (Heartbeat, HeartbeatMonitor), "
        f"be a rate callable, or be None; got {type(source).__name__}"
    )


def backend_monitor(
    backend: object,
    *,
    clock: object | None = None,
    window: int = 0,
    liveness_timeout: float | None = None,
) -> HeartbeatMonitor:
    """A monitor over any storage backend, incremental when the backend allows.

    Wires ``backend.snapshot`` plus — when present — the ``snapshot_since``
    cursored delta provider and the ``version`` change token, so a loop
    polling the monitor reads O(new beats) per step exactly like the fleet
    aggregator does.
    """
    if getattr(backend, "snapshot", None) is None:
        raise TypeError(f"backend {type(backend).__name__} has no snapshot()")
    return HeartbeatMonitor.for_source(
        backend,
        clock=clock,  # type: ignore[arg-type]
        window=window,
        liveness_timeout=liveness_timeout,
    )


def collector_monitor(
    collector: object,
    stream_id: str,
    *,
    clock: object | None = None,
    window: int = 0,
    liveness_timeout: float | None = None,
) -> HeartbeatMonitor:
    """A monitor over one registered stream of a network collector.

    Collectors exposing a per-stream ``source(stream_id)`` view (as
    :class:`~repro.net.collector.HeartbeatCollector` does) attach it
    directly through the capability protocol; others fall back to the
    ``snapshot_source``/``delta_source``/``version_source`` triple.
    """
    source_of = getattr(collector, "source", None)
    if source_of is not None and callable(source_of):
        return HeartbeatMonitor.for_source(
            source_of(stream_id),
            clock=clock,  # type: ignore[arg-type]
            window=window,
            liveness_timeout=liveness_timeout,
        )
    from repro.core.aggregator import collector_stream_sources

    source, delta, probe = collector_stream_sources(collector, stream_id)  # type: ignore[arg-type]
    return HeartbeatMonitor(
        source,
        clock=clock,  # type: ignore[arg-type]
        window=window,
        liveness_timeout=liveness_timeout,
        delta=delta,
        probe=probe,
    )


class ControlLoop:
    """Binds a stream source, a controller and an actuator into one loop.

    Parameters
    ----------
    source:
        Where observed rates come from: anything with ``current_rate(window)``
        (a :class:`Heartbeat`, a :class:`HeartbeatMonitor`, including ones
        built by :func:`backend_monitor`/:func:`collector_monitor`), a bare
        ``query(window) -> rate`` callable, or ``None`` when every ``step``
        call supplies ``rate=`` explicitly (the fleet-engine mode).
    controller:
        Decision logic; its :class:`TargetWindow` doubles as the loop's goal.
    actuator:
        The knob decisions are applied to.
    name:
        Label stamped on every :class:`DecisionTrace`.
    decision_interval:
        Beats between decisions (the paper's check cadence).
    warmup:
        Beats before the first decision; defaults to ``decision_interval``.
    rate_window:
        Window for the rate query; 0 uses the source's default window.
    settle_after_change:
        When True the rate window is additionally restricted to the beats
        produced since the actuator last moved (minimum 2), so a fresh
        setting is judged on its own beats instead of the previous setting's
        transient — the external scheduler's anti-oscillation rule.
    trace_limit:
        Maximum traces retained (oldest dropped); ``None`` keeps everything.
    """

    def __init__(
        self,
        source: object | None,
        controller: Controller,
        actuator: Actuator,
        *,
        name: str = "loop",
        decision_interval: int = 1,
        warmup: int | None = None,
        rate_window: int = 0,
        settle_after_change: bool = False,
        trace_limit: int | None = None,
    ) -> None:
        self.name = str(name)
        self.controller = controller
        self.actuator = actuator
        self.spacer = DecisionSpacer(decision_interval, warmup=warmup)
        self.rate_window = int(rate_window)
        self.settle_after_change = bool(settle_after_change)
        if trace_limit is not None and trace_limit < 1:
            raise ValueError(f"trace_limit must be >= 1, got {trace_limit}")
        self._trace_limit = trace_limit
        self._query: RateQuery | None = None if source is None else _as_rate_query(source)
        self.traces: list[DecisionTrace] = []
        #: The exception that killed the threaded drive, if one did.
        self.last_error: BaseException | None = None
        self._last_change_beat: int | None = None
        self._next_beat = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def target(self) -> TargetWindow:
        """The loop's goal (the controller's target window)."""
        return self.controller.target

    @property
    def last_trace(self) -> DecisionTrace | None:
        """The most recent decision trace, if any."""
        return self.traces[-1] if self.traces else None

    def in_target(self, rate: float) -> bool:
        """Whether ``rate`` sits inside the loop's target window."""
        return self.target.contains(rate)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self, beat_index: int | None = None, *, rate: float | None = None) -> DecisionTrace | None:
        """Run one observe-decide-act round if the cadence allows it.

        ``beat_index`` defaults to an internal counter (time-cadence drives
        and engines that tick loops in lockstep simply omit it); ``rate``
        short-circuits the source query when the caller already observed the
        stream (a fleet engine polling thousands of streams in one pass).
        Returns the :class:`DecisionTrace` when a decision was taken, else
        ``None``.
        """
        beat = self._next_beat if beat_index is None else int(beat_index)
        self._next_beat = beat + 1
        if not self.spacer.should_decide(beat):
            return None
        if rate is None:
            if self._query is None:
                raise ValueError(f"loop {self.name!r} has no source; pass rate= to step()")
            rate = self._query(self._effective_window(beat))
        before = self.actuator.current()
        decision = self.controller.decide(rate)
        after = self.actuator.apply(decision, beat=beat)
        if after != before:
            self._last_change_beat = beat
        trace = DecisionTrace(
            loop=self.name,
            beat=beat,
            observed_rate=float(rate),
            decision=decision,
            before=before,
            after=after,
        )
        self.traces.append(trace)
        if self._trace_limit is not None and len(self.traces) > self._trace_limit:
            del self.traces[: len(self.traces) - self._trace_limit]
        return trace

    def _effective_window(self, beat_index: int) -> int | None:
        """The rate window for a decision at ``beat_index``.

        With ``settle_after_change`` the window is restricted to the beats
        produced since the actuator last moved (minimum 2): judging a fresh
        setting on a window that still contains the previous setting's beats
        makes the loop chase its own transient and oscillate.
        """
        window = self.rate_window or None
        if not self.settle_after_change or self._last_change_beat is None:
            return window
        since_change = beat_index - self._last_change_beat
        if since_change < 2:
            since_change = 2
        if window is None:
            return since_change
        return min(window, since_change)

    def reset(self) -> None:
        """Forget traces, cadence and controller state.

        Actuators keep their value — a reset must not yank real resources
        (cores, frequency) out from under the application — with one
        exception: a :class:`LadderController`/:class:`LadderActuator` pair
        duplicates the ladder position on both sides, so the actuator is
        realigned to the controller's (reset) level; otherwise the two walk
        different rungs for the rest of the run.
        """
        self.traces.clear()
        self.controller.reset()
        level = getattr(self.controller, "level", None)
        if isinstance(self.actuator, LadderActuator) and isinstance(level, int):
            self.actuator.apply(ControlDecision(value=float(level)))
        self.spacer.reset()
        self._last_change_beat = None
        self._next_beat = 0

    # ------------------------------------------------------------------ #
    # Threaded drive
    # ------------------------------------------------------------------ #
    def start(self, interval: float) -> None:
        """Step the loop every ``interval`` seconds on a background thread.

        This is the wall-clock drive for loops observing live streams (a
        governor daemon watching a shared-memory segment); simulated
        experiments keep calling :meth:`step` manually on their beat hooks.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if self._thread is not None:
            raise RuntimeError(f"loop {self.name!r} is already running")
        self._stop.clear()
        self.last_error = None

        def drive() -> None:
            # A step that raises stops the drive, records the exception in
            # ``last_error`` and flips ``running`` off — a dead thread must
            # never masquerade as a live loop.
            try:
                while not self._stop.wait(interval):
                    self.step()
            except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
                self.last_error = exc
            finally:
                self._thread = None

        self._thread = threading.Thread(target=drive, name=f"control-loop-{self.name}", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the threaded drive (no-op when not running)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        """True while the threaded drive is active."""
        return self._thread is not None

    def __enter__(self) -> "ControlLoop":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlLoop(name={self.name!r}, target=[{self.target.minimum}, "
            f"{self.target.maximum}], decisions={len(self.traces)})"
        )
