"""Simulated cluster: nodes hosting heartbeat-instrumented virtual machines."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat

__all__ = ["CloudNode", "CloudVM", "CloudCluster"]

_vm_ids = itertools.count(1)
_node_ids = itertools.count(1)


@dataclass(slots=True)
class CloudNode:
    """A physical machine of the cluster.

    ``capacity`` is expressed in work units per second; the node's capacity is
    shared equally among the VMs placed on it.  ``powered`` models the
    consolidation use case (idle nodes are powered down to save energy);
    ``alive`` models hardware failure.
    """

    capacity: float
    node_id: int = field(default_factory=lambda: next(_node_ids))
    alive: bool = True
    powered: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    @property
    def available(self) -> bool:
        return self.alive and self.powered

    def fail(self) -> None:
        self.alive = False

    def power_down(self) -> None:
        self.powered = False

    def power_up(self) -> None:
        self.powered = True


@dataclass(slots=True)
class CloudVM:
    """A virtual machine running one heartbeat-instrumented application.

    ``work_per_beat`` is the work behind one application heartbeat (e.g. one
    served request batch); ``target_min``/``target_max`` is the goal the
    application publishes.  ``demand_factor`` scales the work per beat over
    time, letting scenarios model load spikes.
    """

    work_per_beat: float
    target_min: float
    target_max: float
    heartbeat: Heartbeat
    vm_id: int = field(default_factory=lambda: next(_vm_ids))
    node_id: int | None = None
    demand_factor: float = 1.0
    #: Fractional-beat carry maintained by :meth:`CloudCluster.step`.
    beat_carry: float = 0.0

    def __post_init__(self) -> None:
        if self.work_per_beat <= 0:
            raise ValueError(f"work_per_beat must be positive, got {self.work_per_beat}")
        if self.target_min < 0 or self.target_max < self.target_min:
            raise ValueError("invalid target range")
        self.heartbeat.set_target_rate(self.target_min, self.target_max)

    @property
    def placed(self) -> bool:
        return self.node_id is not None


class CloudCluster:
    """Nodes, VMs and the simulated clock that stamps their heartbeats.

    The cluster advances in fixed ticks (:meth:`step`): during one tick each
    VM placed on an available node produces heartbeats at the rate its share
    of the node's capacity allows, with timestamps spread uniformly across
    the tick.  VMs on failed or powered-down nodes produce nothing — which is
    exactly the signal the load balancer reacts to.
    """

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.nodes: dict[int, CloudNode] = {}
        self.vms: dict[int, CloudVM] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, capacity: float) -> CloudNode:
        node = CloudNode(capacity=capacity)
        self.nodes[node.node_id] = node
        return node

    def add_vm(
        self,
        work_per_beat: float,
        target_min: float,
        target_max: float,
        *,
        window: int = 20,
        node: CloudNode | None = None,
    ) -> CloudVM:
        heartbeat = Heartbeat(window=window, clock=self.clock, history=4096)
        vm = CloudVM(
            work_per_beat=work_per_beat,
            target_min=target_min,
            target_max=target_max,
            heartbeat=heartbeat,
        )
        self.vms[vm.vm_id] = vm
        if node is not None:
            self.place(vm.vm_id, node.node_id)
        return vm

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def place(self, vm_id: int, node_id: int) -> None:
        """Place (or migrate) a VM onto a node."""
        if vm_id not in self.vms:
            raise KeyError(f"unknown VM {vm_id}")
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}")
        self.vms[vm_id].node_id = node_id

    def evict(self, vm_id: int) -> None:
        """Remove a VM from its node (it stops making progress)."""
        self.vms[vm_id].node_id = None

    def vms_on(self, node_id: int) -> list[CloudVM]:
        return [vm for vm in self.vms.values() if vm.node_id == node_id]

    def node_load(self, node_id: int) -> float:
        """Aggregate work demand per second required to keep the node's VMs at
        the *midpoint* of their target windows."""
        total = 0.0
        for vm in self.vms_on(node_id):
            midpoint = 0.5 * (vm.target_min + vm.target_max)
            total += midpoint * vm.work_per_beat * vm.demand_factor
        return total

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    def step(self, dt: float = 1.0) -> dict[int, float]:
        """Advance the cluster by ``dt`` simulated seconds.

        Returns the achieved heart rate of every VM over the tick.  Beats are
        spread uniformly inside the tick, and a fractional carry is kept per
        VM so long-run rates are exact even when ``rate * dt`` is not an
        integer.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        start = self.clock.now()
        rates: dict[int, float] = {}
        pending: list[tuple[float, CloudVM]] = []
        for vm in self.vms.values():
            rate = self._achievable_rate(vm)
            rates[vm.vm_id] = rate
            exact = rate * dt + vm.beat_carry
            beats = int(exact)
            vm.beat_carry = exact - beats
            for k in range(beats):
                pending.append((start + (k + 1) * dt / (beats + 1), vm))
        # Register beats in global time order so every stream sees a
        # monotonically advancing shared clock.
        for when, vm in sorted(pending, key=lambda item: item[0]):
            self.clock.advance_to(when)
            vm.heartbeat.heartbeat(tag=vm.vm_id)
        self.clock.advance_to(start + dt)
        return rates

    def _achievable_rate(self, vm: CloudVM) -> float:
        if vm.node_id is None:
            return 0.0
        node = self.nodes[vm.node_id]
        if not node.available:
            return 0.0
        sharers = len(self.vms_on(node.node_id))
        share = node.capacity / sharers if sharers else node.capacity
        return share / (vm.work_per_beat * vm.demand_factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CloudCluster(nodes={len(self.nodes)}, vms={len(self.vms)})"
