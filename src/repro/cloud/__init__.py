"""Heartbeat-driven cluster management (paper Section 2.6).

The paper sketches three cloud uses of heartbeats: scaling resources when an
application's heart rate drops, detecting failed or failing machines by the
absence (or erratic arrival) of heartbeats, and consolidating "light" VMs
whose goals are comfortably met onto fewer physical machines to save energy.
This package implements all three on a simulated cluster so the ideas can be
exercised end to end:

* :class:`CloudCluster` — nodes with capacity, virtual machines whose hosted
  applications register heartbeats against a shared simulated clock;
* :class:`HeartbeatLoadBalancer` — the manager that watches each VM's
  heartbeat stream (through the same :class:`~repro.core.monitor.HeartbeatMonitor`
  abstraction every other observer uses) and migrates, scales and consolidates.
"""

from repro.cloud.balancer import BalancerAction, HeartbeatLoadBalancer, VMPlacementActuator
from repro.cloud.cluster import CloudCluster, CloudNode, CloudVM

__all__ = [
    "CloudNode",
    "CloudVM",
    "CloudCluster",
    "HeartbeatLoadBalancer",
    "BalancerAction",
    "VMPlacementActuator",
]
