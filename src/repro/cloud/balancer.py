"""Heartbeat-driven load balancer / cluster manager.

Implements the three Section-2.6 behaviours on a :class:`CloudCluster`:

* **scale-out / migration** — a VM whose heart rate sits below its published
  minimum is migrated to the node with the most spare capacity (powering one
  up if needed), because "as the heart rate decreases, the load balancer
  would shift traffic to a different server";
* **failure detection and fail-over** — a VM that has produced no heartbeat
  for longer than the liveness timeout is treated as running on a failed (or
  failing) machine and is migrated away;
* **consolidation** — VMs whose rates comfortably exceed their maxima are
  packed onto fewer nodes and emptied nodes are powered down, so "these
  'light' VMs can be consolidated onto a smaller number of physical machines
  to save energy".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.cluster import CloudCluster, CloudNode, CloudVM
from repro.core.monitor import HeartbeatMonitor

__all__ = ["BalancerAction", "HeartbeatLoadBalancer"]


@dataclass(frozen=True, slots=True)
class BalancerAction:
    """One action taken by the balancer during a management pass."""

    kind: str  # "migrate", "failover", "consolidate", "power_down", "power_up"
    vm_id: int | None
    from_node: int | None
    to_node: int | None
    reason: str


class HeartbeatLoadBalancer:
    """Observes every VM's heartbeats and manages placement.

    Parameters
    ----------
    cluster:
        The cluster to manage.
    liveness_timeout:
        Seconds without a heartbeat after which a VM's host is presumed
        failed.
    headroom:
        Fractional rate above a VM's target maximum regarded as "comfortably
        exceeding" its goal for consolidation purposes.
    """

    def __init__(
        self,
        cluster: CloudCluster,
        *,
        liveness_timeout: float = 5.0,
        headroom: float = 0.2,
    ) -> None:
        if liveness_timeout <= 0:
            raise ValueError(f"liveness_timeout must be positive, got {liveness_timeout}")
        if headroom < 0:
            raise ValueError(f"headroom must be >= 0, got {headroom}")
        self.cluster = cluster
        self.liveness_timeout = float(liveness_timeout)
        self.headroom = float(headroom)
        self.actions: list[BalancerAction] = []
        self._monitors: dict[int, HeartbeatMonitor] = {}

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def monitor_for(self, vm: CloudVM) -> HeartbeatMonitor:
        """The (cached) monitor observing ``vm``'s heartbeat stream."""
        monitor = self._monitors.get(vm.vm_id)
        if monitor is None:
            monitor = HeartbeatMonitor.attach(
                vm.heartbeat, liveness_timeout=self.liveness_timeout
            )
            self._monitors[vm.vm_id] = monitor
        return monitor

    def vm_rate(self, vm: CloudVM) -> float:
        return self.monitor_for(vm).current_rate()

    def vm_alive(self, vm: CloudVM) -> bool:
        return self.monitor_for(vm).is_alive(self.liveness_timeout)

    # ------------------------------------------------------------------ #
    # Management pass
    # ------------------------------------------------------------------ #
    def manage(self) -> list[BalancerAction]:
        """Run one observe-decide-act pass; returns the actions taken."""
        actions: list[BalancerAction] = []
        actions.extend(self._handle_failures())
        actions.extend(self._handle_slow_vms())
        actions.extend(self._consolidate())
        self.actions.extend(actions)
        return actions

    # ------------------------------------------------------------------ #
    # Individual behaviours
    # ------------------------------------------------------------------ #
    def _handle_failures(self) -> list[BalancerAction]:
        actions: list[BalancerAction] = []
        for vm in self.cluster.vms.values():
            if not vm.placed:
                continue
            node = self.cluster.nodes[vm.node_id]
            node_failed = not node.alive
            silent = vm.heartbeat.count > 0 and not self.vm_alive(vm)
            if node_failed or silent:
                target = self._best_node(exclude={vm.node_id})
                if target is None:
                    continue
                origin = vm.node_id
                self.cluster.place(vm.vm_id, target.node_id)
                actions.append(
                    BalancerAction(
                        kind="failover",
                        vm_id=vm.vm_id,
                        from_node=origin,
                        to_node=target.node_id,
                        reason="no heartbeats within the liveness timeout"
                        if silent
                        else "host reported failed",
                    )
                )
        return actions

    def _handle_slow_vms(self) -> list[BalancerAction]:
        actions: list[BalancerAction] = []
        for vm in self.cluster.vms.values():
            if not vm.placed:
                target = self._best_node()
                if target is not None:
                    self.cluster.place(vm.vm_id, target.node_id)
                    actions.append(
                        BalancerAction(
                            kind="migrate",
                            vm_id=vm.vm_id,
                            from_node=None,
                            to_node=target.node_id,
                            reason="unplaced VM",
                        )
                    )
                continue
            rate = self.vm_rate(vm)
            if vm.heartbeat.count < 2 or rate >= vm.target_min:
                continue
            # Below target: find a node with more headroom than the current one.
            current = vm.node_id
            candidate = self._best_node(exclude={current})
            if candidate is None:
                continue
            if self._spare_capacity(candidate) > self._spare_capacity(
                self.cluster.nodes[current]
            ):
                self.cluster.place(vm.vm_id, candidate.node_id)
                actions.append(
                    BalancerAction(
                        kind="migrate",
                        vm_id=vm.vm_id,
                        from_node=current,
                        to_node=candidate.node_id,
                        reason=f"heart rate {rate:.2f} below target minimum {vm.target_min:.2f}",
                    )
                )
        return actions

    def _consolidate(self) -> list[BalancerAction]:
        actions: list[BalancerAction] = []
        # Only consolidate when every placed VM comfortably exceeds its goal.
        placed = [vm for vm in self.cluster.vms.values() if vm.placed]
        if not placed:
            return actions
        for vm in placed:
            if vm.heartbeat.count < 2:
                return actions
            rate = self.vm_rate(vm)
            if rate < vm.target_max * (1.0 + self.headroom):
                return actions
        # Pack VMs onto the fewest nodes whose capacity covers their demand.
        nodes = sorted(
            (n for n in self.cluster.nodes.values() if n.available),
            key=lambda n: n.capacity,
            reverse=True,
        )
        demand_of = {
            vm.vm_id: 0.5 * (vm.target_min + vm.target_max) * vm.work_per_beat * vm.demand_factor
            for vm in placed
        }
        assignments: dict[int, int] = {}
        remaining = {n.node_id: n.capacity for n in nodes}
        for vm in sorted(placed, key=lambda v: demand_of[v.vm_id], reverse=True):
            for node in nodes:
                if remaining[node.node_id] >= demand_of[vm.vm_id]:
                    assignments[vm.vm_id] = node.node_id
                    remaining[node.node_id] -= demand_of[vm.vm_id]
                    break
        if not assignments or len(assignments) < len(placed):
            return actions
        used_nodes = set(assignments.values())
        if len(used_nodes) >= len({vm.node_id for vm in placed}):
            return actions  # no reduction in node count; leave placement alone
        for vm in placed:
            target = assignments[vm.vm_id]
            if target != vm.node_id:
                origin = vm.node_id
                self.cluster.place(vm.vm_id, target)
                actions.append(
                    BalancerAction(
                        kind="consolidate",
                        vm_id=vm.vm_id,
                        from_node=origin,
                        to_node=target,
                        reason="all goals comfortably met; packing onto fewer nodes",
                    )
                )
        for node in nodes:
            if node.node_id not in used_nodes and not self.cluster.vms_on(node.node_id):
                node.power_down()
                actions.append(
                    BalancerAction(
                        kind="power_down",
                        vm_id=None,
                        from_node=node.node_id,
                        to_node=None,
                        reason="node emptied by consolidation",
                    )
                )
        return actions

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _spare_capacity(self, node: CloudNode) -> float:
        if not node.available:
            return float("-inf")
        return node.capacity - self.cluster.node_load(node.node_id)

    def _best_node(self, exclude: set[int | None] | None = None) -> CloudNode | None:
        """The available node with the most spare capacity (powering up if needed)."""
        exclude = exclude or set()
        candidates = [
            n for n in self.cluster.nodes.values() if n.alive and n.node_id not in exclude
        ]
        if not candidates:
            return None
        best = max(candidates, key=self._spare_capacity_or_powered)
        if not best.powered:
            best.power_up()
            self.actions.append(
                BalancerAction(
                    kind="power_up",
                    vm_id=None,
                    from_node=None,
                    to_node=best.node_id,
                    reason="additional capacity required",
                )
            )
        return best

    def _spare_capacity_or_powered(self, node: CloudNode) -> float:
        # Powered-down nodes are usable (after power-up) but rank below
        # already-powered nodes with the same spare capacity.
        spare = node.capacity - self.cluster.node_load(node.node_id)
        return spare - (0.001 if not node.powered else 0.0)
