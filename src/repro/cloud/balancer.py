"""Heartbeat-driven load balancer / cluster manager.

Implements the three Section-2.6 behaviours on a :class:`CloudCluster`:

* **scale-out / migration** — a VM whose heart rate sits below its published
  minimum is migrated to the node with the most spare capacity (powering one
  up if needed), because "as the heart rate decreases, the load balancer
  would shift traffic to a different server";
* **failure detection and fail-over** — a VM that has produced no heartbeat
  for longer than the liveness timeout is treated as running on a failed (or
  failing) machine and is migrated away;
* **consolidation** — VMs whose rates comfortably exceed their maxima are
  packed onto fewer nodes and emptied nodes are powered down, so "these
  'light' VMs can be consolidated onto a smaller number of physical machines
  to save energy".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.adapt.loop import ControlLoop
from repro.clock import Clock
from repro.cloud.cluster import CloudCluster, CloudNode, CloudVM
from repro.control import ControlDecision, StepController, TargetWindow
from repro.core.aggregator import (
    CollectorLike,
    FleetSample,
    HeartbeatAggregator,
    collector_stream_sources,
)

__all__ = ["BalancerAction", "VMPlacementActuator", "HeartbeatLoadBalancer"]


@dataclass(frozen=True, slots=True)
class BalancerAction:
    """One action taken by the balancer during a management pass."""

    kind: str  # "migrate", "failover", "consolidate", "power_down", "power_up"
    vm_id: int | None
    from_node: int | None
    to_node: int | None
    reason: str


def _stream_name(vm: CloudVM) -> str:
    """Aggregator stream name for one VM's heartbeat."""
    return f"vm-{vm.vm_id}"


class VMPlacementActuator:
    """Placement knob for one VM: a positive delta asks for a better node.

    The "value" of the knob is the VM's current node id; ``apply`` migrates
    the VM to the node with the most spare capacity when that node offers
    strictly more headroom than the current host (the Section-2.6 rule: "as
    the heart rate decreases, the load balancer would shift traffic to a
    different server").  Negative deltas are ignored — fast VMs are handled
    by the balancer's consolidation pass, which needs the whole fleet's
    state, not one VM's.
    """

    def __init__(self, balancer: "HeartbeatLoadBalancer", vm: CloudVM) -> None:
        self._balancer = balancer
        self._vm = vm

    @property
    def bounds(self) -> tuple[float, float]:
        """Node ids are nominal, not ordered; the knob is unbounded."""
        return (-math.inf, math.inf)

    def current(self) -> float:
        return float(self._vm.node_id) if self._vm.node_id is not None else -1.0

    def apply(self, decision: ControlDecision, *, beat: int = -1) -> float:
        if not decision.delta or decision.delta <= 0:
            return self.current()
        vm = self._vm
        if vm.node_id is None:
            return self.current()
        balancer = self._balancer
        candidate = balancer._best_node(exclude={vm.node_id})
        if candidate is None:
            return self.current()
        current_node = balancer.cluster.nodes[vm.node_id]
        if balancer._spare_capacity(candidate) > balancer._spare_capacity(current_node):
            balancer.cluster.place(vm.vm_id, candidate.node_id)
        return self.current()


class HeartbeatLoadBalancer:
    """Observes every VM's heartbeats and manages placement.

    Parameters
    ----------
    cluster:
        The cluster to manage.
    liveness_timeout:
        Seconds without a heartbeat after which a VM's host is presumed
        failed.
    headroom:
        Fractional rate above a VM's target maximum regarded as "comfortably
        exceeding" its goal for consolidation purposes.
    num_shards:
        Reader shards of the underlying
        :class:`~repro.core.aggregator.HeartbeatAggregator`; every management
        pass observes the whole fleet with one sharded poll instead of one
        monitor round-trip per VM.
    collector:
        Remote-fleet mode: a :class:`repro.net.collector.HeartbeatCollector`
        (or anything :class:`~repro.core.aggregator.CollectorLike`) whose
        registered streams — named ``vm-<id>`` by each VM's network backend —
        are polled *instead of* the VMs' in-process heartbeat objects.  This
        is the balancer of the paper's Section 2.6 moved off-box: the VMs
        run anywhere, ship heartbeats over TCP, and the balancer manages
        placement purely from the collected telemetry.  A ``tcp://host:port``
        endpoint URL (or :class:`~repro.endpoints.TcpEndpoint`) may be
        passed instead of an object: the balancer then binds its own
        collector there (port ``0`` for ephemeral; see
        :attr:`collector_endpoint`) and closes it with :meth:`close`.
    clock:
        Observer time base for liveness ages; defaults to the cluster clock.
        Remote fleets stamped with ``WallClock(rebase=False)`` pass the same
        here.
    """

    def __init__(
        self,
        cluster: CloudCluster,
        *,
        liveness_timeout: float = 5.0,
        headroom: float = 0.2,
        num_shards: int = 1,
        collector: "CollectorLike | str | None" = None,
        clock: Clock | None = None,
    ) -> None:
        if liveness_timeout <= 0:
            raise ValueError(f"liveness_timeout must be positive, got {liveness_timeout}")
        if headroom < 0:
            raise ValueError(f"headroom must be >= 0, got {headroom}")
        self.cluster = cluster
        self.liveness_timeout = float(liveness_timeout)
        self.headroom = float(headroom)
        self.actions: list[BalancerAction] = []
        self._own_collector = None
        if collector is not None and not callable(getattr(collector, "stream_ids", None)):
            # A tcp:// endpoint URL: bind (and own) the collector ourselves.
            from repro.endpoints import open_collector

            collector = self._own_collector = open_collector(collector)  # type: ignore[arg-type]
        self._collector = collector
        self._aggregator = HeartbeatAggregator(
            clock=clock if clock is not None else cluster.clock,
            liveness_timeout=self.liveness_timeout,
            num_shards=num_shards,
        )
        self._expected: set[str] = set()
        self._last_sample: FleetSample | None = None
        #: Per-VM slow-handling loops (StepController → VMPlacementActuator),
        #: created lazily and pruned as VMs leave the cluster.
        self._slow_loops: dict[int, ControlLoop] = {}

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def aggregator(self) -> HeartbeatAggregator:
        """The fleet aggregator observing every VM's heartbeat stream."""
        return self._aggregator

    def observe(self) -> FleetSample:
        """Poll every VM's heartbeats in one sharded pass."""
        self._sync_streams()
        self._last_sample = self._aggregator.poll()
        return self._last_sample

    def vm_rate(self, vm: CloudVM) -> float:
        """The VM's observed heart rate; ``0.0`` when its stream is unreadable."""
        reading = self._fleet().get(_stream_name(vm))
        return reading.rate if reading is not None else 0.0

    def vm_alive(self, vm: CloudVM) -> bool:
        """Liveness of the VM's stream; an unreadable stream counts as dead."""
        reading = self._fleet().get(_stream_name(vm))
        if reading is None:
            return False
        return reading.age is not None and reading.age <= self.liveness_timeout

    def _fleet(self) -> FleetSample:
        """The current fleet sample, reusing this tick's poll when possible."""
        sample = self._last_sample
        if sample is not None and sample.taken_at == self.cluster.clock.now():
            # Membership, not count: same-tick VM churn (one added, one
            # removed) must invalidate the cache, and errored streams —
            # absent from the readings but present in errors — must not.
            observed = set(sample.names) | set(sample.errors)
            if self._collector is None:
                expected = {_stream_name(vm) for vm in self.cluster.vms.values()}
            else:
                # Collector registrations only change on a sync, so the last
                # sync's membership is the right cache key for remote mode.
                expected = self._expected & {_stream_name(vm) for vm in self.cluster.vms.values()}
            if observed == expected:
                return sample
        return self.observe()

    def _sync_streams(self) -> None:
        """Reconcile aggregator attachments with the cluster's VM set.

        In local mode every VM's in-process heartbeat is attached directly;
        in remote-fleet mode VM streams are attached from the collector as
        they register, so a VM whose producer has not dialled in yet simply
        has no reading (and is treated as silent by the failure handler once
        it should have beaten).
        """
        current = {_stream_name(vm): vm for vm in self.cluster.vms.values()}
        if self._collector is not None:
            available = set(self._collector.stream_ids())
            expected = set(current) & available
        else:
            expected = set(current)
        for name in self._aggregator.names:
            if name not in expected:
                self._aggregator.detach(name)
        for name, vm in current.items():
            if name in self._aggregator or name not in expected:
                continue
            if self._collector is not None:
                source, delta, probe = collector_stream_sources(self._collector, name)
                self._aggregator.attach_source(name, source, delta=delta, probe=probe)
            else:
                self._aggregator.attach(name, vm.heartbeat)
        self._expected = expected

    # ------------------------------------------------------------------ #
    # Management pass
    # ------------------------------------------------------------------ #
    def manage(self) -> list[BalancerAction]:
        """Run one observe-decide-act pass; returns the actions taken."""
        fleet = self.observe()
        actions: list[BalancerAction] = []
        actions.extend(self._handle_failures(fleet))
        actions.extend(self._handle_slow_vms(fleet))
        actions.extend(self._consolidate(fleet))
        self.actions.extend(actions)
        return actions

    # ------------------------------------------------------------------ #
    # Individual behaviours
    # ------------------------------------------------------------------ #
    def _handle_failures(self, fleet: FleetSample) -> list[BalancerAction]:
        actions: list[BalancerAction] = []
        for vm in self.cluster.vms.values():
            if not vm.placed:
                continue
            reading = fleet.get(_stream_name(vm))
            node = self.cluster.nodes[vm.node_id]
            node_failed = not node.alive
            # A stream that errored during the poll (reading is None) is as
            # good as silent: its producer can no longer be observed.
            silent = reading is None or (
                reading.total_beats > 0
                and not (reading.age is not None and reading.age <= self.liveness_timeout)
            )
            if reading is None and vm.heartbeat.count == 0:
                silent = False  # never-started VM, not a failure signal
            if node_failed or silent:
                target = self._best_node(exclude={vm.node_id})
                if target is None:
                    continue
                origin = vm.node_id
                self.cluster.place(vm.vm_id, target.node_id)
                actions.append(
                    BalancerAction(
                        kind="failover",
                        vm_id=vm.vm_id,
                        from_node=origin,
                        to_node=target.node_id,
                        reason="no heartbeats within the liveness timeout"
                        if silent
                        else "host reported failed",
                    )
                )
        return actions

    def _slow_loop_for(self, vm: CloudVM) -> ControlLoop:
        """The VM's slow-handling control loop (lazily created).

        One :class:`~repro.adapt.loop.ControlLoop` per VM: a
        :class:`StepController` against ``[target_min, inf)`` — only "too
        slow" triggers a placement request — driving a
        :class:`VMPlacementActuator`.  The balancer feeds the fleet sample's
        observed rate in, so the whole fleet still costs one sharded poll.
        """
        loop = self._slow_loops.get(vm.vm_id)
        if loop is None:
            loop = ControlLoop(
                None,
                StepController(TargetWindow(vm.target_min, math.inf)),
                VMPlacementActuator(self, vm),
                name=_stream_name(vm),
                decision_interval=1,
                warmup=0,
            )
            self._slow_loops[vm.vm_id] = loop
        return loop

    def _handle_slow_vms(self, fleet: FleetSample) -> list[BalancerAction]:
        actions: list[BalancerAction] = []
        if len(self._slow_loops) > len(self.cluster.vms):
            self._slow_loops = {
                vm_id: loop for vm_id, loop in self._slow_loops.items() if vm_id in self.cluster.vms
            }
        for vm in self.cluster.vms.values():
            if not vm.placed:
                target = self._best_node()
                if target is not None:
                    self.cluster.place(vm.vm_id, target.node_id)
                    actions.append(
                        BalancerAction(
                            kind="migrate",
                            vm_id=vm.vm_id,
                            from_node=None,
                            to_node=target.node_id,
                            reason="unplaced VM",
                        )
                    )
                continue
            reading = fleet.get(_stream_name(vm))
            if reading is None or reading.total_beats < 2:
                continue
            trace = self._slow_loop_for(vm).step(rate=reading.rate)
            if trace is not None and trace.changed:
                actions.append(
                    BalancerAction(
                        kind="migrate",
                        vm_id=vm.vm_id,
                        from_node=int(trace.before),
                        to_node=int(trace.after),
                        reason=(
                            f"heart rate {trace.observed_rate:.2f} below target "
                            f"minimum {vm.target_min:.2f}"
                        ),
                    )
                )
        return actions

    def _consolidate(self, fleet: FleetSample) -> list[BalancerAction]:
        actions: list[BalancerAction] = []
        # Only consolidate when every placed VM comfortably exceeds its goal.
        placed = [vm for vm in self.cluster.vms.values() if vm.placed]
        if not placed:
            return actions
        for vm in placed:
            reading = fleet.get(_stream_name(vm))
            if reading is None or reading.total_beats < 2:
                return actions
            if reading.rate < vm.target_max * (1.0 + self.headroom):
                return actions
        # Pack VMs onto the fewest nodes whose capacity covers their demand.
        nodes = sorted(
            (n for n in self.cluster.nodes.values() if n.available),
            key=lambda n: n.capacity,
            reverse=True,
        )
        demand_of = {
            vm.vm_id: 0.5 * (vm.target_min + vm.target_max) * vm.work_per_beat * vm.demand_factor
            for vm in placed
        }
        assignments: dict[int, int] = {}
        remaining = {n.node_id: n.capacity for n in nodes}
        for vm in sorted(placed, key=lambda v: demand_of[v.vm_id], reverse=True):
            for node in nodes:
                if remaining[node.node_id] >= demand_of[vm.vm_id]:
                    assignments[vm.vm_id] = node.node_id
                    remaining[node.node_id] -= demand_of[vm.vm_id]
                    break
        if not assignments or len(assignments) < len(placed):
            return actions
        used_nodes = set(assignments.values())
        if len(used_nodes) >= len({vm.node_id for vm in placed}):
            return actions  # no reduction in node count; leave placement alone
        for vm in placed:
            target = assignments[vm.vm_id]
            if target != vm.node_id:
                origin = vm.node_id
                self.cluster.place(vm.vm_id, target)
                actions.append(
                    BalancerAction(
                        kind="consolidate",
                        vm_id=vm.vm_id,
                        from_node=origin,
                        to_node=target,
                        reason="all goals comfortably met; packing onto fewer nodes",
                    )
                )
        for node in nodes:
            if node.node_id not in used_nodes and not self.cluster.vms_on(node.node_id):
                node.power_down()
                actions.append(
                    BalancerAction(
                        kind="power_down",
                        vm_id=None,
                        from_node=node.node_id,
                        to_node=None,
                        reason="node emptied by consolidation",
                    )
                )
        return actions

    @property
    def collector_endpoint(self) -> str | None:
        """The ``tcp://host:port`` URL of the balancer-owned collector, if any.

        ``None`` in local mode or when the caller supplied (and owns) the
        collector object.  Producers dial this URL.
        """
        if self._own_collector is None:
            return None
        return self._own_collector.endpoint_url

    def close(self) -> None:
        """Release the fleet aggregator (and any owned collector).  Idempotent."""
        self._aggregator.close()
        if self._own_collector is not None:
            self._own_collector.close()
        self._last_sample = None
        self._slow_loops.clear()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _spare_capacity(self, node: CloudNode) -> float:
        if not node.available:
            return float("-inf")
        return node.capacity - self.cluster.node_load(node.node_id)

    def _best_node(self, exclude: set[int | None] | None = None) -> CloudNode | None:
        """The available node with the most spare capacity (powering up if needed)."""
        exclude = exclude or set()
        candidates = [
            n for n in self.cluster.nodes.values() if n.alive and n.node_id not in exclude
        ]
        if not candidates:
            return None
        best = max(candidates, key=self._spare_capacity_or_powered)
        if not best.powered:
            best.power_up()
            self.actions.append(
                BalancerAction(
                    kind="power_up",
                    vm_id=None,
                    from_node=None,
                    to_node=best.node_id,
                    reason="additional capacity required",
                )
            )
        return best

    def _spare_capacity_or_powered(self, node: CloudNode) -> float:
        # Powered-down nodes are usable (after power-up) but rank below
        # already-powered nodes with the same spare capacity.
        spare = node.capacity - self.cluster.node_load(node.node_id)
        return spare - (0.001 if not node.powered else 0.0)
