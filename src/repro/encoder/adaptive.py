"""The internally adaptive encoder (paper Section 5.2).

:class:`AdaptiveEncoder` is the reproduction of the paper's Heartbeat-enabled
x264: it registers a heartbeat after every encoded frame, checks its own
heart rate every ``check_interval`` frames, and when the rate is below target
it walks down the preset ladder — trading PSNR for speed — until the target
is met (and can climb back up when there is comfortable headroom).

The encoder is agnostic to how time passes:

* in **wall-clock mode** (no ``work_rate``) the heartbeat clock measures real
  elapsed time around the real encoding work;
* in **simulated mode** a ``work_rate`` (encoder work units the platform can
  retire per simulated second) is supplied and the encoder advances its
  heartbeat's :class:`~repro.clock.SimulatedClock` by ``work / work_rate``
  after each frame.  The fault-tolerance experiment (Figure 8) changes
  ``work_rate`` mid-run to model cores failing underneath the encoder — the
  encoder never learns *why* it slowed down, only that its heart rate
  dropped, exactly as the paper argues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.adapt.actuator import LadderActuator
from repro.adapt.loop import ControlLoop
from repro.clock import SimulatedClock
from repro.control import DecisionSpacer, LadderController, TargetWindow
from repro.core.heartbeat import Heartbeat
from repro.encoder.encoder import BlockEncoder, FrameResult
from repro.encoder.frames import SyntheticVideoSource
from repro.encoder.settings import PRESET_LADDER, preset

__all__ = ["AdaptiveFrameRecord", "AdaptiveEncoder"]


@dataclass(frozen=True, slots=True)
class AdaptiveFrameRecord:
    """Per-frame record of an adaptive encoding run."""

    frame_index: int
    level: int
    heart_rate: float
    psnr: float
    bits: float
    work: float
    timestamp: float
    adapted: bool


class AdaptiveEncoder:
    """Heartbeat-driven self-adapting encoder.

    Parameters
    ----------
    source:
        Video source supplying frames by index.
    heartbeat:
        Heartbeat stream the encoder registers its per-frame beats on.  Its
        target range is set from ``target_min``/``target_max``.
    target_min, target_max:
        Desired heart-rate window in beats (frames) per second.  The paper's
        experiment uses "at least 30", i.e. an unbounded maximum.
    check_interval:
        Frames between self-checks (the paper checks every 40 frames) — also
        the rate window used for the check.
    initial_level:
        Starting preset-ladder level (0 = the demanding Main-profile-like
        configuration).
    work_rate:
        Encoder work units per simulated second available to the encoder;
        enables simulated-time mode (see module docstring).  ``None`` leaves
        timing to the wall clock.
    adaptive:
        When False the encoder never changes level — this is the
        "unmodified x264" baseline used by Figures 4 and 8.
    """

    def __init__(
        self,
        source: SyntheticVideoSource,
        heartbeat: Heartbeat,
        *,
        target_min: float = 30.0,
        target_max: float = math.inf,
        check_interval: int = 40,
        initial_level: int = 0,
        work_rate: float | None = None,
        adaptive: bool = True,
        block_size: int = 8,
    ) -> None:
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        if work_rate is not None and work_rate <= 0:
            raise ValueError(f"work_rate must be positive, got {work_rate}")
        self.source = source
        self.heartbeat = heartbeat
        self.encoder = BlockEncoder(
            width=source.width,
            height=source.height,
            block_size=block_size,
            settings=preset(initial_level),
        )
        self.controller = LadderController(
            TargetWindow(target_min, target_max),
            levels=len(PRESET_LADDER),
            initial_level=initial_level,
        )
        self.check_interval = int(check_interval)
        #: The unified adaptation loop: heartbeat source → ladder controller
        #: → preset actuator.  The encoder is the paper's *internal* adapter,
        #: so the loop's source is its own heartbeat, windowed to the check
        #: interval exactly like the legacy self-check.
        self.loop = ControlLoop(
            lambda window=None: self.heartbeat.current_rate(self.check_interval),
            self.controller,
            LadderActuator(
                levels=len(PRESET_LADDER),
                initial_level=initial_level,
                on_change=self._apply_level,
            ),
            name="adaptive-encoder",
            decision_interval=self.check_interval,
        )
        self.work_rate = float(work_rate) if work_rate is not None else None
        self.adaptive = bool(adaptive)
        self.records: list[AdaptiveFrameRecord] = []
        finite_max = target_max if math.isfinite(target_max) else max(4.0 * target_min, 1.0)
        heartbeat.set_target_rate(target_min, finite_max)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def level(self) -> int:
        """Current preset-ladder level."""
        return self.controller.level

    @property
    def spacer(self) -> DecisionSpacer:
        """The loop's decision spacer (legacy accessor)."""
        return self.loop.spacer

    @property
    def frames_encoded(self) -> int:
        return self.encoder.frames_encoded

    def _apply_level(self, level: int) -> None:
        """Actuator hook: swap the encoder onto the new preset level."""
        self.encoder.settings = preset(level)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode_next(self) -> AdaptiveFrameRecord:
        """Encode the next frame, register its heartbeat, maybe adapt."""
        index = self.encoder.frames_encoded
        frame = self.source.frame(index)
        result: FrameResult = self.encoder.encode_frame(frame)
        self._account_time(result.work)
        self.heartbeat.heartbeat(tag=index)
        adapted = False
        if self.adaptive:
            trace = self.loop.step(index)
            adapted = trace is not None and not trace.decision.is_noop
        record = AdaptiveFrameRecord(
            frame_index=index,
            level=self.controller.level,
            heart_rate=self.heartbeat.current_rate(),
            psnr=result.psnr,
            bits=result.bits,
            work=result.work,
            timestamp=self.heartbeat.last_timestamp() or 0.0,
            adapted=adapted,
        )
        self.records.append(record)
        return record

    def encode(self, frames: int) -> list[AdaptiveFrameRecord]:
        """Encode ``frames`` frames and return their records."""
        if frames < 0:
            raise ValueError(f"frames must be >= 0, got {frames}")
        return [self.encode_next() for _ in range(frames)]

    def set_work_rate(self, work_rate: float) -> None:
        """Change the platform capacity (simulated-time mode only).

        Used by the fault injector: fewer healthy cores means fewer work
        units retired per second.
        """
        if work_rate <= 0:
            raise ValueError(f"work_rate must be positive, got {work_rate}")
        if self.work_rate is None:
            raise ValueError("work_rate can only be changed in simulated-time mode")
        self.work_rate = float(work_rate)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _account_time(self, work: float) -> None:
        if self.work_rate is None:
            return
        clock = self.heartbeat.clock
        if not isinstance(clock, SimulatedClock):
            raise TypeError(
                "simulated-time mode requires the heartbeat to use a SimulatedClock"
            )
        clock.advance(work / self.work_rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveEncoder(level={self.level}, frames={self.frames_encoded}, "
            f"adaptive={self.adaptive})"
        )
