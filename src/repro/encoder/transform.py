"""Residual transform, quantisation and reconstruction.

After motion compensation the encoder transforms the residual (source minus
prediction) block-by-block with a 2-D DCT, quantises the coefficients with a
uniform quantiser controlled by the quantisation parameter (QP), estimates
the bits needed to entropy-code the surviving coefficients, and reconstructs
the frame the decoder would see (prediction plus dequantised residual).  The
reconstruction is what later frames use as their motion-compensation
reference, so quantisation error propagates realistically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import dctn, idctn

__all__ = ["TransformResult", "quantisation_step", "transform_and_reconstruct"]


@dataclass(frozen=True, slots=True)
class TransformResult:
    """Outcome of transforming and reconstructing one residual block."""

    #: Reconstructed block (prediction + dequantised residual), clipped to [0, 255].
    reconstruction: np.ndarray
    #: Estimated bits to entropy-code the quantised coefficients.
    bits: float
    #: Number of non-zero quantised coefficients.
    nonzero_coefficients: int


def quantisation_step(qp: int) -> float:
    """Map an H.264-style QP (0..51) to a quantiser step size.

    H.264's step size doubles every 6 QP; the same exponential rule is used
    here so QP values read familiarly.
    """
    if not 0 <= qp <= 51:
        raise ValueError(f"qp must be in [0, 51], got {qp}")
    return 0.625 * 2.0 ** (qp / 6.0)


def transform_and_reconstruct(
    source_block: np.ndarray, prediction: np.ndarray, qp: int
) -> TransformResult:
    """Transform-code one block's residual and reconstruct it.

    Returns the decoder-side reconstruction, an estimate of the bits spent
    (a fixed cost per non-zero coefficient plus a magnitude-dependent term —
    a stand-in for CAVLC that preserves the bits-vs-QP trend), and the number
    of surviving coefficients.
    """
    if source_block.shape != prediction.shape:
        raise ValueError(
            f"block shapes differ: {source_block.shape} vs {prediction.shape}"
        )
    residual = source_block.astype(np.float64) - prediction.astype(np.float64)
    coefficients = dctn(residual, norm="ortho")
    step = quantisation_step(qp)
    quantised = np.round(coefficients / step)
    nonzero = int(np.count_nonzero(quantised))
    # Bits: ~1.5 bits of signalling plus log2(|level|)+1 magnitude bits per
    # surviving coefficient.
    magnitudes = np.abs(quantised[quantised != 0])
    bits = 1.5 * nonzero + float(np.sum(np.log2(magnitudes + 1.0)))
    dequantised = quantised * step
    reconstructed_residual = idctn(dequantised, norm="ortho")
    reconstruction = np.clip(prediction.astype(np.float64) + reconstructed_residual, 0.0, 255.0)
    return TransformResult(
        reconstruction=reconstruction, bits=bits, nonzero_coefficients=nonzero
    )
