"""Synthetic video source.

Generates greyscale frames containing textured moving objects over a textured
background with sensor noise.  Scene *complexity phases* control how much
motion and detail each section of the sequence has, which is how the
reproduction recreates the paper's Figure 2 (x264 on the PARSEC native input
has an expensive opening section, an easy middle section and an expensive
tail) and the "input becomes slightly easier at the end" effect visible in
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SceneCut", "SyntheticVideoSource"]


@dataclass(frozen=True, slots=True)
class SceneCut:
    """A contiguous section of the sequence with fixed complexity.

    Attributes
    ----------
    start_frame:
        First frame index of the section.
    motion:
        Pixels of object displacement per frame (larger = harder motion
        estimation, more residual energy).
    detail:
        Amplitude of the high-frequency texture (larger = more residual bits
        and more work in partition analysis).
    """

    start_frame: int
    motion: float
    detail: float


#: Default phase structure loosely following the paper's Figure 2: a
#: demanding opening, an easier middle section, and a demanding tail.
DEFAULT_SCENE_CUTS = (
    SceneCut(start_frame=0, motion=2.5, detail=1.0),
    SceneCut(start_frame=100, motion=0.8, detail=0.45),
    SceneCut(start_frame=330, motion=2.5, detail=1.0),
)


class SyntheticVideoSource:
    """Deterministic synthetic greyscale video.

    Parameters
    ----------
    width, height:
        Frame dimensions in pixels (multiples of the encoder block size).
    num_objects:
        Number of moving textured rectangles.
    scene_cuts:
        Complexity phases; defaults to the Figure-2-like three-phase profile.
    noise:
        Standard deviation of per-pixel sensor noise (in grey levels).
    seed:
        Seed of the generator; the same seed always yields the same video.
    """

    def __init__(
        self,
        width: int = 64,
        height: int = 64,
        *,
        num_objects: int = 4,
        scene_cuts: tuple[SceneCut, ...] = DEFAULT_SCENE_CUTS,
        noise: float = 2.0,
        seed: int = 0,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("frame dimensions must be positive")
        if num_objects < 0:
            raise ValueError("num_objects must be >= 0")
        if not scene_cuts or scene_cuts[0].start_frame != 0:
            raise ValueError("scene_cuts must start with a cut at frame 0")
        self.width = int(width)
        self.height = int(height)
        self.noise = float(noise)
        self.scene_cuts = tuple(sorted(scene_cuts, key=lambda c: c.start_frame))
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self._background = self._textured_field(rng, height, width, scale=8)
        self._objects = [
            {
                "size": int(rng.integers(8, 17)),
                "texture": self._textured_field(rng, 16, 16, scale=3),
                "origin": np.array(
                    [rng.uniform(0, height - 16), rng.uniform(0, width - 16)]
                ),
                "direction": rng.uniform(-1.0, 1.0, size=2),
            }
            for _ in range(num_objects)
        ]
        for obj in self._objects:
            norm = np.linalg.norm(obj["direction"])
            obj["direction"] = obj["direction"] / norm if norm > 0 else np.array([1.0, 0.0])

    # ------------------------------------------------------------------ #
    # Phase lookup
    # ------------------------------------------------------------------ #
    def scene_cut_at(self, frame_index: int) -> SceneCut:
        """The complexity phase governing ``frame_index``."""
        active = self.scene_cuts[0]
        for cut in self.scene_cuts:
            if frame_index >= cut.start_frame:
                active = cut
            else:
                break
        return active

    # ------------------------------------------------------------------ #
    # Frame synthesis
    # ------------------------------------------------------------------ #
    def frame(self, frame_index: int) -> np.ndarray:
        """Return frame ``frame_index`` as a ``float64`` array in [0, 255]."""
        if frame_index < 0:
            raise ValueError(f"frame_index must be >= 0, got {frame_index}")
        cut = self.scene_cut_at(frame_index)
        canvas = self._background.copy()
        # Cumulative object displacement: integrate motion over the phases so
        # object positions are continuous across cuts.
        displacement = self._cumulative_motion(frame_index)
        for k, obj in enumerate(self._objects):
            size = obj["size"]
            pos = obj["origin"] + displacement * obj["direction"] * (0.7 + 0.15 * k)
            top = int(pos[0]) % max(1, self.height - size)
            left = int(pos[1]) % max(1, self.width - size)
            texture = obj["texture"][:size, :size] * cut.detail
            canvas[top : top + size, left : left + size] = (
                0.35 * canvas[top : top + size, left : left + size] + 0.65 * (128.0 + texture)
            )
        # Scene detail also modulates the background contrast.
        canvas = 128.0 + (canvas - 128.0) * (0.6 + 0.4 * cut.detail)
        rng = np.random.default_rng((self.seed + 1) * 7_919 + frame_index)
        canvas = canvas + rng.normal(0.0, self.noise, canvas.shape)
        return np.clip(canvas, 0.0, 255.0)

    def frames(self, count: int, start: int = 0) -> list[np.ndarray]:
        """Materialise ``count`` consecutive frames starting at ``start``."""
        return [self.frame(start + i) for i in range(count)]

    def _cumulative_motion(self, frame_index: int) -> float:
        """Total object displacement accumulated up to ``frame_index``."""
        total = 0.0
        for i, cut in enumerate(self.scene_cuts):
            end = (
                self.scene_cuts[i + 1].start_frame
                if i + 1 < len(self.scene_cuts)
                else frame_index + 1
            )
            if frame_index < cut.start_frame:
                break
            covered = min(frame_index, end - 1) - cut.start_frame + 1
            total += covered * cut.motion
        return total

    @staticmethod
    def _textured_field(rng: np.random.Generator, h: int, w: int, scale: int) -> np.ndarray:
        """Smooth random texture produced by upsampling low-resolution noise."""
        coarse = rng.normal(0.0, 30.0, size=(max(2, h // scale), max(2, w // scale)))
        ys = np.linspace(0, coarse.shape[0] - 1, h)
        xs = np.linspace(0, coarse.shape[1] - 1, w)
        yi = np.clip(ys.astype(int), 0, coarse.shape[0] - 2)
        xi = np.clip(xs.astype(int), 0, coarse.shape[1] - 2)
        fy = (ys - yi)[:, None]
        fx = (xs - xi)[None, :]
        field = (
            coarse[np.ix_(yi, xi)] * (1 - fy) * (1 - fx)
            + coarse[np.ix_(yi + 1, xi)] * fy * (1 - fx)
            + coarse[np.ix_(yi, xi + 1)] * (1 - fy) * fx
            + coarse[np.ix_(yi + 1, xi + 1)] * fy * fx
        )
        return 128.0 + field
