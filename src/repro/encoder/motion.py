"""Block motion estimation.

Three search strategies with very different cost/quality points, matching the
knobs the paper's adaptive x264 traverses ("the adaptive version of x264
tries several search algorithms for motion estimation and finally settles on
the computationally light diamond search algorithm"):

* :func:`full_search` — exhaustive search of every offset in the range
  (best prediction, cost grows with the square of the range);
* :func:`hexagon_search` — iterative hexagon pattern (x264's ``hex``);
* :func:`diamond_search` — iterative small-diamond pattern (x264's ``dia``,
  the cheapest).

Every function returns a :class:`MotionResult` carrying the motion vector,
the matched reference block, the SAD, and the number of candidate blocks
evaluated — the latter is the unit of work the encoder charges for the
search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MotionResult",
    "sad",
    "full_search",
    "full_search_multi",
    "diamond_search",
    "hexagon_search",
    "search",
]


@dataclass(frozen=True, slots=True)
class MotionResult:
    """Outcome of a block motion search."""

    #: Vertical and horizontal displacement of the best match (reference
    #: block position minus current block position).
    motion_vector: tuple[int, int]
    #: The matched reference block (same shape as the source block).
    prediction: np.ndarray
    #: Sum of absolute differences of the best match.
    sad: float
    #: Number of candidate blocks whose SAD was evaluated.
    candidates_evaluated: int


def sad(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """Sum of absolute differences between two equally shaped blocks."""
    if block_a.shape != block_b.shape:
        raise ValueError(f"block shapes differ: {block_a.shape} vs {block_b.shape}")
    return float(np.abs(block_a.astype(np.float64) - block_b.astype(np.float64)).sum())


def _clip_offset(
    reference: np.ndarray, top: int, left: int, block_h: int, block_w: int
) -> tuple[int, int]:
    """Clamp a candidate block origin inside the reference frame."""
    top = max(0, min(top, reference.shape[0] - block_h))
    left = max(0, min(left, reference.shape[1] - block_w))
    return top, left


def full_search(
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    search_range: int,
) -> MotionResult:
    """Exhaustive search of every integer offset within ``±search_range``.

    Vectorised over all candidates: the search window is expanded into a
    sliding-window view and the SADs of every candidate are computed in one
    tensor operation (no Python loop over candidates).
    """
    if search_range < 0:
        raise ValueError(f"search_range must be >= 0, got {search_range}")
    bh, bw = block.shape
    top0 = max(0, block_top - search_range)
    left0 = max(0, block_left - search_range)
    top1 = min(reference.shape[0], block_top + bh + search_range)
    left1 = min(reference.shape[1], block_left + bw + search_range)
    window = reference[top0:top1, left0:left1]
    candidates = np.lib.stride_tricks.sliding_window_view(window, (bh, bw))
    diffs = np.abs(candidates - np.asarray(block, dtype=np.float64))
    sads = diffs.sum(axis=(2, 3))
    best_flat = int(np.argmin(sads))
    best_row, best_col = np.unravel_index(best_flat, sads.shape)
    best_top = top0 + int(best_row)
    best_left = left0 + int(best_col)
    return MotionResult(
        motion_vector=(best_top - block_top, best_left - block_left),
        prediction=reference[best_top : best_top + bh, best_left : best_left + bw].copy(),
        sad=float(sads[best_row, best_col]),
        candidates_evaluated=int(sads.size),
    )


def full_search_multi(
    block: np.ndarray,
    references: list[np.ndarray],
    block_top: int,
    block_left: int,
    search_range: int,
) -> tuple[MotionResult, int]:
    """Exhaustive search over several reference frames in one tensor operation.

    Functionally identical to calling :func:`full_search` per reference and
    keeping the best match, but the candidate SADs of all references are
    computed in a single vectorised pass.  Returns ``(result, reference_index)``
    where ``result.candidates_evaluated`` already counts every reference.
    """
    if not references:
        raise ValueError("at least one reference frame is required")
    if len({r.shape for r in references}) != 1:
        raise ValueError("all reference frames must share the same shape")
    if search_range < 0:
        raise ValueError(f"search_range must be >= 0, got {search_range}")
    bh, bw = block.shape
    shape = references[0].shape
    top0 = max(0, block_top - search_range)
    left0 = max(0, block_left - search_range)
    top1 = min(shape[0], block_top + bh + search_range)
    left1 = min(shape[1], block_left + bw + search_range)
    stack = np.stack([np.asarray(r, dtype=np.float64)[top0:top1, left0:left1] for r in references])
    candidates = np.lib.stride_tricks.sliding_window_view(stack, (bh, bw), axis=(1, 2))
    sads = np.abs(candidates - np.asarray(block, dtype=np.float64)).sum(axis=(3, 4))
    best_flat = int(np.argmin(sads))
    ref_idx, best_row, best_col = np.unravel_index(best_flat, sads.shape)
    best_top = top0 + int(best_row)
    best_left = left0 + int(best_col)
    reference = references[int(ref_idx)]
    result = MotionResult(
        motion_vector=(best_top - block_top, best_left - block_left),
        prediction=reference[best_top : best_top + bh, best_left : best_left + bw].copy(),
        sad=float(sads[ref_idx, best_row, best_col]),
        candidates_evaluated=int(sads.size),
    )
    return result, int(ref_idx)


_SMALL_DIAMOND = ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1))
_LARGE_HEXAGON = ((0, 0), (-2, 0), (2, 0), (-1, 2), (1, 2), (-1, -2), (1, -2))


def _pattern_search(
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    search_range: int,
    pattern: tuple[tuple[int, int], ...],
    refine_pattern: tuple[tuple[int, int], ...],
    max_iterations: int = 16,
) -> MotionResult:
    """Iterative pattern search shared by diamond and hexagon strategies.

    Candidate SADs are computed in *batches*: every round prefetches the
    whole pattern ring around the current best into one stacked tensor and
    reduces all SADs in a single vectorized operation, instead of one
    numpy round-trip per candidate.  The greedy scan below keeps the exact
    original semantics — including mid-scan re-centring when an earlier
    pattern offset improves — by reading from the memo, so the returned
    motion vector, SAD and evaluation count are bit-identical to the
    sequential implementation (``candidates_evaluated`` counts only the
    positions that scan actually requested, never speculative prefetches).
    """
    bh, bw = block.shape
    block64 = block.astype(np.float64)
    center = (block_top, block_left)
    evaluated: dict[tuple[int, int], float] = {}
    visited: set[tuple[int, int]] = set()

    def prefetch(keys: list[tuple[int, int]]) -> None:
        """Score every not-yet-memoized position with one batched reduction."""
        fresh = [key for key in keys if key not in evaluated]
        if not fresh:
            return
        stack = np.empty((len(fresh), bh, bw), dtype=np.float64)
        for j, (top, left) in enumerate(fresh):
            ctop, cleft = _clip_offset(reference, top, left, bh, bw)
            stack[j] = reference[ctop : ctop + bh, cleft : cleft + bw]
        sads = np.abs(stack - block64).sum(axis=(1, 2))
        for key, value in zip(fresh, sads):
            evaluated[key] = float(value)

    def admissible(top: int, left: int) -> bool:
        return abs(top - block_top) <= search_range and abs(left - block_left) <= search_range

    def evaluate(top: int, left: int) -> float:
        key = (top, left)
        visited.add(key)
        value = evaluated.get(key)
        if value is None:
            prefetch([key])
            value = evaluated[key]
        return value

    best = center
    best_sad = evaluate(*center)
    for _ in range(max_iterations):
        prefetch(
            [
                (best[0] + dy, best[1] + dx)
                for dy, dx in pattern
                if admissible(best[0] + dy, best[1] + dx)
            ]
        )
        improved = False
        for dy, dx in pattern:
            cand = (best[0] + dy, best[1] + dx)
            if not admissible(*cand):
                continue
            s = evaluate(*cand)
            if s < best_sad:
                best, best_sad, improved = cand, s, True
        if not improved:
            break
    # Final refinement with the small pattern around the best position.
    prefetch(
        [
            (best[0] + dy, best[1] + dx)
            for dy, dx in refine_pattern
            if admissible(best[0] + dy, best[1] + dx)
        ]
    )
    for dy, dx in refine_pattern:
        cand = (best[0] + dy, best[1] + dx)
        if not admissible(*cand):
            continue
        s = evaluate(*cand)
        if s < best_sad:
            best, best_sad = cand, s
    btop, bleft = _clip_offset(reference, best[0], best[1], bh, bw)
    return MotionResult(
        motion_vector=(best[0] - block_top, best[1] - block_left),
        prediction=reference[btop : btop + bh, bleft : bleft + bw].copy(),
        sad=best_sad,
        candidates_evaluated=len(visited),
    )


def diamond_search(
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    search_range: int,
) -> MotionResult:
    """Iterative small-diamond search (the cheapest strategy)."""
    return _pattern_search(
        block, reference, block_top, block_left, search_range, _SMALL_DIAMOND, _SMALL_DIAMOND
    )


def hexagon_search(
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    search_range: int,
) -> MotionResult:
    """Iterative hexagon search followed by a small-diamond refinement."""
    return _pattern_search(
        block, reference, block_top, block_left, search_range, _LARGE_HEXAGON, _SMALL_DIAMOND
    )


_ALGORITHMS = {
    "exhaustive": full_search,
    "hexagon": hexagon_search,
    "diamond": diamond_search,
}


def search(
    algorithm: str,
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    search_range: int,
) -> MotionResult:
    """Dispatch to the named motion-search algorithm."""
    try:
        fn = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown motion algorithm {algorithm!r}; expected one of {sorted(_ALGORITHMS)}"
        ) from None
    return fn(block, reference, block_top, block_left, search_range)
