"""The block-based motion-compensated encoder.

:class:`BlockEncoder` encodes a sequence of greyscale frames with the classic
hybrid-video-coding loop: motion-compensated prediction from previously
*reconstructed* frames, residual transform coding, and reconstruction of the
decoder-side frame that becomes the next reference.  Every stage charges its
cost to a per-frame work counter (in units of block-pixel operations), which
is both a faithful relative measure of encoding effort across the preset
ladder and the cost model the simulated-machine experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoder.motion import full_search_multi, search
from repro.encoder.partition import analyse_partitions
from repro.encoder.quality import psnr
from repro.encoder.settings import EncoderSettings, MotionAlgorithm
from repro.encoder.subpel import refine
from repro.encoder.transform import transform_and_reconstruct

__all__ = ["FrameResult", "BlockEncoder"]


@dataclass(frozen=True, slots=True)
class FrameResult:
    """Outcome of encoding one frame."""

    #: Index of the frame in the sequence.
    frame_index: int
    #: Whether the frame was intra-coded (no motion compensation).
    intra: bool
    #: Estimated compressed size in bits.
    bits: float
    #: PSNR of the reconstruction against the source frame, in dB.
    psnr: float
    #: Total work charged to the frame, in block-pixel operations.
    work: float
    #: Settings used for the frame.
    settings: EncoderSettings
    #: Fraction of blocks that selected a sub-partition split.
    split_fraction: float = 0.0


@dataclass(slots=True)
class _BlockOutcome:
    prediction: np.ndarray
    work: float
    split: bool = False


class BlockEncoder:
    """Hybrid block encoder over greyscale frames.

    Parameters
    ----------
    width, height:
        Frame dimensions; must be multiples of ``block_size``.
    block_size:
        Macroblock size in pixels (default 8, a scaled-down macroblock that
        keeps laptop-scale runs fast while preserving the knob behaviour).
    settings:
        Initial :class:`EncoderSettings`; may be changed between frames via
        :attr:`settings` (that is exactly what the adaptive encoder does).
    intra_period:
        An intra (reference-resetting) frame is forced every ``intra_period``
        frames; the first frame is always intra.
    """

    #: Relative cost of one sub-pixel candidate versus one integer SAD
    #: (bilinear interpolation plus the SAD itself).
    SUBPEL_CANDIDATE_COST = 2.0
    #: Relative cost of transform coding one block, in block-pixel units.
    TRANSFORM_COST = 2.0

    def __init__(
        self,
        width: int = 64,
        height: int = 64,
        *,
        block_size: int = 8,
        settings: EncoderSettings | None = None,
        intra_period: int = 250,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if width % block_size or height % block_size:
            raise ValueError(
                f"frame dimensions ({height}x{width}) must be multiples of block_size={block_size}"
            )
        if intra_period < 1:
            raise ValueError(f"intra_period must be >= 1, got {intra_period}")
        self.width = int(width)
        self.height = int(height)
        self.block_size = int(block_size)
        self.settings = settings if settings is not None else EncoderSettings()
        self.intra_period = int(intra_period)
        self._references: list[np.ndarray] = []
        self._frames_encoded = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def frames_encoded(self) -> int:
        return self._frames_encoded

    @property
    def reference_frames(self) -> list[np.ndarray]:
        """Reconstructed frames currently available as references."""
        return list(self._references)

    def reset(self) -> None:
        """Drop all references and restart the sequence."""
        self._references.clear()
        self._frames_encoded = 0

    def encode_frame(self, frame: np.ndarray) -> FrameResult:
        """Encode one frame with the current settings and return its result."""
        frame = np.asarray(frame, dtype=np.float64)
        if frame.shape != (self.height, self.width):
            raise ValueError(
                f"frame shape {frame.shape} does not match encoder ({self.height}, {self.width})"
            )
        index = self._frames_encoded
        intra = not self._references or (index % self.intra_period == 0)
        if intra:
            result = self._encode_intra(frame, index)
        else:
            result = self._encode_inter(frame, index)
        self._frames_encoded += 1
        return result

    def encode_sequence(self, frames: list[np.ndarray]) -> list[FrameResult]:
        """Encode a list of frames in order."""
        return [self.encode_frame(f) for f in frames]

    # ------------------------------------------------------------------ #
    # Intra frames
    # ------------------------------------------------------------------ #
    def _encode_intra(self, frame: np.ndarray, index: int) -> FrameResult:
        bs = self.block_size
        reconstruction = np.empty_like(frame)
        total_bits = 0.0
        work = 0.0
        flat_prediction = np.full((bs, bs), 128.0)
        for top in range(0, self.height, bs):
            for left in range(0, self.width, bs):
                block = frame[top : top + bs, left : left + bs]
                coded = transform_and_reconstruct(block, flat_prediction, self.settings.qp)
                reconstruction[top : top + bs, left : left + bs] = coded.reconstruction
                total_bits += coded.bits
                work += self.TRANSFORM_COST * bs * bs
        self._push_reference(reconstruction)
        return FrameResult(
            frame_index=index,
            intra=True,
            bits=total_bits,
            psnr=psnr(frame, reconstruction),
            work=work,
            settings=self.settings,
        )

    # ------------------------------------------------------------------ #
    # Inter frames
    # ------------------------------------------------------------------ #
    def _encode_inter(self, frame: np.ndarray, index: int) -> FrameResult:
        bs = self.block_size
        settings = self.settings
        references = self._references[: settings.reference_frames]
        reconstruction = np.empty_like(frame)
        total_bits = 0.0
        work = 0.0
        splits = 0
        blocks = 0
        for top in range(0, self.height, bs):
            for left in range(0, self.width, bs):
                block = frame[top : top + bs, left : left + bs]
                outcome = self._predict_block(block, references, top, left, settings)
                coded = transform_and_reconstruct(block, outcome.prediction, settings.qp)
                reconstruction[top : top + bs, left : left + bs] = coded.reconstruction
                total_bits += coded.bits
                work += outcome.work + self.TRANSFORM_COST * bs * bs
                splits += int(outcome.split)
                blocks += 1
        self._push_reference(reconstruction)
        return FrameResult(
            frame_index=index,
            intra=False,
            bits=total_bits,
            psnr=psnr(frame, reconstruction),
            work=work,
            settings=settings,
            split_fraction=splits / blocks if blocks else 0.0,
        )

    def _predict_block(
        self,
        block: np.ndarray,
        references: list[np.ndarray],
        top: int,
        left: int,
        settings: EncoderSettings,
    ) -> _BlockOutcome:
        """Best motion-compensated prediction of one block across references."""
        bs = self.block_size
        work = 0.0
        if settings.motion_algorithm is MotionAlgorithm.EXHAUSTIVE:
            # One vectorised pass over every reference frame.
            best_integer, ref_idx = full_search_multi(
                block, references, top, left, settings.search_range
            )
            work += best_integer.candidates_evaluated * bs * bs
            best_sad = best_integer.sad
            best_prediction = best_integer.prediction
            best_reference = references[ref_idx]
        else:
            best_prediction = None
            best_sad = np.inf
            best_reference = None
            best_integer = None
            for reference in references:
                integer = search(
                    settings.motion_algorithm.value,
                    block,
                    reference,
                    top,
                    left,
                    settings.search_range,
                )
                work += integer.candidates_evaluated * bs * bs
                if integer.sad < best_sad:
                    best_sad = integer.sad
                    best_prediction = integer.prediction
                    best_reference = reference
                    best_integer = integer
        assert best_integer is not None and best_reference is not None
        if settings.subpel_levels > 0:
            refined = refine(
                block,
                best_reference,
                top,
                left,
                best_integer.motion_vector,
                best_integer.sad,
                settings.subpel_levels,
            )
            work += refined.candidates_evaluated * bs * bs * self.SUBPEL_CANDIDATE_COST
            if refined.sad < best_sad:
                best_sad = refined.sad
                best_prediction = refined.prediction
        split = False
        if settings.subpartitions:
            partition = analyse_partitions(
                block, best_reference, top, left, best_integer, settings.search_range
            )
            work += partition.candidates_evaluated * (bs // 2) * (bs // 2)
            if partition.sad < best_sad:
                best_sad = partition.sad
                best_prediction = partition.prediction
                split = partition.split
        assert best_prediction is not None
        return _BlockOutcome(prediction=best_prediction, work=work, split=split)

    def _push_reference(self, reconstruction: np.ndarray) -> None:
        """Insert the newest reconstruction at the front of the reference list."""
        self._references.insert(0, reconstruction)
        del self._references[5:]  # never keep more than the maximum refs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockEncoder({self.height}x{self.width}, block={self.block_size}, "
            f"settings={self.settings.describe()!r}, frames={self._frames_encoded})"
        )
