"""Sub-pixel motion refinement.

After integer-pel motion estimation, x264 can refine the motion vector to
half- and quarter-pixel precision, interpolating the reference at fractional
offsets.  The paper's adaptive encoder backs off from "x264's most demanding
sub-pixel motion estimation" to "a less demanding sub-pixel motion estimation
algorithm" as it trades quality for speed; here the knob is the number of
refinement levels (0 = integer only, 1 = half-pel, 2 = quarter-pel).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SubpelResult", "interpolate_block", "refine"]


@dataclass(frozen=True, slots=True)
class SubpelResult:
    """Outcome of sub-pixel refinement."""

    #: Fractional motion vector (vertical, horizontal) in pixels.
    motion_vector: tuple[float, float]
    #: Interpolated prediction block at the refined position.
    prediction: np.ndarray
    #: SAD at the refined position.
    sad: float
    #: Candidate positions evaluated during refinement.
    candidates_evaluated: int


def interpolate_block(
    reference: np.ndarray, top: float, left: float, block_h: int, block_w: int
) -> np.ndarray:
    """Bilinearly sample a ``block_h x block_w`` block at a fractional origin.

    This is the innermost routine of sub-pixel refinement (called for every
    fractional candidate of every block), so it sticks to plain slicing and a
    minimal number of array operations; ``reference`` is expected to be a
    float array (the encoder's reconstructions always are).
    """
    max_top = reference.shape[0] - block_h
    max_left = reference.shape[1] - block_w
    top = min(max(float(top), 0.0), float(max_top))
    left = min(max(float(left), 0.0), float(max_left))
    t0, l0 = int(top), int(left)
    ft, fl = top - t0, left - l0
    t1 = min(t0 + 1, max_top)
    l1 = min(l0 + 1, max_left)
    a = reference[t0 : t0 + block_h, l0 : l0 + block_w]
    if ft == 0.0 and fl == 0.0:
        return np.array(a, dtype=np.float64)
    b = reference[t0 : t0 + block_h, l1 : l1 + block_w]
    c = reference[t1 : t1 + block_h, l0 : l0 + block_w]
    d = reference[t1 : t1 + block_h, l1 : l1 + block_w]
    return (
        (1 - ft) * (1 - fl) * a
        + (1 - ft) * fl * b
        + ft * (1 - fl) * c
        + ft * fl * d
    )


def refine(
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    integer_mv: tuple[int, int],
    integer_sad: float,
    levels: int,
) -> SubpelResult:
    """Refine an integer motion vector to sub-pixel precision.

    ``levels`` selects the precision: 0 returns the integer result unchanged,
    1 adds a half-pel pass, 2 adds a quarter-pel pass around the best half-pel
    position.  Each pass evaluates the eight fractional neighbours of the
    current best position.
    """
    if levels < 0:
        raise ValueError(f"levels must be >= 0, got {levels}")
    bh, bw = block.shape
    block64 = block.astype(np.float64)
    best_mv = (float(integer_mv[0]), float(integer_mv[1]))
    best_sad = float(integer_sad)
    best_pred = interpolate_block(
        reference, block_top + best_mv[0], block_left + best_mv[1], bh, bw
    )
    evaluated = 0
    step = 0.5
    for _ in range(min(levels, 2)):
        improved_mv = best_mv
        improved_sad = best_sad
        improved_pred = best_pred
        for dy in (-step, 0.0, step):
            for dx in (-step, 0.0, step):
                if dy == 0.0 and dx == 0.0:
                    continue
                mv = (best_mv[0] + dy, best_mv[1] + dx)
                pred = interpolate_block(
                    reference, block_top + mv[0], block_left + mv[1], bh, bw
                )
                s = float(np.abs(pred - block64).sum())
                evaluated += 1
                if s < improved_sad:
                    improved_mv, improved_sad, improved_pred = mv, s, pred
        best_mv, best_sad, best_pred = improved_mv, improved_sad, improved_pred
        step /= 2.0
    return SubpelResult(
        motion_vector=best_mv,
        prediction=best_pred,
        sad=best_sad,
        candidates_evaluated=evaluated,
    )
