"""An H.264-like block video encoder with a quality/speed knob space.

The paper's internal-adaptation and fault-tolerance experiments (Sections
5.2 and 5.4) use the x264 H.264 encoder, whose run-time knobs trade encoding
effort for quality: motion-estimation algorithm, sub-pixel refinement depth,
macroblock sub-partitioning and the number of reference frames.  This package
implements a block-based motion-compensated encoder over synthetic video with
the same knob space and a real PSNR measurement, so the adaptive experiments
trade *measured* work for *measured* quality rather than following a scripted
curve.

Pipeline per frame (see :class:`repro.encoder.encoder.BlockEncoder`):

1. block motion estimation against up to N reconstructed reference frames
   (exhaustive, hexagon or diamond search — :mod:`repro.encoder.motion`);
2. optional sub-pixel refinement (:mod:`repro.encoder.subpel`);
3. optional macroblock sub-partitioning (:mod:`repro.encoder.partition`);
4. residual transform, quantisation and reconstruction
   (:mod:`repro.encoder.transform`);
5. PSNR of the reconstruction against the source
   (:mod:`repro.encoder.quality`).

The encoder reports the number of elementary operations each frame consumed,
which doubles as the simulated-machine cost model for the x264 workload.
"""

from repro.encoder.adaptive import AdaptiveEncoder, AdaptiveFrameRecord
from repro.encoder.encoder import BlockEncoder, FrameResult
from repro.encoder.frames import SceneCut, SyntheticVideoSource
from repro.encoder.quality import mse, psnr
from repro.encoder.settings import (
    PRESET_LADDER,
    EncoderSettings,
    MotionAlgorithm,
    preset,
)

__all__ = [
    "BlockEncoder",
    "FrameResult",
    "AdaptiveEncoder",
    "AdaptiveFrameRecord",
    "SyntheticVideoSource",
    "SceneCut",
    "EncoderSettings",
    "MotionAlgorithm",
    "PRESET_LADDER",
    "preset",
    "psnr",
    "mse",
]
