"""Macroblock sub-partition analysis.

x264 can split a 16x16 macroblock into smaller partitions, each with its own
motion vector, when that lowers the prediction error ("the analysis of all
macroblock sub-partitionings" is part of the paper's demanding configuration,
and the adaptive encoder "stops attempting to use any sub-macroblock
partitionings" when pressed for time).  Here the knob is binary: when
enabled, each block is also predicted as four half-size sub-blocks with
independent (cheap) motion searches, and the better of the two descriptions
is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoder.motion import MotionResult, diamond_search

__all__ = ["PartitionResult", "analyse_partitions"]


@dataclass(frozen=True, slots=True)
class PartitionResult:
    """Outcome of sub-partition analysis for one block."""

    #: Final prediction for the whole block (possibly assembled from sub-blocks).
    prediction: np.ndarray
    #: SAD of the final prediction.
    sad: float
    #: True when the split description was selected.
    split: bool
    #: Candidate blocks evaluated by the sub-searches.
    candidates_evaluated: int


def analyse_partitions(
    block: np.ndarray,
    reference: np.ndarray,
    block_top: int,
    block_left: int,
    whole_block: MotionResult,
    search_range: int,
) -> PartitionResult:
    """Try splitting ``block`` into four sub-blocks with independent motion.

    The sub-searches use the cheap diamond pattern seeded at the whole-block
    position; the split is adopted only when the combined sub-block SAD beats
    the whole-block SAD by a margin that justifies the extra motion-vector
    signalling cost (a fixed 5% penalty stands in for the real bit cost).
    """
    bh, bw = block.shape
    if bh < 4 or bw < 4 or bh % 2 or bw % 2:
        return PartitionResult(
            prediction=whole_block.prediction,
            sad=whole_block.sad,
            split=False,
            candidates_evaluated=0,
        )
    half_h, half_w = bh // 2, bw // 2
    assembled = np.empty_like(block, dtype=np.float64)
    total_sad = 0.0
    evaluated = 0
    for dy in (0, half_h):
        for dx in (0, half_w):
            sub = block[dy : dy + half_h, dx : dx + half_w]
            result = diamond_search(
                sub, reference, block_top + dy, block_left + dx, search_range
            )
            assembled[dy : dy + half_h, dx : dx + half_w] = result.prediction
            total_sad += result.sad
            evaluated += result.candidates_evaluated
    signalling_penalty = 1.05
    if total_sad * signalling_penalty < whole_block.sad:
        return PartitionResult(
            prediction=assembled, sad=total_sad, split=True, candidates_evaluated=evaluated
        )
    return PartitionResult(
        prediction=whole_block.prediction,
        sad=whole_block.sad,
        split=False,
        candidates_evaluated=evaluated,
    )
