"""Encoder settings and the quality/speed preset ladder.

The paper launches x264 "with a computationally demanding set of parameters
for Main profile H.264 encoding ... exhaustive search techniques for motion
estimation, the analysis of all macroblock sub-partitionings, x264's most
demanding sub-pixel motion estimation, and the use of up to five reference
frames", and the adaptive encoder walks down to cheaper settings (diamond
search, no sub-partitions, lighter sub-pixel estimation) until the target
frame rate is met.

:data:`PRESET_LADDER` captures that knob space as an ordered list of
:class:`EncoderSettings`, from the most demanding (index 0, best quality) to
the fastest (last index, lowest quality).  The adaptive encoder moves along
this ladder one step at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["MotionAlgorithm", "EncoderSettings", "PRESET_LADDER", "preset"]


class MotionAlgorithm(str, enum.Enum):
    """Motion-estimation search strategy (descending cost)."""

    EXHAUSTIVE = "exhaustive"
    HEXAGON = "hexagon"
    DIAMOND = "diamond"


@dataclass(frozen=True, slots=True)
class EncoderSettings:
    """One point in the encoder's quality/speed space.

    Attributes
    ----------
    motion_algorithm:
        Integer-pel motion search strategy.
    search_range:
        Motion search range in pixels (each direction).
    subpel_levels:
        Sub-pixel refinement depth (0 = integer only, 1 = half-pel,
        2 = quarter-pel).
    subpartitions:
        Whether macroblock sub-partition analysis is enabled.
    reference_frames:
        Number of previously reconstructed frames searched (1–5).
    qp:
        Quantisation parameter (0–51); held constant by the adaptation
        experiments so quality changes come from prediction quality only.
    """

    motion_algorithm: MotionAlgorithm = MotionAlgorithm.HEXAGON
    search_range: int = 8
    subpel_levels: int = 1
    subpartitions: bool = False
    reference_frames: int = 1
    qp: int = 26

    def __post_init__(self) -> None:
        if self.search_range < 1:
            raise ValueError(f"search_range must be >= 1, got {self.search_range}")
        if not 0 <= self.subpel_levels <= 2:
            raise ValueError(f"subpel_levels must be in [0, 2], got {self.subpel_levels}")
        if not 1 <= self.reference_frames <= 5:
            raise ValueError(
                f"reference_frames must be in [1, 5], got {self.reference_frames}"
            )
        if not 0 <= self.qp <= 51:
            raise ValueError(f"qp must be in [0, 51], got {self.qp}")

    def with_qp(self, qp: int) -> "EncoderSettings":
        """Return a copy with a different quantisation parameter."""
        return replace(self, qp=qp)

    def describe(self) -> str:
        """Short human-readable description used in experiment output."""
        return (
            f"{self.motion_algorithm.value}/r{self.search_range}"
            f" subpel={self.subpel_levels} part={'on' if self.subpartitions else 'off'}"
            f" refs={self.reference_frames} qp={self.qp}"
        )


#: Quality levels from most demanding (best quality) to fastest (lowest
#: quality).  Level 0 corresponds to the paper's demanding Main-profile
#: configuration (exhaustive search, all sub-partitions, deepest sub-pixel
#: refinement, five reference frames).  The upper half of the ladder reduces
#: reference frames and search range in small steps — these are the
#: fine-grained knobs that let the adaptive encoder settle *just* above its
#: target rather than overshooting — and the bottom of the ladder switches to
#: the hexagon and finally the computationally light diamond search the
#: paper's encoder ends up with under extreme pressure.
PRESET_LADDER: tuple[EncoderSettings, ...] = (
    EncoderSettings(  # 0: the paper's demanding Main-profile-like configuration
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=8,
        subpel_levels=2,
        subpartitions=True,
        reference_frames=5,
    ),
    EncoderSettings(  # 1
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=8,
        subpel_levels=2,
        subpartitions=True,
        reference_frames=4,
    ),
    EncoderSettings(  # 2
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=8,
        subpel_levels=2,
        subpartitions=True,
        reference_frames=3,
    ),
    EncoderSettings(  # 3
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=7,
        subpel_levels=2,
        subpartitions=True,
        reference_frames=3,
    ),
    EncoderSettings(  # 4
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=7,
        subpel_levels=2,
        subpartitions=True,
        reference_frames=2,
    ),
    EncoderSettings(  # 5
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=6,
        subpel_levels=2,
        subpartitions=False,
        reference_frames=2,
    ),
    EncoderSettings(  # 6
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=5,
        subpel_levels=1,
        subpartitions=False,
        reference_frames=2,
    ),
    EncoderSettings(  # 7
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=6,
        subpel_levels=1,
        subpartitions=False,
        reference_frames=1,
    ),
    EncoderSettings(  # 8
        motion_algorithm=MotionAlgorithm.EXHAUSTIVE,
        search_range=4,
        subpel_levels=1,
        subpartitions=False,
        reference_frames=1,
    ),
    EncoderSettings(  # 9
        motion_algorithm=MotionAlgorithm.HEXAGON,
        search_range=8,
        subpel_levels=1,
        subpartitions=False,
        reference_frames=1,
    ),
    EncoderSettings(  # 10
        motion_algorithm=MotionAlgorithm.DIAMOND,
        search_range=8,
        subpel_levels=1,
        subpartitions=False,
        reference_frames=1,
    ),
    EncoderSettings(  # 11: the lightest configuration
        motion_algorithm=MotionAlgorithm.DIAMOND,
        search_range=4,
        subpel_levels=0,
        subpartitions=False,
        reference_frames=1,
    ),
)


def preset(level: int) -> EncoderSettings:
    """Return ladder level ``level`` (clamped to the valid range)."""
    clamped = max(0, min(int(level), len(PRESET_LADDER) - 1))
    return PRESET_LADDER[clamped]
