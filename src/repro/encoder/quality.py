"""Objective quality metrics.

The paper's Figure 4 measures the quality cost of adaptation as the
difference in PSNR (peak signal-to-noise ratio) between the unmodified and
the adaptive encoder, noting that "in the worst case, the adaptive version of
x264 can lose as much as one dB of PSNR, but the average loss is closer to
0.5 dB".
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["mse", "psnr", "psnr_series_difference"]


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two frames."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(f"frame shapes differ: {original.shape} vs {reconstructed.shape}")
    return float(np.mean((original - reconstructed) ** 2))


def psnr(original: np.ndarray, reconstructed: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical frames)."""
    error = mse(original, reconstructed)
    if error == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / error)


def psnr_series_difference(adaptive: np.ndarray, baseline: np.ndarray) -> np.ndarray:
    """Per-frame PSNR difference (adaptive minus baseline), the Figure-4 series."""
    adaptive = np.asarray(adaptive, dtype=np.float64)
    baseline = np.asarray(baseline, dtype=np.float64)
    if adaptive.shape != baseline.shape:
        raise ValueError(
            f"series lengths differ: {adaptive.shape} vs {baseline.shape}"
        )
    return adaptive - baseline
