"""Time sources for the heartbeats framework.

The paper's reference implementation stamps each heartbeat with the machine's
wall-clock time.  For reproducible experiments this package abstracts the time
source behind the :class:`Clock` protocol:

* :class:`WallClock` — real time (``time.perf_counter`` based, monotonic).
* :class:`SimulatedClock` — a clock advanced explicitly by the simulation
  engine; experiments driven by :mod:`repro.sim` use it so every run is
  deterministic and independent of host speed.
* :class:`ManualClock` — a minimal clock whose time is set directly; mostly
  useful in unit tests.
"""

from repro.clock.clock import Clock, ManualClock, SimulatedClock, WallClock

__all__ = ["Clock", "WallClock", "SimulatedClock", "ManualClock"]
