"""Clock implementations.

All clocks report time in seconds as a ``float``.  Clocks must be monotonic:
``now()`` never returns a smaller value than a previous call.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "WallClock", "SimulatedClock", "ManualClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal time-source protocol used throughout the framework."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...  # pragma: no cover - protocol stub


class WallClock:
    """Monotonic wall-clock time source.

    Uses :func:`time.perf_counter` so the origin is arbitrary but the
    resolution is the best the platform offers.  An optional ``origin`` shifts
    reported times so the first reading is close to zero, which keeps traces
    readable.
    """

    __slots__ = ("_origin",)

    def __init__(self, *, rebase: bool = True) -> None:
        self._origin = time.perf_counter() if rebase else 0.0

    def now(self) -> float:
        return time.perf_counter() - self._origin

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of real time (convenience for examples)."""
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallClock(now={self.now():.6f})"


class SimulatedClock:
    """A clock advanced explicitly by a simulation engine.

    The clock never moves on its own; :meth:`advance` moves it forward by a
    non-negative delta and :meth:`advance_to` moves it to an absolute time
    that must not be in the past.  This is the time source used by
    :mod:`repro.sim` so that every experiment is deterministic.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be >= 0, got {start!r}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance by a negative delta ({delta!r})")
        self._now += float(delta)
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot move simulated time backwards: now={self._now!r}, requested={when!r}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self._now:.6f})"


class ManualClock:
    """A clock whose time is assigned directly.

    Unlike :class:`SimulatedClock` it allows setting any non-decreasing value
    via the :attr:`time` property, which reads naturally in unit tests::

        clock = ManualClock()
        clock.time = 1.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    @property
    def time(self) -> float:
        return self._now

    @time.setter
    def time(self, value: float) -> None:
        if value < self._now:
            raise ValueError(
                f"manual clock cannot go backwards: now={self._now!r}, requested={value!r}"
            )
        self._now = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManualClock(now={self._now:.6f})"
