"""Core-failure injection (paper Section 5.4, Figure 8)."""

from repro.faults.injector import FailureEvent, FaultInjector, RepairEvent

__all__ = ["FailureEvent", "RepairEvent", "FaultInjector"]
