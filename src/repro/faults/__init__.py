"""Fault injection: in-process core failures and shared event timelines.

:class:`FaultInjector` reproduces the paper's core-failure experiment
(Section 5.4, Figure 8) keyed on heartbeat indices; :class:`Timeline` /
:class:`TimelineEvent` are the wall-clock analogue shared with the
between-process chaos subsystem (:mod:`repro.scenario`).
"""

from repro.faults.injector import FailureEvent, FaultInjector, RepairEvent
from repro.faults.timeline import Timeline, TimelineEvent

__all__ = ["FailureEvent", "RepairEvent", "FaultInjector", "Timeline", "TimelineEvent"]
