"""Fault injection.

The paper's fault-tolerance experiment simulates core failures "by
restricting the scheduler to running x264 on fewer cores" at frames 160, 320
and 480.  :class:`FaultInjector` reproduces that mechanism for both execution
styles used in this reproduction:

* as an :class:`~repro.sim.engine.ExecutionEngine` hook it fails cores of a
  :class:`~repro.sim.machine.SimulatedMachine` at the scheduled beats;
* for the encoder-driven Figure-8 experiment it exposes
  :meth:`capacity_fraction`, the fraction of nominal machine capacity still
  healthy after the failures scheduled up to a given beat, which the
  experiment applies to the adaptive encoder's ``work_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess

__all__ = ["FailureEvent", "RepairEvent", "FaultInjector"]


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """Fail ``cores`` cores when the instrumented application reaches ``beat``."""

    beat: int
    cores: int = 1

    def __post_init__(self) -> None:
        if self.beat < 0:
            raise ValueError(f"beat must be >= 0, got {self.beat}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")


@dataclass(frozen=True, slots=True)
class RepairEvent:
    """Repair ``cores`` failed cores when the application reaches ``beat``."""

    beat: int
    cores: int = 1

    def __post_init__(self) -> None:
        if self.beat < 0:
            raise ValueError(f"beat must be >= 0, got {self.beat}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")


class FaultInjector:
    """Applies a failure/repair schedule keyed on heartbeat indices.

    Parameters
    ----------
    failures:
        Failure events, e.g. the paper's ``[FailureEvent(160), FailureEvent(320),
        FailureEvent(480)]``.
    repairs:
        Optional repair events (extension beyond the paper's experiment).
    total_cores:
        Nominal core count used by :meth:`capacity_fraction`.
    """

    def __init__(
        self,
        failures: Sequence[FailureEvent],
        *,
        repairs: Sequence[RepairEvent] = (),
        total_cores: int = 8,
    ) -> None:
        if total_cores < 1:
            raise ValueError(f"total_cores must be >= 1, got {total_cores}")
        self.failures = sorted(failures, key=lambda e: e.beat)
        self.repairs = sorted(repairs, key=lambda e: e.beat)
        self.total_cores = int(total_cores)
        self._applied_failures: set[int] = set()
        self._applied_repairs: set[int] = set()

    # ------------------------------------------------------------------ #
    # Capacity model (used by the encoder-driven Figure-8 run)
    # ------------------------------------------------------------------ #
    def healthy_cores(self, beat_index: int) -> int:
        """Cores still healthy once all events at or before ``beat_index`` fired."""
        lost = sum(e.cores for e in self.failures if e.beat <= beat_index)
        regained = sum(e.cores for e in self.repairs if e.beat <= beat_index)
        return max(0, min(self.total_cores, self.total_cores - lost + regained))

    def capacity_fraction(self, beat_index: int) -> float:
        """Fraction of nominal capacity available at ``beat_index``."""
        return self.healthy_cores(beat_index) / self.total_cores

    def next_event_beat(self, beat_index: int) -> int | None:
        """Beat of the next scheduled event strictly after ``beat_index``."""
        upcoming = [e.beat for e in (*self.failures, *self.repairs) if e.beat > beat_index]
        return min(upcoming) if upcoming else None

    # ------------------------------------------------------------------ #
    # Machine integration (scheduler-style experiments)
    # ------------------------------------------------------------------ #
    def apply(self, machine: SimulatedMachine, beat_index: int) -> bool:
        """Apply any not-yet-applied events due at ``beat_index``.

        Returns True when the machine was changed.
        """
        changed = False
        for i, event in enumerate(self.failures):
            if event.beat <= beat_index and i not in self._applied_failures:
                machine.fail_cores(event.cores)
                self._applied_failures.add(i)
                changed = True
        for i, event in enumerate(self.repairs):
            if event.beat <= beat_index and i not in self._applied_repairs:
                repaired = 0
                for core in machine.cores:
                    if repaired >= event.cores:
                        break
                    if not core.alive:
                        core.repair()
                        repaired += 1
                self._applied_repairs.add(i)
                changed = True
        return changed

    def attach(self, engine: ExecutionEngine, machine: SimulatedMachine) -> None:
        """Register the injector as a before-beat hook of ``engine``."""

        def hook(beat_index: int, _process: SimulatedProcess, _engine: ExecutionEngine) -> None:
            self.apply(machine, beat_index)

        engine.add_before_beat(hook)

    def reset(self) -> None:
        """Forget which events have been applied (for reuse across runs)."""
        self._applied_failures.clear()
        self._applied_repairs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(failures={[e.beat for e in self.failures]}, "
            f"repairs={[e.beat for e in self.repairs]})"
        )
