"""Shared event-timeline types for scripted failure schedules.

The in-process :class:`~repro.faults.injector.FaultInjector` keys its events
on heartbeat indices; everything *between* processes — chaos-proxy
impairments, scenario kill/restart/churn schedules — keys on elapsed wall
time instead.  :class:`TimelineEvent` / :class:`Timeline` are the common
vocabulary both the :mod:`repro.scenario` runner and the chaos proxy consume:
an ordered schedule of named actions, popped as their deadlines pass.

>>> t = Timeline([TimelineEvent(at=2.0, action="heal"),
...               TimelineEvent(at=1.0, action="partition")])
>>> [e.action for e in t.pop_due(1.5)]
['partition']
>>> t.next_at()
2.0
>>> [e.action for e in t.pop_due(5.0)]
['heal']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["TimelineEvent", "Timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled action: *do ``action`` once ``at`` seconds have elapsed*.

    ``params`` carries the action's arguments (e.g. ``{"latency": 0.05}`` for
    a proxy impairment, ``{"process": "edge"}`` for a scenario kill); the
    consumer defines which actions and parameters it understands.
    """

    at: float
    action: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at!r}")
        if not self.action:
            raise ValueError("event action must not be empty")

    def param(self, key: str, default: Any = None) -> Any:
        """One parameter of the event, with a default."""
        return self.params.get(key, default)


class Timeline:
    """An ordered, consumable schedule of :class:`TimelineEvent`.

    Events are sorted by deadline (stable for ties, so two events scheduled
    at the same instant apply in the order given); :meth:`pop_due` removes
    and returns every event whose deadline has passed.  :meth:`reset`
    restores the full schedule for reuse across runs.
    """

    __slots__ = ("_events", "_cursor")

    def __init__(self, events: Iterable[TimelineEvent] = ()) -> None:
        self._events: tuple[TimelineEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at)
        )
        self._cursor = 0

    def pop_due(self, elapsed: float) -> list[TimelineEvent]:
        """Remove and return every event with ``at <= elapsed``, in order."""
        due: list[TimelineEvent] = []
        while self._cursor < len(self._events) and self._events[self._cursor].at <= elapsed:
            due.append(self._events[self._cursor])
            self._cursor += 1
        return due

    def next_at(self) -> float | None:
        """Deadline of the next pending event, or ``None`` when exhausted."""
        if self._cursor < len(self._events):
            return self._events[self._cursor].at
        return None

    def pending(self) -> tuple[TimelineEvent, ...]:
        """Events not yet popped, in deadline order."""
        return self._events[self._cursor:]

    def events(self) -> tuple[TimelineEvent, ...]:
        """The full schedule (popped or not), in deadline order."""
        return self._events

    def reset(self) -> None:
        """Restore every popped event (for reuse across runs)."""
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._events) - self._cursor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline(pending={len(self)}, total={len(self._events)})"
