"""Beat-granularity execution engine.

The engine is the piece that replaces "run the benchmark on the testbed":
for every heartbeat the instrumented application would produce, it

1. lets registered *before-beat* hooks run (schedulers polling heart rate,
   fault injectors applying their schedule, adaptive applications changing
   their own knobs);
2. asks the process how long the next unit of work takes given its current
   core allocation, core health and scaling model;
3. advances the shared :class:`~repro.clock.SimulatedClock` by that duration;
4. registers the heartbeat (stamped with the simulated time);
5. lets *after-beat* hooks observe the new state and records a
   :class:`BeatEvent` in the run trace.

Because hooks see exactly the same information an external observer of a real
Heartbeat-enabled program would see (the heartbeat stream and its targets),
the scheduler and fault-tolerance experiments compose without the engine
knowing anything about them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.clock import SimulatedClock
from repro.sim.process import SimulatedProcess

__all__ = ["BeatEvent", "RunResult", "ExecutionEngine"]

#: Hook signature: ``hook(beat_index, process, engine)``.
BeatHook = Callable[[int, SimulatedProcess, "ExecutionEngine"], None]


@dataclass(frozen=True, slots=True)
class BeatEvent:
    """State captured immediately after one heartbeat was produced."""

    beat: int
    timestamp: float
    duration: float
    allocated_cores: int
    effective_cores: int
    heart_rate: float
    tag: int


@dataclass(slots=True)
class RunResult:
    """Outcome of an :meth:`ExecutionEngine.run` call."""

    workload: str
    events: list[BeatEvent] = field(default_factory=list)

    @property
    def beats(self) -> int:
        return len(self.events)

    @property
    def duration(self) -> float:
        """Total simulated time spanned by the run."""
        if not self.events:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp + self.events[0].duration

    def timestamps(self) -> np.ndarray:
        return np.array([e.timestamp for e in self.events], dtype=np.float64)

    def heart_rates(self) -> np.ndarray:
        """Windowed heart rate observed at each beat (as the app saw it)."""
        return np.array([e.heart_rate for e in self.events], dtype=np.float64)

    def cores(self) -> np.ndarray:
        """Core allocation in effect at each beat."""
        return np.array([e.allocated_cores for e in self.events], dtype=np.int64)

    def effective_cores(self) -> np.ndarray:
        return np.array([e.effective_cores for e in self.events], dtype=np.int64)

    def average_heart_rate(self) -> float:
        """Whole-run average rate (Table 2 metric) from the recorded events."""
        if len(self.events) < 2:
            return 0.0
        span = self.events[-1].timestamp - self.events[0].timestamp
        if span <= 0:
            return 0.0
        return (len(self.events) - 1) / span


class ExecutionEngine:
    """Runs simulated processes to a beat count on a shared simulated clock.

    Parameters
    ----------
    clock:
        The simulated clock shared with every heartbeat stream involved in
        the experiment.
    per_beat_overhead:
        Fixed simulated seconds added to every beat, modelling the (small)
        cost of the heartbeat API itself and of the surrounding loop.  The
        overhead experiment (Section 5.1) varies this explicitly; the figure
        experiments leave it at zero.
    """

    def __init__(self, clock: SimulatedClock, *, per_beat_overhead: float = 0.0) -> None:
        if per_beat_overhead < 0:
            raise ValueError(f"per_beat_overhead must be >= 0, got {per_beat_overhead}")
        self.clock = clock
        self.per_beat_overhead = float(per_beat_overhead)
        self._before_hooks: list[BeatHook] = []
        self._after_hooks: list[BeatHook] = []

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def add_before_beat(self, hook: BeatHook) -> None:
        """Register a hook invoked before each beat's work is simulated."""
        self._before_hooks.append(hook)

    def add_after_beat(self, hook: BeatHook) -> None:
        """Register a hook invoked right after each heartbeat is registered."""
        self._after_hooks.append(hook)

    def clear_hooks(self) -> None:
        self._before_hooks.clear()
        self._after_hooks.clear()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        process: SimulatedProcess,
        beats: int,
        *,
        rate_window: int = 0,
        stop_when_stalled: bool = True,
        seed: int | None = None,
    ) -> RunResult:
        """Run ``process`` until it has produced ``beats`` more heartbeats.

        ``rate_window`` selects the window used for the per-beat
        :attr:`BeatEvent.heart_rate` sample (0 = the heartbeat's default
        window).  When the process loses all usable cores and
        ``stop_when_stalled`` is True the run ends early — the application
        can no longer make progress, which is precisely the condition a
        liveness monitor would flag.  Passing ``seed`` reseeds the process's
        workload (:meth:`~repro.workloads.base.Workload.reseed`) before the
        first beat, making the run bit-reproducible regardless of prior use.
        """
        if beats < 0:
            raise ValueError(f"beats must be >= 0, got {beats}")
        if seed is not None:
            process.workload.reseed(seed)
        result = RunResult(workload=process.workload.name)
        for i in range(beats):
            beat_index = process.beats_completed
            for hook in self._before_hooks:
                hook(beat_index, process, self)
            duration = process.beat_duration(beat_index)
            if not np.isfinite(duration):
                if stop_when_stalled:
                    break
                raise RuntimeError(
                    f"process {process.pid} has no usable cores and cannot make progress"
                )
            self.clock.advance(duration + self.per_beat_overhead)
            tag = process.workload.tag(beat_index)
            process.heartbeat.heartbeat(tag=tag, thread_id=process.pid)
            process.beats_completed += 1
            event = BeatEvent(
                beat=beat_index,
                timestamp=self.clock.now(),
                duration=duration + self.per_beat_overhead,
                allocated_cores=process.allocated_cores,
                effective_cores=process.effective_cores,
                heart_rate=process.heartbeat.current_rate(rate_window),
                tag=tag,
            )
            result.events.append(event)
            for hook in self._after_hooks:
                hook(beat_index, process, self)
        return result

    def run_concurrent(
        self,
        processes: Sequence[SimulatedProcess],
        beats: int,
        *,
        rate_window: int = 0,
        seed: int | None = None,
    ) -> dict[int, RunResult]:
        """Interleave several processes beat-by-beat on the shared clock.

        Each call simulates ``beats`` heartbeats *per process*, always
        advancing the process whose next beat would complete earliest — a
        simple event-driven interleaving sufficient for the cloud/cluster
        scenarios where several Heartbeat-enabled applications run at once.
        Note that processes contend only through explicit allocations; the
        machine does not model time-slicing within a core.  Passing ``seed``
        reseeds every process's workload with ``seed + position`` (argument
        order, so the derived seeds are stable) before the first beat.
        """
        if seed is not None:
            for k, process in enumerate(processes):
                process.workload.reseed(seed + k)
        remaining = {p.pid: beats for p in processes}
        completion_time = {p.pid: self.clock.now() for p in processes}
        results = {p.pid: RunResult(workload=p.workload.name) for p in processes}
        by_pid = {p.pid: p for p in processes}
        while any(v > 0 for v in remaining.values()):
            candidates = []
            for pid, left in remaining.items():
                if left <= 0:
                    continue
                proc = by_pid[pid]
                duration = proc.beat_duration(proc.beats_completed)
                if not np.isfinite(duration):
                    remaining[pid] = 0  # stalled; drop from the schedule
                    continue
                candidates.append((completion_time[pid] + duration, pid, duration))
            if not candidates:
                break
            candidates.sort()
            finish, pid, duration = candidates[0]
            proc = by_pid[pid]
            for hook in self._before_hooks:
                hook(proc.beats_completed, proc, self)
            if finish > self.clock.now():
                self.clock.advance_to(finish)
            tag = proc.workload.tag(proc.beats_completed)
            proc.heartbeat.heartbeat(tag=tag, thread_id=proc.pid)
            proc.beats_completed += 1
            remaining[pid] -= 1
            completion_time[pid] = finish
            results[pid].events.append(
                BeatEvent(
                    beat=proc.beats_completed - 1,
                    timestamp=self.clock.now(),
                    duration=duration,
                    allocated_cores=proc.allocated_cores,
                    effective_cores=proc.effective_cores,
                    heart_rate=proc.heartbeat.current_rate(rate_window),
                    tag=tag,
                )
            )
            for hook in self._after_hooks:
                hook(proc.beats_completed - 1, proc, self)
        return results
