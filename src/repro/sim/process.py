"""Binding between a workload, a heartbeat stream and a machine share."""

from __future__ import annotations

import itertools
from typing import Protocol, runtime_checkable

from repro.core.heartbeat import Heartbeat
from repro.sim.machine import SimulatedMachine
from repro.sim.scaling import ScalingModel

__all__ = ["WorkSource", "SimulatedProcess"]

_pid_counter = itertools.count(1)


@runtime_checkable
class WorkSource(Protocol):
    """What the execution engine needs from a workload.

    Every workload in :mod:`repro.workloads` (and the encoder-backed x264
    model) satisfies this protocol.  ``work_per_beat`` returns the amount of
    single-reference-core compute, in seconds, required to produce beat ``i``;
    ``scaling`` describes how that work parallelises across cores.
    """

    name: str
    scaling: ScalingModel

    def work_per_beat(self, beat_index: int) -> float:
        """Single-core seconds of work for beat ``beat_index``."""
        ...  # pragma: no cover - protocol stub

    def tag(self, beat_index: int) -> int:
        """Tag attached to the heartbeat for beat ``beat_index``."""
        ...  # pragma: no cover - protocol stub


class SimulatedProcess:
    """One application instance running on the simulated machine.

    Parameters
    ----------
    workload:
        The work source driving the process.
    heartbeat:
        The heartbeat stream the process registers progress on.  It must be
        stamped by the same :class:`~repro.clock.SimulatedClock` the engine
        advances.
    machine:
        The machine the process runs on.
    cores:
        Initial core allocation (the Figure 5–7 experiments start at one).
    pid:
        Explicit process ID; auto-assigned when omitted.
    """

    def __init__(
        self,
        workload: WorkSource,
        heartbeat: Heartbeat,
        machine: SimulatedMachine,
        *,
        cores: int = 1,
        pid: int | None = None,
    ) -> None:
        self.workload = workload
        self.heartbeat = heartbeat
        self.machine = machine
        self.pid = int(pid) if pid is not None else next(_pid_counter)
        self.beats_completed = 0
        machine.allocate(self.pid, cores)

    # ------------------------------------------------------------------ #
    # Resource view
    # ------------------------------------------------------------------ #
    @property
    def allocated_cores(self) -> int:
        """Cores nominally assigned by the scheduler."""
        return self.machine.allocation(self.pid)

    @property
    def effective_cores(self) -> int:
        """Cores actually available after failures."""
        return self.machine.effective_cores(self.pid)

    def set_cores(self, cores: int) -> int:
        """Change the core allocation (used by the external scheduler)."""
        return self.machine.allocate(self.pid, cores)

    # ------------------------------------------------------------------ #
    # Execution of a single beat's worth of work
    # ------------------------------------------------------------------ #
    def beat_duration(self, beat_index: int) -> float:
        """Simulated wall time needed to produce beat ``beat_index`` now.

        The duration reflects the process's current effective cores, their
        speeds, and the workload's parallel-scaling model.  A process with no
        usable capacity (all cores failed) cannot make progress; that is
        reported as ``float('inf')``.
        """
        cores = self.effective_cores
        if cores <= 0:
            return float("inf")
        speed = self.machine.effective_speed(self.pid)
        per_core_speed = speed / cores
        speedup = self.workload.scaling.speedup(cores) * per_core_speed
        if speedup <= 0:
            return float("inf")
        return self.workload.work_per_beat(beat_index) / speedup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedProcess(pid={self.pid}, workload={self.workload.name!r}, "
            f"cores={self.allocated_cores}, beats={self.beats_completed})"
        )
