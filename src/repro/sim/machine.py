"""The simulated multicore machine.

:class:`SimulatedMachine` plays the role of the paper's eight-core x86 server
plus the OS mechanisms its experiments rely on:

* **core allocation** — the external scheduler assigns a number of cores to a
  process (:meth:`allocate`), exactly like the paper's OS restricting a
  benchmark's affinity mask;
* **core failures** — cores can be failed and repaired (Figure 8's simulated
  failures), shrinking the capacity actually backing every allocation;
* **DVFS** — per-core or machine-wide frequency scaling (the Section 2.1
  self-tuning-architecture scenario and an ablation experiment).

The machine is purely a bookkeeping object; the passage of time is owned by
the :class:`repro.sim.engine.ExecutionEngine`.
"""

from __future__ import annotations

from repro.sim.core import SimulatedCore

__all__ = ["SimulatedMachine"]


class SimulatedMachine:
    """A multicore machine with explicit per-process core allocations.

    Parameters
    ----------
    num_cores:
        Number of cores; the paper's testbed has eight.
    base_speed:
        Relative single-thread speed of every core (heterogeneous machines
        can be modelled by adjusting :attr:`cores` after construction).
    """

    def __init__(self, num_cores: int = 8, *, base_speed: float = 1.0) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.cores: list[SimulatedCore] = [
            SimulatedCore(core_id=i, base_speed=base_speed) for i in range(num_cores)
        ]
        self._allocations: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    @property
    def num_cores(self) -> int:
        """Total number of cores, including failed ones."""
        return len(self.cores)

    @property
    def alive_cores(self) -> int:
        """Number of cores currently online."""
        return sum(1 for core in self.cores if core.alive)

    def core(self, core_id: int) -> SimulatedCore:
        return self.cores[core_id]

    def mean_alive_speed(self) -> float:
        """Average effective speed of the alive cores (0.0 when none are alive)."""
        speeds = [core.speed for core in self.cores if core.alive]
        if not speeds:
            return 0.0
        return sum(speeds) / len(speeds)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate(self, pid: int, cores: int) -> int:
        """Assign ``cores`` cores to process ``pid`` and return the granted count.

        Requests are clamped to ``[1, num_cores]``; the *effective* cores a
        process gets may be smaller when cores have failed (see
        :meth:`effective_cores`).  Allocations of different processes may
        overlap — the paper's scheduler experiments run one application at a
        time, and the cloud substrate models contention explicitly.
        """
        if cores < 1:
            cores = 1
        granted = min(int(cores), self.num_cores)
        self._allocations[int(pid)] = granted
        return granted

    def release(self, pid: int) -> None:
        """Forget the allocation of process ``pid`` (no-op when absent)."""
        self._allocations.pop(int(pid), None)

    def allocation(self, pid: int) -> int:
        """Cores nominally assigned to ``pid`` (defaults to 1)."""
        return self._allocations.get(int(pid), 1)

    def effective_cores(self, pid: int) -> int:
        """Cores actually backing ``pid``'s allocation after failures."""
        return min(self.allocation(pid), self.alive_cores)

    def effective_speed(self, pid: int) -> float:
        """Aggregate single-core-equivalents available to ``pid``.

        The fastest alive cores are assigned first, which is what an OS doing
        its best for the application would do.
        """
        n = self.effective_cores(pid)
        if n == 0:
            return 0.0
        speeds = sorted((core.speed for core in self.cores if core.alive), reverse=True)
        return float(sum(speeds[:n]))

    # ------------------------------------------------------------------ #
    # Failures and DVFS
    # ------------------------------------------------------------------ #
    def fail_core(self, core_id: int) -> None:
        """Fail a specific core."""
        self.cores[core_id].fail()

    def fail_cores(self, count: int) -> int:
        """Fail ``count`` alive cores (highest IDs first); returns how many failed."""
        failed = 0
        for core in reversed(self.cores):
            if failed >= count:
                break
            if core.alive:
                core.fail()
                failed += 1
        return failed

    def repair_core(self, core_id: int) -> None:
        """Repair a specific core."""
        self.cores[core_id].repair()

    def repair_all(self) -> None:
        for core in self.cores:
            core.repair()

    def set_frequency(self, frequency: float, core_id: int | None = None) -> None:
        """Apply a DVFS multiplier to one core or to the whole machine."""
        if core_id is not None:
            self.cores[core_id].set_frequency(frequency)
            return
        for core in self.cores:
            core.set_frequency(frequency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedMachine(cores={self.num_cores}, alive={self.alive_cores}, "
            f"allocations={dict(self._allocations)})"
        )
