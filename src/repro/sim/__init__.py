"""Simulated multicore substrate.

The paper's experiments run on a dual-socket, eight-core Xeon X5460 server
whose OS can restrict an application to a subset of cores.  This package is
the substitution documented in DESIGN.md: a deterministic simulated machine
with the pieces those experiments actually exercise —

* cores that can change frequency (DVFS) and fail (:mod:`repro.sim.core`);
* a machine that allocates cores to processes (:mod:`repro.sim.machine`);
* parallel-speedup models describing how each workload scales with cores
  (:mod:`repro.sim.scaling`);
* an execution engine that advances a :class:`repro.clock.SimulatedClock` by
  the simulated duration of each unit of work and stamps a heartbeat per
  completed unit (:mod:`repro.sim.engine`).

Because time is simulated, every figure reproduction is exact, repeatable and
finishes in milliseconds regardless of host speed.
"""

from repro.sim.core import SimulatedCore
from repro.sim.engine import BeatEvent, ExecutionEngine, RunResult
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import (
    AmdahlScaling,
    LinearScaling,
    SaturatingScaling,
    ScalingModel,
    TabulatedScaling,
)

__all__ = [
    "SimulatedCore",
    "SimulatedMachine",
    "SimulatedProcess",
    "ExecutionEngine",
    "RunResult",
    "BeatEvent",
    "ScalingModel",
    "AmdahlScaling",
    "LinearScaling",
    "SaturatingScaling",
    "TabulatedScaling",
]
