"""A single simulated processor core."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulatedCore"]


@dataclass(slots=True)
class SimulatedCore:
    """One core of the simulated machine.

    Attributes
    ----------
    core_id:
        Stable identifier within the machine.
    base_speed:
        Relative single-thread throughput of the core at nominal frequency.
        ``1.0`` is the reference core used to express workload costs.
    frequency:
        Current DVFS multiplier in ``(0, 1]`` of nominal frequency (or above
        1.0 for turbo states).  Effective speed is ``base_speed * frequency``.
    alive:
        False once the core has failed (Figure 8's simulated core failures)
        or has been taken offline.
    """

    core_id: int
    base_speed: float = 1.0
    frequency: float = 1.0
    alive: bool = True

    def __post_init__(self) -> None:
        if self.base_speed <= 0:
            raise ValueError(f"base_speed must be positive, got {self.base_speed}")
        if self.frequency <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency}")

    @property
    def speed(self) -> float:
        """Effective throughput contributed by this core (0.0 when failed)."""
        return self.base_speed * self.frequency if self.alive else 0.0

    def set_frequency(self, frequency: float) -> None:
        """Apply a DVFS setting (fraction of nominal frequency)."""
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        self.frequency = float(frequency)

    def fail(self) -> None:
        """Mark the core as failed; it contributes no throughput afterwards."""
        self.alive = False

    def repair(self) -> None:
        """Bring a failed core back online at its previous frequency."""
        self.alive = True
