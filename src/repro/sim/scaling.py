"""Parallel-speedup models.

A scaling model maps the number of cores assigned to an application to the
speedup it achieves over one core.  The PARSEC benchmarks scale very
differently — ``blackscholes`` is embarrassingly parallel while ``dedup`` and
``x264`` saturate early — and the external-scheduler experiments (Figures
5–7) depend on that difference: the scheduler adds cores until the marginal
beat-rate gain pushes the application into its target window.

Three analytic families cover the suite, plus a tabulated model for workloads
calibrated point-by-point:

* :class:`AmdahlScaling` — classic serial-fraction limit.
* :class:`LinearScaling` — ideal or fixed-efficiency linear scaling.
* :class:`SaturatingScaling` — near-linear up to a knee, flat beyond it
  (memory-bandwidth/pipeline-bound codes).
* :class:`TabulatedScaling` — explicit speedup table with linear
  interpolation between entries.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = [
    "ScalingModel",
    "AmdahlScaling",
    "LinearScaling",
    "SaturatingScaling",
    "TabulatedScaling",
]


class ScalingModel(abc.ABC):
    """Maps a core count to a speedup factor relative to one core."""

    @abc.abstractmethod
    def speedup(self, cores: float) -> float:
        """Speedup with ``cores`` cores.  ``speedup(1) == 1`` and ``speedup(0) == 0``."""

    def efficiency(self, cores: float) -> float:
        """Parallel efficiency ``speedup(cores) / cores`` (0 for 0 cores)."""
        if cores <= 0:
            return 0.0
        return self.speedup(cores) / cores

    def marginal_gain(self, cores: int) -> float:
        """Speedup gained by adding one more core to ``cores`` cores."""
        return self.speedup(cores + 1) - self.speedup(cores)

    def _check(self, cores: float) -> float:
        if cores < 0:
            raise ValueError(f"core count must be >= 0, got {cores}")
        return float(cores)


class AmdahlScaling(ScalingModel):
    """Amdahl's-law speedup with a fixed serial fraction.

    ``speedup(n) = 1 / (serial + (1 - serial) / n)``
    """

    def __init__(self, serial_fraction: float) -> None:
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1], got {serial_fraction}"
            )
        self.serial_fraction = float(serial_fraction)

    def speedup(self, cores: float) -> float:
        n = self._check(cores)
        if n == 0:
            return 0.0
        return 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / n)

    def __repr__(self) -> str:
        return f"AmdahlScaling(serial_fraction={self.serial_fraction})"


class LinearScaling(ScalingModel):
    """Linear scaling with a fixed per-core efficiency.

    ``speedup(n) = 1 + efficiency * (n - 1)`` so that one core always gives
    speedup 1 regardless of efficiency.
    """

    def __init__(self, efficiency: float = 1.0) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        self.per_core_efficiency = float(efficiency)

    def speedup(self, cores: float) -> float:
        n = self._check(cores)
        if n == 0:
            return 0.0
        return 1.0 + self.per_core_efficiency * (n - 1.0)

    def __repr__(self) -> str:
        return f"LinearScaling(efficiency={self.per_core_efficiency})"


class SaturatingScaling(ScalingModel):
    """Near-linear scaling up to a knee, then flat.

    ``speedup(n) = min(1 + efficiency*(n-1), max_speedup)``.  Models codes
    that are bandwidth- or pipeline-bound beyond a certain width (the paper's
    x264 saturates around four to six cores under the Figure 7 input).
    """

    def __init__(self, max_speedup: float, efficiency: float = 1.0) -> None:
        if max_speedup < 1.0:
            raise ValueError(f"max_speedup must be >= 1, got {max_speedup}")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        self.max_speedup = float(max_speedup)
        self.per_core_efficiency = float(efficiency)

    def speedup(self, cores: float) -> float:
        n = self._check(cores)
        if n == 0:
            return 0.0
        return min(1.0 + self.per_core_efficiency * (n - 1.0), self.max_speedup)

    def __repr__(self) -> str:
        return (
            f"SaturatingScaling(max_speedup={self.max_speedup}, "
            f"efficiency={self.per_core_efficiency})"
        )


class TabulatedScaling(ScalingModel):
    """Speedup given by an explicit per-core-count table.

    ``table[i]`` is the speedup with ``i + 1`` cores; fractional core counts
    interpolate linearly and counts beyond the table extrapolate flat.
    """

    def __init__(self, table: Sequence[float]) -> None:
        values = np.asarray(table, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("table must be a non-empty 1-D sequence")
        if abs(values[0] - 1.0) > 1e-9:
            raise ValueError(f"table[0] must be 1.0 (speedup on one core), got {values[0]}")
        if np.any(np.diff(values) < -1e-12):
            raise ValueError("speedup table must be non-decreasing")
        self.table = values

    def speedup(self, cores: float) -> float:
        n = self._check(cores)
        if n == 0:
            return 0.0
        xs = np.arange(1, self.table.size + 1, dtype=np.float64)
        return float(np.interp(n, xs, self.table))

    def __repr__(self) -> str:
        return f"TabulatedScaling(table={self.table.tolist()})"
