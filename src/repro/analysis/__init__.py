"""Trace and table utilities shared by the experiment harness."""

from repro.analysis.stats import summarize, SeriesSummary
from repro.analysis.tables import format_table, render_rows
from repro.analysis.traces import Trace, TraceSet

__all__ = [
    "Trace",
    "TraceSet",
    "format_table",
    "render_rows",
    "summarize",
    "SeriesSummary",
]
