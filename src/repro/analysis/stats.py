"""Summary statistics helpers for experiment series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SeriesSummary", "summarize"]


@dataclass(frozen=True, slots=True)
class SeriesSummary:
    """Five-number-style summary of a series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float

    def as_row(self) -> tuple[int, float, float, float, float, float]:
        return (self.count, self.mean, self.std, self.minimum, self.maximum, self.p50)


def summarize(values: Sequence[float] | np.ndarray, *, skip: int = 0) -> SeriesSummary:
    """Summarise ``values`` after dropping ``skip`` warm-up samples."""
    arr = np.asarray(values, dtype=np.float64)[skip:]
    if arr.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        return SeriesSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return SeriesSummary(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        p50=float(np.median(arr)),
    )
