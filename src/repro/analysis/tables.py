"""Fixed-width table rendering for experiment output.

The regeneration harness prints the same rows/series the paper reports;
these helpers keep that output aligned and dependency-free (no tabulate).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "render_rows"]


def _cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_cell(v, precision) for v in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_rows(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Format a table with an optional title line above it."""
    table = format_table(headers, rows, precision=precision)
    if title:
        return f"{title}\n{table}"
    return table
