"""Beat-indexed traces.

Every figure in the paper plots one or more series against "Time
(Heartbeat)" — the beat index.  :class:`Trace` is that series plus helpers
for the manipulations the figures need (moving averages, windowed slices,
band membership); :class:`TraceSet` groups the traces of one experiment under
their legend labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Trace", "TraceSet"]


@dataclass(frozen=True)
class Trace:
    """A named series sampled once per heartbeat."""

    name: str
    values: np.ndarray

    def __init__(self, name: str, values: Sequence[float] | np.ndarray) -> None:
        object.__setattr__(self, "name", str(name))
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"trace values must be one-dimensional, got shape {arr.shape}")
        object.__setattr__(self, "values", arr)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __getitem__(self, index: int | slice) -> float | np.ndarray:
        result = self.values[index]
        return float(result) if np.isscalar(result) else result

    @property
    def beats(self) -> np.ndarray:
        """The beat indices (x axis of every figure)."""
        return np.arange(len(self), dtype=np.int64)

    def moving_average(self, window: int) -> "Trace":
        """Simple trailing moving average with a growing warm-up window."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        out = np.empty_like(self.values)
        cumsum = np.concatenate([[0.0], np.cumsum(self.values)])
        for i in range(len(self)):
            start = max(0, i - window + 1)
            out[i] = (cumsum[i + 1] - cumsum[start]) / (i + 1 - start)
        return Trace(f"{self.name} (ma{window})", out)

    def section(self, start: int, stop: int | None = None) -> np.ndarray:
        """Values for beats ``start`` (inclusive) to ``stop`` (exclusive)."""
        return self.values[start:stop]

    def mean(self, start: int = 0, stop: int | None = None) -> float:
        section = self.section(start, stop)
        return float(np.mean(section)) if section.size else 0.0

    def min(self) -> float:
        return float(np.min(self.values)) if len(self) else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if len(self) else 0.0

    def fraction_within(self, low: float, high: float, *, skip: int = 0) -> float:
        """Fraction of samples (after ``skip`` warm-up beats) inside ``[low, high]``."""
        section = self.values[skip:]
        if section.size == 0:
            return 0.0
        inside = np.count_nonzero((section >= low) & (section <= high))
        return inside / section.size

    def first_beat_at_or_above(self, threshold: float) -> int | None:
        """Index of the first sample ``>= threshold`` (None when never reached)."""
        hits = np.nonzero(self.values >= threshold)[0]
        return int(hits[0]) if hits.size else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(name={self.name!r}, beats={len(self)})"


@dataclass
class TraceSet:
    """The named traces of one experiment (one figure)."""

    title: str
    traces: dict[str, Trace] = field(default_factory=dict)
    metadata: dict[str, float | int | str] = field(default_factory=dict)

    def add(self, name: str, values: Sequence[float] | np.ndarray) -> Trace:
        trace = Trace(name, values)
        self.traces[name] = trace
        return trace

    def __getitem__(self, name: str) -> Trace:
        return self.traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self.traces

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces.values())

    def names(self) -> list[str]:
        return list(self.traces)

    def as_mapping(self) -> Mapping[str, np.ndarray]:
        return {name: trace.values for name, trace in self.traces.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceSet(title={self.title!r}, traces={self.names()})"
