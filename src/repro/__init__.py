"""repro — reproduction of *Application Heartbeats for Software Performance and Health*.

The package reproduces Hoffmann et al.'s Application Heartbeats framework
(MIT CSAIL, PPoPP 2010) and every substrate its evaluation depends on:

* :mod:`repro.core` — the Heartbeats API (Table 1), history buffers, rates,
  storage backends and the external-observer monitor;
* :mod:`repro.clock` — wall-clock and simulated time sources;
* :mod:`repro.sim` — a deterministic simulated multicore machine;
* :mod:`repro.workloads` — PARSEC-like instrumented workloads (Table 2);
* :mod:`repro.encoder` — an adaptive H.264-like video encoder (Figures 3, 4, 8);
* :mod:`repro.control` — controllers shared by internal and external adaptation;
* :mod:`repro.adapt` — the unified adaptation runtime: the Actuator
  protocol, ControlLoop, the fleet-scale AdaptationEngine and declarative
  AdaptSpec builders (the ``repro adapt`` CLI);
* :mod:`repro.scheduler` — the heartbeat-driven external core scheduler (Figures 5–7);
* :mod:`repro.faults` — core-failure injection (Figure 8);
* :mod:`repro.cloud` — heartbeat-driven cluster management (Section 2.6);
* :mod:`repro.net` — networked telemetry: wire protocol, TCP exporter
  backend and collector server for cross-machine fleet observation;
* :mod:`repro.analysis` / :mod:`repro.experiments` — traces, tables and the
  per-figure regeneration harness.

Quickstart
----------
>>> from repro import Heartbeat
>>> hb = Heartbeat(window=20)
>>> hb.set_target_rate(25.0, 35.0)
>>> for frame in range(100):
...     ...  # encode one frame
...     hb.heartbeat(tag=frame)
>>> hb.current_rate()  # beats per second over the last 20 beats
"""

from repro._version import __version__
from repro.endpoints import (
    Endpoint,
    EndpointError,
    FileEndpoint,
    MemEndpoint,
    ShmEndpoint,
    TcpEndpoint,
    open_backend,
    open_collector,
    open_sink,
    open_source,
)
from repro.session import TelemetrySession
from repro.adapt import (
    AdaptationEngine,
    AdaptSpec,
    Actuator,
    ControlLoop,
    DecisionTrace,
)
from repro.clock import Clock, ManualClock, SimulatedClock, WallClock
from repro.core import (
    DEFAULT_WINDOW,
    BoundSource,
    DeltaSnapshot,
    FileBackend,
    FleetSample,
    FleetSummary,
    HealthStatus,
    Heartbeat,
    HeartbeatAggregator,
    HeartbeatError,
    HeartbeatMonitor,
    HeartbeatRecord,
    MemoryBackend,
    MonitorReading,
    SharedMemoryBackend,
    SnapshotCursor,
    SourceCapabilities,
    StreamSink,
    StreamSource,
    capabilities_of,
    moving_rate_series,
    windowed_rate,
)
from repro.net import HeartbeatCollector, NetworkBackend

__all__ = [
    "__version__",
    "TelemetrySession",
    "Endpoint",
    "MemEndpoint",
    "FileEndpoint",
    "ShmEndpoint",
    "TcpEndpoint",
    "EndpointError",
    "open_backend",
    "open_source",
    "open_sink",
    "open_collector",
    "StreamSource",
    "StreamSink",
    "SourceCapabilities",
    "BoundSource",
    "capabilities_of",
    "Heartbeat",
    "HeartbeatMonitor",
    "MonitorReading",
    "HealthStatus",
    "HeartbeatAggregator",
    "FleetSample",
    "FleetSummary",
    "HeartbeatRecord",
    "HeartbeatError",
    "MemoryBackend",
    "FileBackend",
    "SharedMemoryBackend",
    "DeltaSnapshot",
    "SnapshotCursor",
    "NetworkBackend",
    "HeartbeatCollector",
    "Clock",
    "WallClock",
    "SimulatedClock",
    "ManualClock",
    "windowed_rate",
    "moving_rate_series",
    "DEFAULT_WINDOW",
    "Actuator",
    "ControlLoop",
    "DecisionTrace",
    "AdaptationEngine",
    "AdaptSpec",
]
