"""Unified metrics registry: counters, gauges and fixed-bucket histograms.

Every subsystem in the telemetry pipeline keeps operational counters — the
exporter's sent/dropped records, the collector's frames and protocol errors,
the relay's forwarding volume, the aggregator's poll cost, the adaptation
engine's decisions.  Before this module each kept a private dict behind an
ad-hoc ``stats()`` method; :class:`MetricsRegistry` gives them one shared
shape, so a dashboard, the ``/metrics`` scrape endpoint and the historic
``stats()`` views all read the *same* instruments.

Design points:

* **lock-cheap** — the registry lock is taken only when a metric is created
  or the registry is enumerated; the hot path (``Counter.inc`` on a beat or
  frame) takes one leaf per-metric lock around a single add, and live
  gauges cost nothing until read (they wrap a callable);
* **get-or-create identity** — asking for the same ``(name, labels)`` twice
  returns the same instrument, so wiring code never has to thread metric
  objects around; asking with a different *kind* raises;
* **fixed-bucket histograms** — latency distributions are recorded into a
  fixed set of upper bounds (Prometheus-style ``le`` buckets), so
  :meth:`Histogram.quantile` answers p50/p99 in O(buckets) with bounded
  memory no matter how many observations arrive;
* **one text exposition** — :meth:`MetricsRegistry.render_text` emits the
  plain-text format scrapers expect (``# TYPE``/``# HELP`` plus
  ``name{label="value"} number`` samples).

>>> registry = MetricsRegistry()
>>> frames = registry.counter("frames_total", help="ingested frames")
>>> frames.inc(3)
>>> registry.counter("frames_total") is frames
True
>>> int(registry.as_dict()["frames_total"])
3
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_registries",
]

#: Latency histogram upper bounds, in seconds (a decade-spanning ladder —
#: sub-millisecond loopback hops through multi-second WAN stalls).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Normalised label set: sorted tuple of (label name, label value) pairs.
LabelSet = tuple[tuple[str, str], ...]
_MetricKey = tuple[str, LabelSet]


def _normalize_labels(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    items = []
    for key, value in labels.items():
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(value)))
    return tuple(sorted(items))


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared identity of one instrument: name, labels, help text."""

    kind = "untyped"
    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: LabelSet, help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> _MetricKey:
        return (self.name, self.labels)

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        """``(sample name, labels, value)`` rows for the text exposition."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}{_format_labels(self.labels)})"


class Counter(_Metric):
    """A monotonically increasing count.

    >>> c = Counter("beats_total", (), "")
    >>> c.inc(); c.inc(4); c.value
    5.0
    """

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        return [(self.name, self.labels, self.value)]


class Gauge(_Metric):
    """A value that goes up and down — set directly, or live via a callable.

    A live gauge (``fn=...``) is read at scrape time, so wiring one costs
    nothing on the hot path; the callable must be cheap and must not take
    locks that scrapers could deadlock against.

    >>> g = Gauge("depth", (), "")
    >>> g.set(7.0); g.value
    7.0
    """

    kind = "gauge"
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        help: str = "",
        fn: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, labels, help)
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make this a live gauge: ``fn()`` is called on every read."""
        with self._lock:
            self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return math.nan

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        return [(self.name, self.labels, self.value)]


class Histogram(_Metric):
    """Fixed-bucket distribution with O(buckets) quantile estimates.

    Observations land in the first bucket whose upper bound contains them
    (plus an implicit ``+Inf`` overflow bucket); :meth:`quantile`
    interpolates linearly inside the winning bucket and clamps to the
    observed min/max, so estimates stay sane even for spiky distributions.

    >>> h = Histogram("lat", (), "", buckets=(0.01, 0.1, 1.0))
    >>> for v in (0.02, 0.04, 0.06, 0.08):
    ...     h.observe(v)
    >>> h.count, round(h.quantile(50.0), 3) <= 0.1
    (4, True)
    """

    kind = "histogram"
    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return  # a torn timestamp must not poison the distribution
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``); nan if empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            target = (q / 100.0) * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    lower = self._bounds[index - 1] if index > 0 else min(self._min, self._bounds[0])
                    upper = self._bounds[index] if index < len(self._bounds) else self._max
                    within = (target - (cumulative - bucket_count)) / bucket_count
                    estimate = lower + (upper - lower) * min(max(within, 0.0), 1.0)
                    return min(max(estimate, self._min), self._max)
            return self._max  # pragma: no cover - cumulative always reaches count

    def quantiles(self, qs: Iterable[float] = (50.0, 90.0, 99.0)) -> dict[float, float]:
        """Several percentile estimates in one call."""
        return {float(q): self.quantile(q) for q in qs}

    def summary(self) -> dict[str, float]:
        """Compact roll-up: count, sum, mean, min, max, p50, p99."""
        with self._lock:
            count, total = self._count, self._sum
            observed_min, observed_max = self._min, self._max
        if count == 0:
            return {"count": 0.0, "sum": 0.0, "mean": math.nan,
                    "min": math.nan, "max": math.nan, "p50": math.nan, "p99": math.nan}
        return {
            "count": float(count),
            "sum": total,
            "mean": total / count,
            "min": observed_min,
            "max": observed_max,
            "p50": self.quantile(50.0),
            "p99": self.quantile(99.0),
        }

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
        rows: list[tuple[str, LabelSet, float]] = []
        cumulative = 0
        for bound, bucket_count in zip((*self._bounds, math.inf), counts):
            cumulative += bucket_count
            rows.append(
                (f"{self.name}_bucket", (*self.labels, ("le", _format_number(bound))), float(cumulative))
            )
        rows.append((f"{self.name}_sum", self.labels, total))
        rows.append((f"{self.name}_count", self.labels, float(count)))
        return rows


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A thread-safe, get-or-create collection of instruments.

    The registry lock guards only creation and enumeration; returned
    instruments are updated through their own leaf locks, so a registry
    shared by a collector's event loop, a relay thread and a scrape handler
    never serialises their hot paths against each other.

    >>> registry = MetricsRegistry()
    >>> registry.counter("a_total").inc()
    >>> registry.gauge("depth").set(2)
    >>> sorted(registry.as_dict())
    ['a_total', 'depth']
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[_MetricKey, Metric] = {}

    # ------------------------------------------------------------------ #
    # Get-or-create instruments
    # ------------------------------------------------------------------ #
    def counter(
        self, name: str, *, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        """The counter named ``(name, labels)``, created on first use."""
        metric = self._get_or_create(Counter, name, labels, help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        *,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        """The gauge named ``(name, labels)``; ``fn`` makes it a live gauge."""
        metric = self._get_or_create(Gauge, name, labels, help)
        assert isinstance(metric, Gauge)
        if fn is not None:
            metric.set_function(fn)
        return metric

    def histogram(
        self,
        name: str,
        *,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram named ``(name, labels)``, created on first use.

        The bucket layout is fixed by the *first* creation; later calls
        return the existing instrument regardless of ``buckets``.
        """
        key = (name, _normalize_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as a {existing.kind}"
                    )
                return existing
            self._check_name(name)
            metric = Histogram(name, key[1], help, buckets=buckets)
            self._metrics[key] = metric
            return metric

    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, str] | None,
        help: str,
    ) -> Metric:
        key = (name, _normalize_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as a {existing.kind}"
                    )
                return existing
            self._check_name(name)
            metric = cls(name, key[1], help)
            self._metrics[key] = metric
            return metric  # type: ignore[no-any-return]

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")

    # ------------------------------------------------------------------ #
    # Enumeration and exposition
    # ------------------------------------------------------------------ #
    def metrics(self) -> list[Metric]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def as_dict(self) -> dict[str, float]:
        """Flat ``{"name{labels}": value}`` snapshot.

        Counters and gauges appear under their qualified name; histograms
        contribute ``_count`` / ``_sum`` / ``_p50`` / ``_p99`` entries (the
        roll-up a one-line status summary wants, without the bucket rows).
        """
        out: dict[str, float] = {}
        for metric in self.metrics():
            qualified = f"{metric.name}{_format_labels(metric.labels)}"
            if isinstance(metric, Histogram):
                roll = metric.summary()
                out[f"{qualified}_count"] = roll["count"]
                out[f"{qualified}_sum"] = roll["sum"]
                out[f"{qualified}_p50"] = roll["p50"]
                out[f"{qualified}_p99"] = roll["p99"]
            else:
                out[qualified] = metric.value
        return out

    def render_text(self) -> str:
        """Plain-text exposition (the ``/metrics`` scrape format)."""
        return render_registries([self])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry(metrics={len(self)})"


def render_registries(registries: Iterable[MetricsRegistry]) -> str:
    """Merge several registries into one text exposition.

    Subsystems keep their own registries (a collector, its relay forwarder,
    an aggregator, an engine); a scrape endpoint serves them all as one
    page.  ``# HELP``/``# TYPE`` headers are emitted once per metric name,
    first-writer-wins.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()
    for registry in registries:
        for metric in registry.metrics():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{_format_labels(labels)} {_format_number(value)}"
                )
    return "\n".join(lines) + "\n"
