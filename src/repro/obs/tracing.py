"""Structured decision tracing: adaptation decisions as JSONL streams.

The engine's :class:`~repro.adapt.loop.DecisionTrace` records are the
reproduction's ground truth for *why* the fleet moved — every
observe-decide-act round, with the rate the controller saw and the actuator
value it landed on.  This module gives them a durable, analyzable form:

* :func:`trace_to_dict` / :func:`trace_from_dict` — a lossless JSON shape
  (round-trips field for field, including the nested
  :class:`~repro.control.base.ControlDecision`);
* :class:`DecisionTraceLog` — an engine subscriber that appends one JSON
  line per decision to a file as ticks happen, keeps a bounded in-memory
  ring of recent decisions for live consumers (the SSE dashboard), and
  flushes on every tick so a crashed run loses at most the current tick;
* :func:`iter_traces` — read a JSONL file back into trace objects.

>>> from repro.adapt.loop import DecisionTrace
>>> from repro.control.base import ControlDecision
>>> trace = DecisionTrace(loop="svc", beat=3, observed_rate=8.5,
...                       decision=ControlDecision(delta=1), before=2.0, after=3.0)
>>> trace_from_dict(trace_to_dict(trace)) == trace
True
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import IO, TYPE_CHECKING, Any, Callable, Iterator

from repro.adapt.loop import DecisionTrace
from repro.control.base import ControlDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adapt.engine import AdaptationEngine, EngineTick

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "trace_to_json",
    "trace_from_json",
    "iter_traces",
    "DecisionTraceLog",
]


def trace_to_dict(trace: DecisionTrace, *, tick: int | None = None) -> dict[str, Any]:
    """One trace as a flat JSON-safe dict.

    The nested :class:`~repro.control.base.ControlDecision` is flattened
    into ``delta`` / ``value`` keys; ``tick`` optionally stamps the engine
    tick the decision belongs to (``beat`` already carries the loop's own
    step index).
    """
    out: dict[str, Any] = {
        "loop": trace.loop,
        "beat": int(trace.beat),
        "observed_rate": float(trace.observed_rate),
        "delta": trace.decision.delta,
        "value": trace.decision.value,
        "before": float(trace.before),
        "after": float(trace.after),
    }
    if tick is not None:
        out["tick"] = int(tick)
    return out


def trace_from_dict(data: dict[str, Any]) -> DecisionTrace:
    """Rebuild a :class:`~repro.adapt.loop.DecisionTrace` from its dict form."""
    delta = data.get("delta")
    value = data.get("value")
    return DecisionTrace(
        loop=str(data["loop"]),
        beat=int(data["beat"]),
        observed_rate=float(data["observed_rate"]),
        decision=ControlDecision(
            delta=None if delta is None else int(delta),
            value=None if value is None else float(value),
        ),
        before=float(data["before"]),
        after=float(data["after"]),
    )


def trace_to_json(trace: DecisionTrace, *, tick: int | None = None) -> str:
    """One trace as a single JSON line (no trailing newline)."""
    return json.dumps(trace_to_dict(trace, tick=tick), separators=(",", ":"))


def trace_from_json(line: str) -> DecisionTrace:
    """Parse one JSONL line back into a trace."""
    return trace_from_dict(json.loads(line))


def iter_traces(path: str) -> Iterator[DecisionTrace]:
    """Yield every trace in a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield trace_from_json(line)


class DecisionTraceLog:
    """Stream an engine's decisions to JSONL, with a live tail for the UI.

    Attach it to an :class:`~repro.adapt.engine.AdaptationEngine` and every
    tick's traces are appended — one JSON object per line, stamped with the
    tick index — and flushed, so the file is a valid JSONL stream at any
    moment.  ``recent()`` returns the last ``ring`` decision dicts for
    consumers that want the live tail without re-reading the file (the SSE
    dashboard's decision feed).

    Parameters
    ----------
    path:
        JSONL file to append to, or ``None`` for an in-memory-only log
        (ring buffer, no file).
    ring:
        How many recent decision dicts to retain in memory.

    >>> log = DecisionTraceLog()   # in-memory only
    >>> log.recent()
    []
    """

    def __init__(self, path: str | None = None, *, ring: int = 256) -> None:
        self._lock = threading.Lock()
        self._handle: IO[str] | None = None
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")
        self._ring: deque[dict[str, Any]] = deque(maxlen=int(ring))
        self._written = 0
        self._unsubscribes: list[Callable[[], None]] = []

    @property
    def written(self) -> int:
        """Decisions recorded so far (file lines plus ring-only entries)."""
        with self._lock:
            return self._written

    def attach(self, engine: "AdaptationEngine") -> Callable[[], None]:
        """Subscribe to ``engine``; returns the unsubscribe callable."""
        unsubscribe = engine.subscribe(self.record_tick)
        self._unsubscribes.append(unsubscribe)
        return unsubscribe

    def record_tick(self, tick: "EngineTick") -> None:
        """Record every trace of one tick (the engine-subscriber entry point)."""
        if not tick.traces:
            return
        rows = [trace_to_dict(trace, tick=tick.index) for trace in tick.traces]
        with self._lock:
            for row in rows:
                self._ring.append(row)
                if self._handle is not None:
                    self._handle.write(json.dumps(row, separators=(",", ":")) + "\n")
            self._written += len(rows)
            if self._handle is not None:
                self._handle.flush()

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The newest decision dicts, oldest first (at most ``limit``)."""
        with self._lock:
            rows = list(self._ring)
        return rows if limit is None else rows[-int(limit):]

    def close(self) -> None:
        """Unsubscribe from every engine and close the file.  Idempotent."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "DecisionTraceLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
