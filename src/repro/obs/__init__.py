"""Self-telemetry: metrics registry, per-hop tracing, and the live dashboard.

The paper's thesis is that applications should expose their own progress as
first-class telemetry; this package applies that thesis to the telemetry
system itself.  Three layers:

* :mod:`repro.obs.registry` — the shared :class:`MetricsRegistry` every
  subsystem registers its counters, gauges and latency histograms into;
* :mod:`repro.obs.tracing` — structured JSONL export of adaptation
  :class:`~repro.adapt.loop.DecisionTrace` records, plus helpers for the
  per-hop RELAY latency accounting the collectors implement;
* :mod:`repro.obs.serve` — the stdlib-only HTTP/SSE server behind
  ``repro watch --serve`` and ``TelemetrySession.watch(serve=...)``.

>>> registry = MetricsRegistry()
>>> registry.counter("demo_total").inc()
>>> int(registry.counter("demo_total").value)
1
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_registries,
)

#: Tracing (and the dashboard server) import the adaptation layer, which
#: itself registers metrics — so those names load lazily (PEP 562) to keep
#: ``repro.obs.registry`` importable from anywhere in the dependency graph.
_LAZY = {
    "DecisionTraceLog": "repro.obs.tracing",
    "iter_traces": "repro.obs.tracing",
    "trace_from_dict": "repro.obs.tracing",
    "trace_to_dict": "repro.obs.tracing",
    "TelemetryServer": "repro.obs.serve",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_registries",
    "DecisionTraceLog",
    "iter_traces",
    "trace_from_dict",
    "trace_to_dict",
    "TelemetryServer",
]
