"""Live fleet dashboard: a stdlib-only HTTP/SSE server over the telemetry.

:class:`TelemetryServer` mounts four routes on a ``ThreadingHTTPServer``:

``/``
    A single-file HTML dashboard (no external assets, works air-gapped)
    showing fleet summary cards, per-stream rate/classification, per-link
    relay delivery latency and the live adaptation decision feed.
``/events``
    Server-sent events: one ``data:`` line per sampler tick carrying the
    full JSON snapshot, so any SSE client (the dashboard, ``curl``) follows
    the fleet live without polling.
``/api/snapshot``
    The latest snapshot as one JSON document.
``/metrics``
    Plain-text exposition of every registered metric (the merged
    registries of the aggregator, collectors, engine and anything passed
    explicitly) for scrapers.

A background sampler thread polls the aggregator on a fixed interval and
broadcasts to every connected SSE client through one condition variable;
client connections are served by daemon threads, so a stuck reader never
blocks sampling or other clients.

>>> from repro.core.aggregator import HeartbeatAggregator
>>> aggregator = HeartbeatAggregator()
>>> with TelemetryServer(aggregator, interval=0.05) as server:
...     server.url.startswith("http://127.0.0.1:")
True
>>> aggregator.close()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.aggregator import FleetSample, HeartbeatAggregator
from repro.obs.registry import MetricsRegistry, render_registries
from repro.obs.tracing import DecisionTraceLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adapt.engine import AdaptationEngine

__all__ = ["TelemetryServer"]

#: How long one SSE write may block before the client is considered stuck.
_CLIENT_TIMEOUT = 10.0


class _DashboardHTTPServer(ThreadingHTTPServer):
    """The HTTP server, carrying a reference back to its telemetry owner."""

    daemon_threads = True
    allow_reuse_address = True
    telemetry: "TelemetryServer"


class TelemetryServer:
    """Serve live fleet telemetry over HTTP and SSE.

    Parameters
    ----------
    aggregator:
        The fleet observer sampled every ``interval`` seconds.  Polls are
        serialised inside the aggregator, so sharing it with a CLI loop or
        an engine drive is safe.
    collectors:
        Collectors whose registries (ingest/relay counters) and per-link
        latencies join the page.
    engine:
        An :class:`~repro.adapt.engine.AdaptationEngine` whose decisions
        feed the live decision stream (subscribed via a
        :class:`~repro.obs.tracing.DecisionTraceLog` ring).
    registries:
        Extra :class:`~repro.obs.registry.MetricsRegistry` objects to merge
        into ``/metrics`` and the snapshot.
    host, port:
        Bind address; port ``0`` (default) picks an ephemeral port — read
        :attr:`port` / :attr:`url` for the real one.
    interval:
        Seconds between fleet samples (and SSE events).
    max_streams:
        Cap on per-stream rows in one snapshot; larger fleets report the
        truncation count instead of shipping megabytes per tick.
    """

    def __init__(
        self,
        aggregator: HeartbeatAggregator,
        *,
        collectors: Sequence[Any] = (),
        engine: "AdaptationEngine | None" = None,
        registries: Sequence[MetricsRegistry] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        interval: float = 1.0,
        max_streams: int = 200,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._aggregator = aggregator
        self._collectors = list(collectors)
        self._engine = engine
        self._extra_registries = list(registries)
        self._interval = float(interval)
        self._max_streams = int(max_streams)

        self._traces = DecisionTraceLog(ring=64)
        self._detach_traces = self._traces.attach(engine) if engine is not None else None

        self._cond = threading.Condition()
        self._closing = threading.Event()
        # First snapshot built synchronously, so no route ever serves a
        # placeholder while the sampler warms up.
        try:
            snapshot: dict[str, Any] = self._build_snapshot()
        except Exception as exc:  # noqa: BLE001 - see _sample_loop
            snapshot = {"error": str(exc)}
        self._seq = 1
        snapshot["seq"] = self._seq
        self._snapshot = snapshot

        self._httpd = _DashboardHTTPServer((host, port), _Handler)
        self._httpd.telemetry = self
        self.host, self.port = self._httpd.server_address[:2]

        self._sampler = threading.Thread(
            target=self._sample_loop, name=f"hb-dashboard-{self.port}", daemon=True
        )
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"hb-dashboard-http-{self.port}",
            daemon=True,
        )
        self._sampler.start()
        self._server_thread.start()

    # ------------------------------------------------------------------ #
    # Addressing and lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """The dashboard's base URL (port 0 resolved to the bound port)."""
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop sampling, disconnect every client, release the port.  Idempotent."""
        if self._closing.is_set():
            return
        self._closing.set()
        with self._cond:
            self._cond.notify_all()  # wake SSE writers so they can exit
        self._httpd.shutdown()
        self._server_thread.join(timeout=5.0)
        self._httpd.server_close()
        self._sampler.join(timeout=5.0)
        if self._detach_traces is not None:
            self._detach_traces()
        self._traces.close()

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetryServer(url={self.url!r})"

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def registries(self) -> list[MetricsRegistry]:
        """Every registry feeding ``/metrics``, deduplicated by identity."""
        out: list[MetricsRegistry] = []
        seen: set[int] = set()
        candidates: list[MetricsRegistry] = [self._aggregator.metrics]
        for collector in self._collectors:
            registry = getattr(collector, "metrics", None)
            if isinstance(registry, MetricsRegistry):
                candidates.append(registry)
        if self._engine is not None:
            candidates.append(self._engine.metrics)
        candidates.extend(self._extra_registries)
        for registry in candidates:
            if id(registry) not in seen:
                seen.add(id(registry))
                out.append(registry)
        return out

    def render_metrics(self) -> str:
        """The merged plain-text exposition served at ``/metrics``."""
        return render_registries(self.registries())

    def snapshot(self) -> dict[str, Any]:
        """The most recent sampler snapshot (JSON-safe dict)."""
        with self._cond:
            return self._snapshot

    def wait_for_snapshot(self, seq: int, timeout: float) -> dict[str, Any] | None:
        """Block until a snapshot newer than ``seq`` exists (None on timeout)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._seq <= seq and not self._closing.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(timeout=remaining)
            if self._closing.is_set() and self._seq <= seq:
                return None
            return self._snapshot

    def _sample_loop(self) -> None:
        while not self._closing.wait(timeout=self._interval):
            try:
                snapshot = self._build_snapshot()
            except Exception as exc:  # noqa: BLE001 - a torn sample must not kill serving
                snapshot = {"error": str(exc)}
            with self._cond:
                self._seq += 1
                snapshot["seq"] = self._seq
                self._snapshot = snapshot
                self._cond.notify_all()

    def _build_snapshot(self) -> dict[str, Any]:
        sample = self._aggregator.poll()
        streams = self._stream_rows(sample)
        links: dict[str, dict[str, float]] = {}
        relay: dict[str, dict[str, int]] = {}
        for collector in self._collectors:
            latencies = getattr(collector, "link_latencies", None)
            if latencies is not None:
                for peer, stats in latencies().items():
                    links[peer] = {k: _json_num(v) for k, v in stats.items()}
            relay_stats = getattr(collector, "relay_stats", None)
            if relay_stats is not None:
                stats = relay_stats()
                if stats:
                    endpoint = getattr(collector, "endpoint", repr(collector))
                    relay[str(endpoint)] = stats
        summary = sample.summary()
        snapshot: dict[str, Any] = {
            "time": time.time(),
            "summary": {
                "streams": summary.streams,
                "measurable": summary.measurable,
                "mean": _json_num(summary.mean),
                "minimum": _json_num(summary.minimum),
                "maximum": _json_num(summary.maximum),
                "std": _json_num(summary.std),
                "percentiles": {str(q): _json_num(v) for q, v in summary.percentiles.items()},
                "lagging": summary.lagging,
                "stalled": summary.stalled,
            },
            "streams": streams,
            "streams_truncated": max(0, len(sample.names) - self._max_streams),
            "errors": dict(sample.errors),
            "links": links,
            "relay": relay,
            "metrics": {
                name: _json_num(value)
                for registry in self.registries()
                for name, value in registry.as_dict().items()
            },
            "decisions": self._traces.recent(32),
        }
        return snapshot

    def _stream_rows(self, sample: FleetSample) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for name in sample.names[: self._max_streams]:
            reading = sample.get(name)
            if reading is None:  # pragma: no cover - names never error in-sample
                continue
            rows.append(
                {
                    "name": name,
                    "rate": _json_num(reading.rate),
                    "total_beats": reading.total_beats,
                    "target_min": _json_num(reading.target_min),
                    "target_max": _json_num(reading.target_max),
                    "status": reading.status.value,
                }
            )
        return rows


def _json_num(value: float) -> float | None:
    """NaN/inf → None so every snapshot is strict-JSON serialisable."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the telemetry owner hangs off the server object."""

    server: _DashboardHTTPServer  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    @property
    def telemetry(self) -> TelemetryServer:
        return self.server.telemetry

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging would drown the watch output

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/", "/index.html"):
                self._send(200, "text/html; charset=utf-8", _DASHBOARD_HTML.encode("utf-8"))
            elif path == "/metrics":
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           self.telemetry.render_metrics().encode("utf-8"))
            elif path == "/api/snapshot":
                body = json.dumps(self.telemetry.snapshot()).encode("utf-8")
                self._send(200, "application/json", body)
            elif path == "/events":
                self._serve_events()
            else:
                self._send(404, "text/plain; charset=utf-8", b"not found\n")
        except (BrokenPipeError, ConnectionResetError, TimeoutError, OSError):
            pass  # client went away; nothing to salvage

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _serve_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.connection.settimeout(_CLIENT_TIMEOUT)
        telemetry = self.telemetry
        snapshot = telemetry.snapshot()
        seq = int(snapshot.get("seq", 0))
        if seq:
            self._write_event(snapshot)
        while not telemetry._closing.is_set():
            fresh = telemetry.wait_for_snapshot(seq, timeout=5.0)
            if fresh is None:
                self.wfile.write(b": keep-alive\n\n")  # comment frame, per SSE spec
                self.wfile.flush()
                continue
            seq = int(fresh["seq"])
            self._write_event(fresh)

    def _write_event(self, snapshot: dict[str, Any]) -> None:
        payload = json.dumps(snapshot)
        self.wfile.write(f"event: snapshot\ndata: {payload}\n\n".encode("utf-8"))
        self.wfile.flush()


_DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro · fleet telemetry</title>
<style>
  :root {
    --bg: #0d1117; --panel: #161b22; --line: #30363d; --text: #e6edf3;
    --dim: #8b949e; --green: #3fb950; --red: #f85149; --amber: #d29922;
    --blue: #58a6ff; --purple: #bc8cff;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--text);
         font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
  header { display: flex; align-items: baseline; gap: 12px; padding: 14px 20px;
           border-bottom: 1px solid var(--line); }
  header h1 { font-size: 16px; margin: 0; font-weight: 600; }
  header .sub { color: var(--dim); font-size: 12px; }
  #conn { margin-left: auto; font-size: 12px; color: var(--dim); }
  #conn.live::before { content: "●"; color: var(--green); margin-right: 6px; }
  #conn.dead::before { content: "●"; color: var(--red); margin-right: 6px; }
  main { padding: 16px 20px; display: grid; gap: 16px;
         grid-template-columns: repeat(auto-fit, minmax(420px, 1fr)); }
  section { background: var(--panel); border: 1px solid var(--line);
            border-radius: 8px; padding: 14px 16px; min-width: 0; }
  section h2 { margin: 0 0 10px; font-size: 12px; font-weight: 600;
               text-transform: uppercase; letter-spacing: .08em; color: var(--dim); }
  .cards { grid-column: 1 / -1; display: grid; gap: 12px;
           grid-template-columns: repeat(auto-fit, minmax(130px, 1fr)); }
  .card { background: var(--panel); border: 1px solid var(--line);
          border-radius: 8px; padding: 10px 14px; }
  .card .v { font-size: 22px; font-weight: 700; }
  .card .k { font-size: 11px; color: var(--dim); text-transform: uppercase;
             letter-spacing: .06em; }
  .card.warn .v { color: var(--amber); }
  .card.bad .v { color: var(--red); }
  table { width: 100%; border-collapse: collapse; font-size: 13px; }
  th, td { text-align: left; padding: 4px 8px; white-space: nowrap; }
  th { color: var(--dim); font-weight: 500; border-bottom: 1px solid var(--line); }
  tbody tr:nth-child(odd) { background: rgba(255,255,255,.02); }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .status { padding: 1px 8px; border-radius: 10px; font-size: 11px; }
  .status.healthy { background: rgba(63,185,80,.15); color: var(--green); }
  .status.slow    { background: rgba(210,153,34,.15); color: var(--amber); }
  .status.fast    { background: rgba(88,166,255,.15); color: var(--blue); }
  .status.stalled { background: rgba(248,81,73,.15); color: var(--red); }
  .status.unknown { background: rgba(139,148,158,.15); color: var(--dim); }
  #decisions { max-height: 300px; overflow-y: auto; }
  .decision { padding: 3px 0; border-bottom: 1px dashed var(--line);
              color: var(--dim); font-size: 12px; }
  .decision b { color: var(--purple); font-weight: 600; }
  .empty { color: var(--dim); font-style: italic; padding: 8px 0; }
  footer { padding: 10px 20px; color: var(--dim); font-size: 12px;
           border-top: 1px solid var(--line); }
  footer a { color: var(--blue); text-decoration: none; }
</style>
</head>
<body>
<header>
  <h1>repro fleet telemetry</h1>
  <span class="sub">application heartbeats, watching themselves</span>
  <span id="conn" class="dead">connecting…</span>
</header>
<div class="cards" style="padding: 16px 20px 0;">
  <div class="card"><div class="v" id="c-streams">–</div><div class="k">streams</div></div>
  <div class="card"><div class="v" id="c-mean">–</div><div class="k">mean rate</div></div>
  <div class="card"><div class="v" id="c-p99">–</div><div class="k">p99 rate</div></div>
  <div class="card" id="card-lagging"><div class="v" id="c-lagging">–</div><div class="k">lagging</div></div>
  <div class="card" id="card-stalled"><div class="v" id="c-stalled">–</div><div class="k">stalled</div></div>
  <div class="card"><div class="v" id="c-decisions">–</div><div class="k">decisions</div></div>
</div>
<main>
  <section style="grid-column: 1 / -1;">
    <h2>Streams <span id="truncated" style="text-transform:none"></span></h2>
    <table>
      <thead><tr><th>stream</th><th class="num">rate</th><th class="num">beats</th>
        <th class="num">target</th><th>status</th></tr></thead>
      <tbody id="streams"><tr><td colspan="5" class="empty">waiting for data…</td></tr></tbody>
    </table>
  </section>
  <section>
    <h2>Relay links — delivery latency</h2>
    <table>
      <thead><tr><th>peer</th><th class="num">frames</th><th class="num">p50</th>
        <th class="num">p99</th><th class="num">max</th></tr></thead>
      <tbody id="links"><tr><td colspan="5" class="empty">no relay links</td></tr></tbody>
    </table>
  </section>
  <section>
    <h2>Adaptation decisions</h2>
    <div id="decisions"><div class="empty">no decisions yet</div></div>
  </section>
</main>
<footer>
  <a href="/metrics">/metrics</a> · <a href="/api/snapshot">/api/snapshot</a> ·
  <a href="/events">/events</a> (SSE)
</footer>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmt = (v, digits = 2) =>
  (v === null || v === undefined) ? "–" : Number(v).toFixed(digits);
const ms = (v) => (v === null || v === undefined) ? "–" : (v * 1000).toFixed(2) + " ms";

function render(s) {
  const sum = s.summary || {};
  $("c-streams").textContent = sum.streams ?? "–";
  $("c-mean").textContent = fmt(sum.mean);
  $("c-p99").textContent = fmt((sum.percentiles || {})["99.0"]);
  $("c-lagging").textContent = sum.lagging ?? "–";
  $("c-stalled").textContent = sum.stalled ?? "–";
  $("card-lagging").className = "card" + (sum.lagging > 0 ? " warn" : "");
  $("card-stalled").className = "card" + (sum.stalled > 0 ? " bad" : "");
  $("c-decisions").textContent =
    s.metrics ? (s.metrics["engine_decisions_total"] ?? "–") : "–";

  const streams = s.streams || [];
  $("truncated").textContent =
    s.streams_truncated ? `(showing ${streams.length}, ${s.streams_truncated} more)` : "";
  $("streams").innerHTML = streams.length ? streams.map((r) => `
    <tr><td>${r.name}</td><td class="num">${fmt(r.rate)}</td>
    <td class="num">${r.total_beats}</td>
    <td class="num">${fmt(r.target_min, 1)}–${fmt(r.target_max, 1)}</td>
    <td><span class="status ${r.status}">${r.status}</span></td></tr>`).join("")
    : '<tr><td colspan="5" class="empty">no streams</td></tr>';

  const links = Object.entries(s.links || {});
  $("links").innerHTML = links.length ? links.map(([peer, l]) => `
    <tr><td>${peer}</td><td class="num">${l.count ?? 0}</td>
    <td class="num">${ms(l.p50)}</td><td class="num">${ms(l.p99)}</td>
    <td class="num">${ms(l.max)}</td></tr>`).join("")
    : '<tr><td colspan="5" class="empty">no relay links</td></tr>';

  const decisions = (s.decisions || []).slice().reverse();
  $("decisions").innerHTML = decisions.length ? decisions.map((d) => `
    <div class="decision">tick ${d.tick ?? d.beat} <b>${d.loop}</b>
    rate ${fmt(d.observed_rate)} → ${fmt(d.before, 1)} ⇒ ${fmt(d.after, 1)}</div>`).join("")
    : '<div class="empty">no decisions yet</div>';
}

function connect() {
  const source = new EventSource("/events");
  source.addEventListener("snapshot", (ev) => {
    $("conn").className = "live";
    $("conn").textContent = "live";
    render(JSON.parse(ev.data));
  });
  source.onerror = () => {
    $("conn").className = "dead";
    $("conn").textContent = "reconnecting…";
  };
}
connect();
</script>
</body>
</html>
"""
