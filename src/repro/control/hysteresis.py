"""Decision-spacing helpers.

Both of the paper's adaptation loops decide at a coarser granularity than
they observe: the adaptive encoder "checks its heart rate every 40 frames"
and the external scheduler lets a new allocation take effect for a number of
beats before judging it.  :class:`DecisionSpacer` encapsulates that pattern
so controllers stay pure functions of the observed rate.
"""

from __future__ import annotations

__all__ = ["DecisionSpacer"]


class DecisionSpacer:
    """Allows a decision only every ``interval`` beats, after a warm-up.

    Parameters
    ----------
    interval:
        Minimum number of beats between decisions.
    warmup:
        Beats to wait before the very first decision (defaults to
        ``interval`` so the first rate window has filled).
    """

    def __init__(self, interval: int, *, warmup: int | None = None) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if warmup is not None and warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.interval = int(interval)
        self.warmup = int(warmup) if warmup is not None else int(interval)
        self._last_decision_beat: int | None = None

    def should_decide(self, beat_index: int) -> bool:
        """True when a decision is allowed at ``beat_index`` (and records it)."""
        if beat_index < self.warmup:
            return False
        if self._last_decision_beat is None or beat_index - self._last_decision_beat >= self.interval:
            self._last_decision_beat = beat_index
            return True
        return False

    def reset(self) -> None:
        self._last_decision_beat = None
