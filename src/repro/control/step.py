"""Incremental step controllers.

The paper's external scheduler "adjusts the number of cores allocated" to
keep the heart rate inside the target window; Figures 5–7 show it moving one
core at a time.  :class:`StepController` reproduces that policy;
:class:`ProportionalStepController` is the natural generalisation used as an
ablation (larger steps when the rate is far from the window).
"""

from __future__ import annotations

import math

from repro.control.base import ControlDecision, Controller, TargetWindow

__all__ = ["StepController", "ProportionalStepController"]


class StepController(Controller):
    """Move the actuator by one unit towards the target window.

    Below the window: +1 unit (more resources / cheaper quality level is the
    caller's interpretation of the sign).  Above the window: -1 unit.  Inside
    the window: no change.
    """

    def __init__(self, target: TargetWindow, *, step: int = 1) -> None:
        super().__init__(target)
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.step = int(step)

    def _decide(self, rate: float) -> ControlDecision:
        if self.target.below(rate):
            return ControlDecision(delta=self.step)
        if self.target.above(rate):
            return ControlDecision(delta=-self.step)
        return ControlDecision(delta=0)


class ProportionalStepController(Controller):
    """Step size proportional to the relative distance from the window.

    The delta is ``ceil(|error| / midpoint * gain)`` units in the direction
    of the window, clamped to ``max_step``.  With ``gain`` small this behaves
    like :class:`StepController`; with larger gains it converges in fewer
    decisions at the cost of possible overshoot (explored by the ablation
    benchmark).
    """

    def __init__(
        self,
        target: TargetWindow,
        *,
        gain: float = 1.0,
        max_step: int = 4,
    ) -> None:
        super().__init__(target)
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        if max_step < 1:
            raise ValueError(f"max_step must be >= 1, got {max_step}")
        self.gain = float(gain)
        self.max_step = int(max_step)

    def _decide(self, rate: float) -> ControlDecision:
        error = self.target.error(rate)
        if error == 0.0:
            return ControlDecision(delta=0)
        reference = self.target.midpoint if self.target.midpoint > 0 else 1.0
        magnitude = math.ceil(abs(error) / reference * self.gain)
        magnitude = max(1, min(magnitude, self.max_step))
        return ControlDecision(delta=magnitude if error < 0 else -magnitude)
