"""PI(D) controller on the heart-rate error.

The paper's follow-on work (PTRADE/SEEC) formalises heartbeat-driven
adaptation as classical control; including a PID controller here lets the
ablation benchmark compare the paper's simple step policy with a
control-theoretic one on the same actuator.
"""

from __future__ import annotations

from repro.control.base import ControlDecision, Controller, TargetWindow

__all__ = ["PIDController"]


class PIDController(Controller):
    """Discrete PID controller producing an absolute actuator value.

    The error is measured against the target window's midpoint; the output is
    ``base + kp*e + ki*sum(e) + kd*(e - e_prev)`` clamped to
    ``[minimum_output, maximum_output]``.  The caller rounds/coerces the
    value onto its actuator (e.g. a core count).
    """

    def __init__(
        self,
        target: TargetWindow,
        *,
        kp: float = 1.0,
        ki: float = 0.2,
        kd: float = 0.0,
        base_output: float = 1.0,
        minimum_output: float = 1.0,
        maximum_output: float = 64.0,
    ) -> None:
        super().__init__(target)
        if maximum_output < minimum_output:
            raise ValueError("maximum_output must be >= minimum_output")
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.base_output = float(base_output)
        self.minimum_output = float(minimum_output)
        self.maximum_output = float(maximum_output)
        self._integral = 0.0
        self._previous_error: float | None = None

    def _decide(self, rate: float) -> ControlDecision:
        # Error is positive when the application is too slow (needs more of
        # the actuator), matching the sign convention of the step controllers.
        setpoint = self.target.midpoint
        error = (setpoint - rate) / setpoint if setpoint > 0 else 0.0
        if error == 0.0 and self._integral == 0.0 and not self._previous_error:
            # No error and no accumulated correction: the controller has no
            # opinion, so the actuator is left wherever it is rather than
            # being yanked to the base output.
            self._previous_error = 0.0
            return ControlDecision()
        self._integral += error
        derivative = 0.0 if self._previous_error is None else error - self._previous_error
        self._previous_error = error
        raw = (
            self.base_output
            + self.kp * error
            + self.ki * self._integral
            + self.kd * derivative
        )
        value = min(max(raw, self.minimum_output), self.maximum_output)
        # Anti-windup: when saturated, do not keep integrating outwards.
        if value != raw:
            self._integral -= error
        return ControlDecision(value=value)

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = None
