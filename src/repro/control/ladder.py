"""Ordered-knob ladder controller.

The adaptive encoder's knob space is an ordered ladder of presets from "best
quality, most work" to "lowest quality, least work"
(:data:`repro.encoder.settings.PRESET_LADDER`).  The paper's encoder checks
its heart rate every 40 frames and, when below target, "adjusts its encoding
algorithms to get more performance while possibly sacrificing the quality of
the encoded image"; when comfortably above target it can climb back towards
higher quality.  :class:`LadderController` implements that walk for any
discrete ladder.
"""

from __future__ import annotations

from repro.control.base import ControlDecision, Controller, TargetWindow

__all__ = ["LadderController"]


class LadderController(Controller):
    """Walks a discrete quality ladder to keep the rate inside the window.

    Level 0 is the highest quality (most work); higher levels are faster.

    Parameters
    ----------
    target:
        Target heart-rate window.
    levels:
        Number of ladder levels.
    initial_level:
        Starting level (0 = best quality, the paper's demanding preset).
    climb_margin:
        Fractional headroom above the target minimum (or above the window
        maximum when one exists) required before moving back towards higher
        quality; prevents oscillation right at the threshold.

    Notes
    -----
    The controller remembers levels it has had to abandon (the rate fell
    below the window while running them) and never climbs back into them.
    Without that memory a ladder whose adjacent levels straddle the window
    oscillates forever between "too slow" and "comfortably fast"; with it the
    controller settles, matching the behaviour described in the paper
    ("finally settles on the computationally light diamond search
    algorithm").  :meth:`reset` clears the memory, which is how a caller
    reacts to a change in the environment that might make rejected levels
    viable again.
    """

    def __init__(
        self,
        target: TargetWindow,
        levels: int,
        *,
        initial_level: int = 0,
        climb_margin: float = 0.25,
    ) -> None:
        super().__init__(target)
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if not 0 <= initial_level < levels:
            raise ValueError(
                f"initial_level must be in [0, {levels - 1}], got {initial_level}"
            )
        if climb_margin < 0:
            raise ValueError(f"climb_margin must be >= 0, got {climb_margin}")
        self.levels = int(levels)
        self.level = int(initial_level)
        self._initial_level = int(initial_level)
        self.climb_margin = float(climb_margin)
        self._rejected: set[int] = set()

    def _decide(self, rate: float) -> ControlDecision:
        """Return the ladder *delta* (+1 = drop quality, -1 = raise quality)."""
        if self.target.below(rate):
            self._rejected.add(self.level)
            if self.level < self.levels - 1:
                self.level += 1
                return ControlDecision(delta=+1)
            return ControlDecision(delta=0)
        climb_threshold = (
            self.target.maximum * (1.0 + self.climb_margin)
            if self.target.maximum != float("inf")
            else self.target.minimum * (1.0 + self.climb_margin)
        )
        candidate = self.level - 1
        if rate > climb_threshold and candidate >= 0 and candidate not in self._rejected:
            self.level = candidate
            return ControlDecision(delta=-1)
        return ControlDecision(delta=0)

    @property
    def rejected_levels(self) -> frozenset[int]:
        """Levels abandoned because the rate fell below the target while using them."""
        return frozenset(self._rejected)

    def reset(self) -> None:
        self.level = self._initial_level
        self._rejected.clear()
