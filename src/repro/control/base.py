"""Controller interfaces and the target-window value object."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

__all__ = ["TargetWindow", "ControlDecision", "Controller"]


@dataclass(frozen=True, slots=True)
class TargetWindow:
    """A target heart-rate range ``[minimum, maximum]``.

    ``maximum`` may be infinity for "at least this fast" goals (the adaptive
    encoder's 30 beat/s floor in Figure 3 has no ceiling).
    """

    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ValueError(f"minimum must be >= 0, got {self.minimum}")
        if self.maximum < self.minimum:
            raise ValueError(
                f"maximum ({self.maximum}) must be >= minimum ({self.minimum})"
            )

    @property
    def midpoint(self) -> float:
        if self.maximum == float("inf"):
            return self.minimum
        return 0.5 * (self.minimum + self.maximum)

    def contains(self, rate: float) -> bool:
        return self.minimum <= rate <= self.maximum

    def below(self, rate: float) -> bool:
        """True when ``rate`` is below the window (application too slow)."""
        return rate < self.minimum

    def above(self, rate: float) -> bool:
        """True when ``rate`` is above the window (application faster than needed)."""
        return rate > self.maximum

    def error(self, rate: float) -> float:
        """Signed distance from the window (0 inside, negative below, positive above)."""
        if self.below(rate):
            return rate - self.minimum
        if self.above(rate):
            return rate - self.maximum
        return 0.0


@dataclass(frozen=True, slots=True)
class ControlDecision:
    """One controller decision.

    ``delta`` is the signed change requested of the actuator (cores to add,
    ladder levels to move, ...); ``value`` is the absolute actuator value for
    controllers that produce one (PID); either may be ``None`` when the
    controller has no opinion this round.
    """

    delta: int | None = None
    value: float | None = None

    @property
    def is_noop(self) -> bool:
        return (self.delta in (None, 0)) and self.value is None


class Controller(abc.ABC):
    """Maps an observed heart rate to an actuator adjustment.

    Subclasses implement :meth:`_decide`; the public :meth:`decide` wraps it
    with the shared non-finite guard, so a NaN from a stalled or torn rate
    query (or an infinity from a degenerate timestamp span) can never reach a
    controller's arithmetic — it yields a no-op decision instead of
    propagating through integrators into actuator deltas.
    """

    def __init__(self, target: TargetWindow) -> None:
        self.target = target

    def decide(self, rate: float) -> ControlDecision:
        """Return the adjustment for the current observation.

        Non-finite readings (``nan`` from a stalled stream, ``±inf``) are
        treated as "no usable observation this round" and produce a no-op
        decision without touching any controller state.
        """
        if not math.isfinite(rate):
            return ControlDecision()
        return self._decide(rate)

    @abc.abstractmethod
    def _decide(self, rate: float) -> ControlDecision:
        """Map a finite observed rate to an adjustment (subclass hook)."""

    def reset(self) -> None:
        """Clear any internal state (integrators, velocity terms, ...)."""
        return None
