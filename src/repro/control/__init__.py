"""Decision logic shared by internal and external adaptation.

The paper's two adaptation loops — the encoder adjusting its own knobs and
the OS scheduler adjusting a core allocation — are the same control problem:
observe the heart rate, compare it with the target window, and nudge an
actuator.  This package separates that decision logic from the actuators so
both experiments (and the ablation benchmarks) can swap controllers freely:

* :class:`StepController` — add/remove one actuator unit per decision, the
  policy the paper's external scheduler uses;
* :class:`ProportionalStepController` — step size proportional to the
  relative rate error (reaches the window in fewer decisions, may overshoot);
* :class:`PIDController` — a textbook PI(D) controller producing a continuous
  actuator value;
* :class:`LadderController` — walks an ordered list of discrete quality
  levels, the policy the adaptive encoder uses;
* :mod:`repro.control.hysteresis` — helpers for target windows and decision
  spacing shared by the controllers.
"""

from repro.control.base import ControlDecision, Controller, TargetWindow
from repro.control.hysteresis import DecisionSpacer
from repro.control.ladder import LadderController
from repro.control.pid import PIDController
from repro.control.step import ProportionalStepController, StepController

__all__ = [
    "Controller",
    "ControlDecision",
    "TargetWindow",
    "StepController",
    "ProportionalStepController",
    "PIDController",
    "LadderController",
    "DecisionSpacer",
]
