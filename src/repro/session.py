"""The context-managed front door: one object that opens and owns everything.

:class:`TelemetrySession` is the composition root of the telemetry API.  Give
it endpoint URLs (see :mod:`repro.endpoints`) and it hands back live,
correctly-wired objects — producers (:meth:`produce`), single-stream
observers (:meth:`observe`), fleet observers (:meth:`fleet`), collectors
(:meth:`collect`) and adaptation engines (:meth:`adapt`) — while keeping
ownership of every resource it created: leaving the ``with`` block flushes,
closes and detaches them all, in reverse creation order, exactly once.

>>> from repro import TelemetrySession
>>> with TelemetrySession() as session:
...     hb = session.produce("mem://worker", window=20)
...     hb.set_target_rate(100.0, 200.0)
...     monitor = session.observe("mem://worker")
...     for item in range(40):
...         _ = hb.heartbeat(tag=item)   # returns the beat number
...     monitor.read().total_beats
40

The same URLs cross process boundaries: a producer in one process runs
``session.produce("shm://svc?depth=65536")`` (or ``tcp://host:port``,
or ``file:///var/log/svc.hblog``) and an observer anywhere else runs
``session.observe("shm://svc")`` or ``session.fleet("tcp://0.0.0.0:7717")``
with no other coordination.

One session, one time base: unless a ``clock`` is supplied (to the session,
or per call), every stream a session produces or observes — ``mem://``
included — is stamped with the host-wide monotonic clock
(``WallClock(rebase=False)``), so liveness ages are consistent across the
whole session and across processes.  (A bare
:class:`~repro.core.heartbeat.Heartbeat` keeps its process-rebased default;
pass ``clock=WallClock()`` to a session that prefers readable near-zero
timestamps and needs no cross-process alignment.)
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Callable

from repro.clock import Clock, WallClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.endpoints import (
    Endpoint,
    EndpointError,
    MemEndpoint,
    TcpEndpoint,
    open_collector,
    stream_name_for,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adapt.engine import AdaptationEngine
    from repro.adapt.spec import ActuatorFactory, AdaptSpec
    from repro.net.collector import HeartbeatCollector
    from repro.obs.serve import TelemetryServer

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Context-managed facade over producers, observers and fleets.

    Parameters
    ----------
    clock:
        Default time source for everything the session creates.  ``None``
        selects the host-wide monotonic clock (``WallClock(rebase=False)``)
        for every endpoint, keeping one time base across the session.
    window:
        Default rate window for produced and observed streams (``0``: the
        library / producer default).
    liveness_timeout:
        Default seconds-without-a-beat before observers classify a stream
        ``STALLED``; ``None`` disables the check.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> None:
        self._clock = clock
        self._window = int(window)
        self._liveness_timeout = liveness_timeout
        self._lock = threading.Lock()
        #: LIFO of ``(label, close callable)`` — closed in reverse creation
        #: order so observers detach before the producers they read.
        self._resources: list[tuple[str, Callable[[], None]]] = []
        self._produced: dict[str, Heartbeat] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def produce(
        self,
        endpoint: str | Endpoint = "mem://",
        *,
        name: str | None = None,
        window: int | None = None,
        history: int = 2048,
        target: tuple[float, float] | None = None,
        clock: Clock | None = None,
        thread_safe: bool = True,
    ) -> Heartbeat:
        """Open a heartbeat stream that publishes to ``endpoint``.

        ``name`` defaults to the endpoint's natural stream name (the
        ``mem://``/``shm://`` name, the ``tcp://...?stream=`` parameter, the
        log file's basename; a bare ``tcp://host:port`` gets the per-process
        ``hb-<pid>`` so producers on different hosts never collide at the
        collector).  ``target=(min, max)`` publishes a heart-rate goal
        immediately.  ``history`` sizes the retained history of ``mem://``
        streams without an explicit ``?capacity=``, exactly like a bare
        :class:`Heartbeat`; the other schemes size their storage with URL
        parameters (``capacity``/``depth``).

        Returns
        -------
        Heartbeat
            A session-owned heartbeat: it is finalised (backend flushed and
            closed) when the session closes, and can also be finalised
            earlier by the caller — finalisation is idempotent.

        Raises
        ------
        EndpointError
            On an unparseable URL, producer-invalid parameters (e.g.
            ``upstream=`` on a producer endpoint) or a duplicate stream
            name within this session.
        OSError
            When the endpoint's storage cannot be opened (file path,
            shared-memory segment).

        >>> with TelemetrySession() as session:
        ...     hb = session.produce("mem://svc", window=8, target=(5.0, 10.0))
        ...     hb.heartbeat_batch(4)
        ...     (hb.name, hb.target_min, hb.target_max)
        0
        ('svc', 5.0, 10.0)
        """
        ep = Endpoint.parse(endpoint)
        label = f"produce:{ep}"
        if name is not None:
            stream_name = name
        elif isinstance(ep, TcpEndpoint) and ep.stream is None:
            stream_name = f"hb-{os.getpid()}"
        else:
            stream_name = stream_name_for(ep)
        # Heartbeat opens the endpoint itself (one layer owns URL → backend,
        # including mem:// history sizing and tcp:// stream naming).
        heartbeat = Heartbeat(
            self._window if window is None else window,
            name=stream_name,
            clock=self._clock_for(ep, clock),
            backend=ep,
            history=history,
            thread_safe=thread_safe,
        )
        try:
            if target is not None:
                heartbeat.set_target_rate(target[0], target[1])
            with self._lock:
                # observe()/fleet() resolve mem:// URLs through this
                # registry; a silent alias would split one name across two
                # streams, so duplicates are rejected.
                if stream_name in self._produced:
                    raise EndpointError(
                        f"a stream named {stream_name!r} was already produced "
                        "in this session; pass name= (or ?stream=) to "
                        "distinguish them"
                    )
            self._register(label, heartbeat.finalize)
            with self._lock:
                self._produced[stream_name] = heartbeat
        except Exception:
            heartbeat.finalize()  # a rejected stream must not leak its backend
            raise
        return heartbeat

    # ------------------------------------------------------------------ #
    # Observer side
    # ------------------------------------------------------------------ #
    def observe(
        self,
        endpoint: str | Endpoint,
        *,
        window: int | None = None,
        liveness_timeout: float | None = None,
        clock: Clock | None = None,
    ) -> HeartbeatMonitor:
        """Attach a read-only monitor to one stream named by ``endpoint``.

        ``file://`` and ``shm://`` endpoints attach across processes;
        ``mem://NAME`` resolves to the stream this session produced under
        that name.  ``tcp://`` observation is fleet-shaped — use
        :meth:`fleet` (or :meth:`collect`) and let producers dial in.

        Returns
        -------
        HeartbeatMonitor
            A session-owned read-only monitor over the stream.

        Raises
        ------
        EndpointError
            For a ``tcp://`` endpoint (fleet-shaped), a ``mem://`` name
            this session never produced, or an unparseable URL.

        >>> with TelemetrySession() as session:
        ...     hb = session.produce("mem://svc")
        ...     hb.heartbeat_batch(3)
        ...     session.observe("mem://svc").read().total_beats
        0
        3
        """
        ep = Endpoint.parse(endpoint)
        window = self._window if window is None else int(window)
        timeout = (
            self._liveness_timeout if liveness_timeout is None else liveness_timeout
        )
        if isinstance(ep, MemEndpoint):
            heartbeat = self._lookup(ep)
            observer_clock = clock if clock is not None else self._clock
            monitor = HeartbeatMonitor.for_source(
                heartbeat,
                clock=observer_clock if observer_clock is not None else heartbeat.clock,
                window=window,
                liveness_timeout=timeout,
            )
        elif isinstance(ep, TcpEndpoint):
            raise EndpointError(
                f"{ep} is fleet-shaped: observe it with session.fleet({str(ep)!r})"
            )
        else:
            monitor = HeartbeatMonitor.attach_endpoint(
                ep,
                clock=self._clock_for(ep, clock),
                window=window,
                liveness_timeout=timeout,
            )
        self._register(f"observe:{ep}", monitor.close)
        return monitor

    def fleet(
        self,
        *endpoints: str | Endpoint | object,
        window: int | None = None,
        liveness_timeout: float | None = None,
        num_shards: int = 1,
        incremental: bool = True,
        clock: Clock | None = None,
    ) -> HeartbeatAggregator:
        """Open a fleet observer over any mix of endpoints.

        Each argument may be an endpoint URL/:class:`Endpoint` — ``tcp://``
        binds a session-owned collector and observes every producer that
        dials in (dynamically, as they appear); ``file://`` / ``shm://`` /
        ``mem://NAME`` attach single streams; ``mem-arena://`` /
        ``shm-arena://`` attach a whole arena slab as one vectorized shard
        (every allocated row, including rows allocated later) — or an
        already-running collector-like object (anything with
        ``stream_ids``), which is observed without taking ownership.

        Returns
        -------
        HeartbeatAggregator
            A session-owned fleet observer; one :meth:`poll` samples every
            attached stream.

        Raises
        ------
        EndpointError
            On an unparseable URL or an entry that is neither an endpoint
            nor collector-like.
        OSError
            When a ``tcp://`` entry's bind address is already in use.

        >>> with TelemetrySession() as session:
        ...     hb = session.produce("mem://svc")
        ...     hb.heartbeat_batch(5)
        ...     fleet = session.fleet("mem://svc")
        ...     fleet.poll().reading("svc").total_beats
        0
        5
        """
        aggregator = HeartbeatAggregator(
            clock=clock if clock is not None else self._observer_clock(),
            window=self._window if window is None else int(window),
            liveness_timeout=(
                self._liveness_timeout if liveness_timeout is None else liveness_timeout
            ),
            num_shards=num_shards,
            incremental=incremental,
        )
        self._register("fleet", aggregator.close)
        for entry in endpoints:
            self._attach_fleet_entry(aggregator, entry)
        return aggregator

    def collect(
        self,
        endpoint: str | Endpoint = "tcp://127.0.0.1:0",
        *,
        arena: str | None = None,
    ) -> "HeartbeatCollector":
        """Bind a session-owned TCP collector at a ``tcp://`` endpoint.

        A ``?upstream=host:port`` parameter binds an *edge* collector that
        forwards every stream to the named upstream collector, so a
        federation tree is built from URLs alone (see
        ``docs/architecture.md`` §3).

        ``arena`` (a ``mem-arena://`` / ``shm-arena://`` URL) puts the
        collector in arena mode: incoming streams demux into one columnar
        slab, so a 100k-stream fleet neither allocates 100k backend objects
        nor costs 100k Python calls per observer poll — fleet observers
        attach the slab as a single vectorized shard.

        Returns
        -------
        HeartbeatCollector
            The bound collector; producers dial ``collector.endpoint_url``.

        Raises
        ------
        EndpointError
            When ``endpoint`` is not ``tcp://`` or carries producer-side
            parameters (``stream``/``capacity``/``flush_interval``).
        OSError
            When the listen address is already bound.

        >>> with TelemetrySession() as session:
        ...     collector = session.collect("tcp://127.0.0.1:0")
        ...     collector.stream_ids()
        []
        """
        collector = open_collector(endpoint, arena=arena)
        self._register(f"collect:tcp://{collector.endpoint}", collector.close)
        return collector

    def watch(
        self,
        *endpoints: "str | Endpoint | object",
        serve: bool | int = True,
        host: str = "127.0.0.1",
        interval: float = 1.0,
        window: int | None = None,
        liveness_timeout: float | None = None,
        engine: "AdaptationEngine | None" = None,
        max_streams: int = 200,
    ) -> "TelemetryServer":
        """Open a live dashboard server over a fleet of endpoints.

        Builds a session-owned fleet observer over ``endpoints`` (the same
        wiring rules as :meth:`fleet` — ``tcp://`` binds collectors,
        ``mem://``/``file://``/``shm://`` attach streams, collector-like
        objects attach without ownership) and mounts a
        :class:`~repro.obs.serve.TelemetryServer` over it: an HTML dashboard
        at ``/``, SSE fleet snapshots at ``/events``, and the merged metric
        registries at ``/metrics``.  Collectors bound (or passed) here also
        contribute their relay-link latency histograms to the page.

        ``serve`` picks the port: ``True`` binds an ephemeral one (read
        ``.url``), an integer binds that port.  ``engine`` optionally feeds
        the live decision stream.  The server is session-owned: leaving the
        ``with`` block closes it along with the fleet it watches.

        >>> with TelemetrySession() as session:
        ...     hb = session.produce("mem://svc")
        ...     server = session.watch("mem://svc", interval=0.05)
        ...     server.url.startswith("http://127.0.0.1:")
        True
        """
        from repro.obs.serve import TelemetryServer

        aggregator = self.fleet(window=window, liveness_timeout=liveness_timeout)
        collectors: list[object] = []
        for entry in endpoints:
            attached = self._attach_fleet_entry(aggregator, entry)
            if attached is not None:
                collectors.append(attached)
        port = 0 if serve is True else int(serve)
        server = TelemetryServer(
            aggregator,
            collectors=collectors,
            engine=engine,
            host=host,
            port=port,
            interval=interval,
            max_streams=max_streams,
        )
        self._register(f"watch:{server.url}", server.close)
        return server

    # ------------------------------------------------------------------ #
    # Adaptation
    # ------------------------------------------------------------------ #
    def adapt(
        self,
        spec: "AdaptSpec | str",
        *,
        actuators: "dict[str, ActuatorFactory] | None" = None,
        attach: "tuple[str | Endpoint, ...] | list[str | Endpoint]" = (),
        clock: Clock | None = None,
    ) -> "AdaptationEngine":
        """Build a session-owned adaptation engine from a declarative spec.

        ``spec`` is an :class:`~repro.adapt.AdaptSpec` or a path to one.  The
        spec's own ``[engine] attach`` endpoints are wired first, then any
        extra ``attach`` entries, through exactly the same rules as
        :meth:`fleet` — so a spec can carry its full wiring
        (``attach = ["tcp://0.0.0.0:7717"]``) and need nothing but
        ``session.adapt("spec.toml")`` at runtime.

        Returns
        -------
        AdaptationEngine
            A session-owned engine over a session-owned aggregator; call
            :meth:`~repro.adapt.engine.AdaptationEngine.tick` (or
            ``run``) to observe-and-act.

        Raises
        ------
        EndpointError
            From the attach wiring, exactly as :meth:`fleet`.
        HeartbeatError
            When the spec file cannot be parsed or its rules are invalid.
        """
        from repro.adapt.spec import AdaptSpec

        if not isinstance(spec, AdaptSpec):
            spec = AdaptSpec.from_file(spec)
        aggregator = self.fleet(
            window=spec.window,
            liveness_timeout=spec.liveness_timeout,
            num_shards=spec.num_shards,
            clock=clock,
        )
        engine = spec.build_engine(aggregator=aggregator, actuators=actuators)
        # The aggregator is already session-owned; the engine must not close
        # it a second time (engine.close is idempotent about its own state).
        self._register("adapt", lambda: engine.close(close_aggregator=False))
        for entry in (*spec.attach, *attach):
            self._attach_fleet_entry(aggregator, entry)
        return engine

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release everything the session created, newest first.  Idempotent.

        Every resource's close is attempted even if an earlier one raises;
        the first failure is re-raised once teardown has run to completion.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            resources = list(self._resources)
            self._resources.clear()
            self._produced.clear()
        first_error: BaseException | None = None
        for _, closer in reversed(resources):
            try:
                closer()
            except BaseException as exc:  # noqa: BLE001 - teardown must finish
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetrySession(resources={len(self._resources)}, "
            f"closed={self._closed})"
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _register(self, label: str, closer: Callable[[], None]) -> None:
        with self._lock:
            if not self._closed:
                self._resources.append((label, closer))
                return
        # Too late to own anything: release the resource and refuse.
        closer()
        raise EndpointError("telemetry session is closed")

    def _clock_for(self, ep: Endpoint, override: Clock | None) -> Clock:
        """The time base for one endpoint: override > session > the default.

        One session, one time base: every produced and observed stream
        defaults to the same host-wide monotonic clock, so a fleet mixing
        ``mem://`` and cross-process streams computes consistent liveness
        ages for all of them.
        """
        if override is not None:
            return override
        return self._observer_clock()

    def _observer_clock(self) -> Clock:
        """Fleet observers default to the host-wide monotonic time base."""
        return self._clock if self._clock is not None else WallClock(rebase=False)

    def _lookup(self, ep: MemEndpoint) -> Heartbeat:
        name = ep.name or "heartbeat"
        with self._lock:
            heartbeat = self._produced.get(name)
        if heartbeat is None:
            raise EndpointError(
                f"no stream named {name!r} was produced in this session; "
                "mem:// endpoints are process-local"
            )
        return heartbeat

    def _attach_fleet_entry(
        self, aggregator: HeartbeatAggregator, entry: "str | Endpoint | object"
    ) -> object | None:
        """Attach one fleet entry: an endpoint URL or a collector-like object.

        Returns the collector involved (bound here or passed in) so callers
        like :meth:`watch` can surface collector-level telemetry; ``None``
        for single-stream attachments.
        """
        if not isinstance(entry, (str, Endpoint)):
            if callable(getattr(entry, "stream_ids", None)):
                aggregator.attach_collector(entry)  # type: ignore[arg-type]
                return entry
            raise EndpointError(
                f"fleet entries are endpoint URLs or collector-like objects, "
                f"got {type(entry).__name__}"
            )
        ep = Endpoint.parse(entry)
        if isinstance(ep, TcpEndpoint):
            collector = self.collect(ep)
            aggregator.attach_collector(collector)
            return collector
        if isinstance(ep, MemEndpoint):
            heartbeat = self._lookup(ep)
            aggregator.attach(heartbeat.name, heartbeat)
        else:
            aggregator.attach_endpoint(ep)
        return None
