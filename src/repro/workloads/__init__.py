"""PARSEC-like instrumented workloads (the paper's Table-2 suite).

Each module implements one benchmark of the suite as a :class:`Workload`:
a calibrated per-beat cost model for the simulated machine plus a real numpy
kernel of the same character for wall-clock instrumented runs.  See
``DESIGN.md`` for the substitution rationale.
"""

from repro.workloads.base import REFERENCE_CORES, Workload, WorkloadInfo
from repro.workloads.blackscholes import BlackscholesWorkload, black_scholes_price
from repro.workloads.bodytrack import BodytrackWorkload, ParticleFilter
from repro.workloads.canneal import CannealWorkload, NetlistAnnealer
from repro.workloads.dedup import ChunkingDeduplicator, DedupWorkload
from repro.workloads.facesim import FacesimWorkload, SpringMassMesh
from repro.workloads.ferret import FerretWorkload, SimilarityIndex
from repro.workloads.fluidanimate import FluidanimateWorkload, SPHFluid
from repro.workloads.streamcluster import OnlineKMedian, StreamclusterWorkload
from repro.workloads.suite import (
    WORKLOAD_CLASSES,
    Table2Row,
    create_workload,
    run_table2,
    workload_names,
)
from repro.workloads.swaptions import SwaptionsWorkload, price_swaption
from repro.workloads.x264 import RatePhase, X264Workload

__all__ = [
    "Workload",
    "WorkloadInfo",
    "REFERENCE_CORES",
    "BlackscholesWorkload",
    "BodytrackWorkload",
    "CannealWorkload",
    "DedupWorkload",
    "FacesimWorkload",
    "FerretWorkload",
    "FluidanimateWorkload",
    "StreamclusterWorkload",
    "SwaptionsWorkload",
    "X264Workload",
    "RatePhase",
    "black_scholes_price",
    "price_swaption",
    "ParticleFilter",
    "NetlistAnnealer",
    "ChunkingDeduplicator",
    "SpringMassMesh",
    "SimilarityIndex",
    "SPHFluid",
    "OnlineKMedian",
    "WORKLOAD_CLASSES",
    "Table2Row",
    "create_workload",
    "run_table2",
    "workload_names",
]
