"""``dedup`` — content-defined chunking and deduplication.

PARSEC's dedup compresses a data stream with "deduplication": the stream is
split into chunks with a rolling hash, each chunk is fingerprinted, and
previously seen chunks are replaced by references.  The paper registers one
heartbeat per chunk (Table 2: "Every 'chunk'", 264.30 beat/s).

The kernel implements the real pipeline on a synthetic stream: a polynomial
rolling hash chooses chunk boundaries, SHA-1 fingerprints identify duplicate
chunks, and a running duplicate ratio is maintained.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.sim.scaling import AmdahlScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import data_stream

__all__ = ["ChunkingDeduplicator", "DedupWorkload"]


class ChunkingDeduplicator:
    """Rolling-hash content-defined chunking with fingerprint deduplication."""

    def __init__(
        self,
        *,
        window: int = 16,
        boundary_mask: int = 0x3FF,
        min_chunk: int = 256,
        max_chunk: int = 8192,
    ) -> None:
        if window <= 0 or min_chunk <= 0 or max_chunk < min_chunk:
            raise ValueError("invalid chunking parameters")
        self.window = window
        self.boundary_mask = boundary_mask
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.fingerprints: set[bytes] = set()
        self.chunks_seen = 0
        self.duplicates = 0

    def chunk_boundaries(self, data: bytes) -> list[int]:
        """Return chunk end offsets chosen by the rolling hash."""
        arr = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
        if arr.size == 0:
            return []
        # Polynomial rolling hash over a sliding window, fully vectorised:
        # hash[i] = sum_{j<window} arr[i-j] * base^j  (mod 2^64).
        base = np.uint64(257)
        powers = base ** np.arange(self.window, dtype=np.uint64)
        padded = np.concatenate([np.zeros(self.window - 1, dtype=np.uint64), arr])
        windows = np.lib.stride_tricks.sliding_window_view(padded, self.window)
        hashes = (windows * powers[::-1]).sum(axis=1)
        is_boundary = (hashes & np.uint64(self.boundary_mask)) == 0
        boundaries: list[int] = []
        last = 0
        for idx in np.nonzero(is_boundary)[0]:
            length = int(idx) + 1 - last
            if length < self.min_chunk:
                continue
            boundaries.append(int(idx) + 1)
            last = int(idx) + 1
        # Enforce the maximum chunk size and terminate the final chunk.
        final: list[int] = []
        prev = 0
        for b in boundaries + [len(data)]:
            while b - prev > self.max_chunk:
                prev += self.max_chunk
                final.append(prev)
            if b > prev:
                final.append(b)
                prev = b
        return final

    def deduplicate(self, data: bytes) -> tuple[int, int]:
        """Chunk and fingerprint ``data``; returns (chunks, duplicates)."""
        boundaries = self.chunk_boundaries(data)
        start = 0
        new_chunks = 0
        new_duplicates = 0
        for end in boundaries:
            digest = hashlib.sha1(data[start:end]).digest()
            if digest in self.fingerprints:
                new_duplicates += 1
            else:
                self.fingerprints.add(digest)
            new_chunks += 1
            start = end
        self.chunks_seen += new_chunks
        self.duplicates += new_duplicates
        return new_chunks, new_duplicates

    @property
    def duplicate_ratio(self) -> float:
        if self.chunks_seen == 0:
            return 0.0
        return self.duplicates / self.chunks_seen


class DedupWorkload(Workload):
    """Deduplication workload; one heartbeat per input segment ("chunk")."""

    NAME = "dedup"
    HEARTBEAT_LOCATION = "Every \"chunk\""
    PAPER_HEART_RATE = 264.30
    # The pipeline stages parallelise but the shared fingerprint index is a
    # serial bottleneck.
    DEFAULT_SCALING = AmdahlScaling(0.20)
    DEFAULT_BEATS = 400

    def __init__(self, *, bytes_per_beat: int = 16_384, repetition: float = 0.5, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if bytes_per_beat <= 0:
            raise ValueError(f"bytes_per_beat must be positive, got {bytes_per_beat}")
        self.bytes_per_beat = int(bytes_per_beat)
        self.repetition = float(repetition)
        self._dedup = ChunkingDeduplicator()

    def execute_beat(self, beat_index: int) -> tuple[int, int]:
        """Deduplicate one stream segment; returns (chunks, duplicates)."""
        rng = np.random.default_rng(self.seed * 100_000 + beat_index)
        segment = data_stream(rng, self.bytes_per_beat, self.repetition)
        return self._dedup.deduplicate(segment)
