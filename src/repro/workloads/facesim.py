"""``facesim`` — deformable face-mesh simulation.

PARSEC's facesim animates a detailed human face model by solving the
equations of motion of a finite-element mesh each frame.  The paper registers
one heartbeat per frame (Table 2: 0.72 beat/s — the second slowest rate in
the suite) and measures the framework's overhead at under 5% for this
benchmark.

The kernel here time-steps a spring-mass mesh (a structured grid of masses
connected to their neighbours) with semi-implicit Euler integration — a small
but genuine deformable-body solve per frame.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import AmdahlScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import mesh_grid

__all__ = ["SpringMassMesh", "FacesimWorkload"]


class SpringMassMesh:
    """A square grid of unit masses connected by springs to grid neighbours."""

    def __init__(
        self,
        side: int = 24,
        *,
        stiffness: float = 40.0,
        damping: float = 0.4,
        seed: int = 0,
    ) -> None:
        if side < 2:
            raise ValueError(f"side must be >= 2, got {side}")
        rng = np.random.default_rng(seed)
        state = mesh_grid(rng, side)
        self.side = side
        self.rest = state["rest"]
        self.position = state["position"]
        self.velocity = state["velocity"]
        self.stiffness = float(stiffness)
        self.damping = float(damping)
        self._edges = self._build_edges(side)
        self._rest_lengths = np.linalg.norm(
            self.rest[self._edges[:, 0]] - self.rest[self._edges[:, 1]], axis=1
        )

    @staticmethod
    def _build_edges(side: int) -> np.ndarray:
        """Horizontal and vertical springs of the grid."""
        idx = np.arange(side * side).reshape(side, side)
        horizontal = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
        vertical = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
        return np.concatenate([horizontal, vertical], axis=0)

    def step(self, dt: float = 0.01, substeps: int = 8, actuation: float = 0.0) -> float:
        """Advance the mesh; returns the mean displacement from rest.

        ``actuation`` applies a sinusoidal muscle-like force along z to a band
        of the mesh, which keeps the system from simply settling.
        """
        if dt <= 0 or substeps <= 0:
            raise ValueError("dt and substeps must be positive")
        n = self.position.shape[0]
        band = slice(0, self.side)  # one row acts as the "muscle attachment"
        for _ in range(substeps):
            deltas = self.position[self._edges[:, 0]] - self.position[self._edges[:, 1]]
            lengths = np.linalg.norm(deltas, axis=1)
            lengths[lengths == 0.0] = 1e-12
            force_mag = self.stiffness * (lengths - self._rest_lengths)
            directions = deltas / lengths[:, None]
            forces = np.zeros_like(self.position)
            np.add.at(forces, self._edges[:, 0], -force_mag[:, None] * directions)
            np.add.at(forces, self._edges[:, 1], force_mag[:, None] * directions)
            forces -= self.damping * self.velocity
            if actuation:
                forces[band, 2] += actuation
            self.velocity = self.velocity + dt * forces  # unit masses
            self.position = self.position + dt * self.velocity
        assert self.position.shape[0] == n
        return float(np.mean(np.linalg.norm(self.position - self.rest, axis=1)))


class FacesimWorkload(Workload):
    """Face-simulation workload; one heartbeat per simulated frame."""

    NAME = "facesim"
    HEARTBEAT_LOCATION = "Every frame"
    PAPER_HEART_RATE = 0.72
    DEFAULT_SCALING = AmdahlScaling(0.15)
    DEFAULT_BEATS = 100

    def __init__(self, *, mesh_side: int = 24, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self._mesh = SpringMassMesh(mesh_side, seed=self.seed)

    def execute_beat(self, beat_index: int) -> float:
        """Simulate one frame; returns the mean mesh displacement."""
        actuation = 2.0 * np.sin(beat_index * 0.3)
        return self._mesh.step(actuation=actuation)
