"""``fluidanimate`` — smoothed-particle-hydrodynamics fluid animation.

PARSEC's fluidanimate animates an incompressible fluid with SPH for real-time
graphics; one frame advances every particle's density, pressure forces and
position.  The paper registers one heartbeat per frame (Table 2:
41.25 beat/s).

The kernel here performs a real (small) SPH step per beat: a cell-binned
neighbour search, kernel-weighted density estimation, pressure and viscosity
forces, then symplectic integration with box boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import AmdahlScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import particle_cloud

__all__ = ["SPHFluid", "FluidanimateWorkload"]


class SPHFluid:
    """A minimal smoothed-particle-hydrodynamics solver in a periodic-free box."""

    def __init__(
        self,
        particles: int = 512,
        *,
        box: float = 10.0,
        smoothing: float = 1.2,
        rest_density: float = 1.0,
        stiffness: float = 4.0,
        viscosity: float = 0.1,
        seed: int = 0,
    ) -> None:
        if particles <= 0:
            raise ValueError(f"particles must be positive, got {particles}")
        rng = np.random.default_rng(seed)
        state = particle_cloud(rng, particles, box)
        self.position = state["position"]
        self.velocity = state["velocity"]
        self.box = float(box)
        self.h = float(smoothing)
        self.rest_density = float(rest_density)
        self.stiffness = float(stiffness)
        self.viscosity = float(viscosity)

    def _pairwise(self) -> tuple[np.ndarray, np.ndarray]:
        """Pairwise displacement vectors and distances (dense, n <= ~1k)."""
        deltas = self.position[:, None, :] - self.position[None, :, :]
        dists = np.linalg.norm(deltas, axis=2)
        return deltas, dists

    def step(self, dt: float = 0.005) -> float:
        """Advance one frame; returns the mean particle density."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        deltas, dists = self._pairwise()
        h = self.h
        # Poly6-style kernel for density, clipped outside the support radius.
        within = dists < h
        w = np.where(within, (1.0 - (dists / h) ** 2) ** 3, 0.0)
        density = w.sum(axis=1)
        pressure = self.stiffness * np.maximum(density - self.rest_density, 0.0)
        # Pressure force: symmetric, along the displacement direction.
        with np.errstate(divide="ignore", invalid="ignore"):
            direction = np.where(dists[..., None] > 1e-9, deltas / dists[..., None], 0.0)
        grad = np.where(within, (1.0 - dists / h) ** 2, 0.0)
        pressure_pair = (pressure[:, None] + pressure[None, :]) * 0.5
        force = (pressure_pair * grad)[..., None] * direction
        # Viscosity force: pulls velocities of neighbours together.
        vel_delta = self.velocity[None, :, :] - self.velocity[:, None, :]
        force += self.viscosity * (grad[..., None] * vel_delta)
        total_force = force.sum(axis=1)
        self.velocity = self.velocity + dt * total_force
        self.velocity[:, 2] -= dt * 9.8  # gravity
        self.position = self.position + dt * self.velocity
        # Box walls: clamp and damp.
        below = self.position < 0.0
        above = self.position > self.box
        self.position = np.clip(self.position, 0.0, self.box)
        self.velocity[below | above] *= -0.3
        return float(density.mean())


class FluidanimateWorkload(Workload):
    """Fluid-animation workload; one heartbeat per simulated frame."""

    NAME = "fluidanimate"
    HEARTBEAT_LOCATION = "Every frame"
    PAPER_HEART_RATE = 41.25
    DEFAULT_SCALING = AmdahlScaling(0.07)
    DEFAULT_BEATS = 300

    def __init__(self, *, particles: int = 512, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self._fluid = SPHFluid(particles, seed=self.seed)

    def execute_beat(self, beat_index: int) -> float:
        """Simulate one frame; returns the mean density."""
        return self._fluid.step()
