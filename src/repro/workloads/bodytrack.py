"""``bodytrack`` — particle-filter body tracking.

PARSEC's bodytrack is "a computer vision application that tracks a person's
movement through a scene" with an annealed particle filter over multi-camera
edge/foreground images.  The paper registers one heartbeat per frame
(Table 2: 4.31 beat/s on eight cores).  In the Figure-5 scheduler experiment
the computational load drops sharply near beat 141 and the scheduler reclaims
cores; the workload models that as a phase change.

The kernel here runs a real (2-D, single-camera) particle filter per frame:
particles are propagated with Gaussian diffusion, weighted by a likelihood
against a synthetic observation of the subject's true position, and resampled
systematically.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import AmdahlScaling
from repro.workloads.base import Workload

__all__ = ["ParticleFilter", "BodytrackWorkload"]


class ParticleFilter:
    """A minimal sequential-importance-resampling particle filter in 2-D."""

    def __init__(self, particles: int, *, diffusion: float = 0.5, seed: int = 0) -> None:
        if particles <= 0:
            raise ValueError(f"particles must be positive, got {particles}")
        self.rng = np.random.default_rng(seed)
        self.particles = self.rng.uniform(0.0, 10.0, size=(particles, 2))
        self.weights = np.full(particles, 1.0 / particles)
        self.diffusion = float(diffusion)

    def step(self, observation: np.ndarray, observation_noise: float = 1.0) -> np.ndarray:
        """Advance one frame given a noisy observation; returns the estimate."""
        observation = np.asarray(observation, dtype=np.float64)
        n = len(self.particles)
        # Propagate.
        self.particles = self.particles + self.rng.normal(0.0, self.diffusion, self.particles.shape)
        # Weight by Gaussian likelihood of the observation.
        sq_dist = np.sum((self.particles - observation) ** 2, axis=1)
        weights = np.exp(-0.5 * sq_dist / observation_noise**2)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            weights = np.full(n, 1.0 / n)
        else:
            weights = weights / total
        self.weights = weights
        estimate = np.average(self.particles, axis=0, weights=self.weights)
        # Systematic resampling keeps the particle set healthy.
        positions = (self.rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        indexes = np.searchsorted(cumulative, positions)
        self.particles = self.particles[indexes]
        self.weights = np.full(n, 1.0 / n)
        return estimate


class BodytrackWorkload(Workload):
    """Body-tracking workload; one heartbeat per processed frame.

    Parameters
    ----------
    particles:
        Particle count of the real kernel.
    load_drop_beat:
        Beat index at which the scene becomes much easier (the Figure-5 load
        drop); ``None`` disables the phase change.
    load_drop_factor:
        Per-frame cost after the drop, relative to the nominal (Table-2)
        cost.  The paper's run ends with the application meeting its
        2.5–3.5 beat/s target on a single core, which corresponds to a factor
        around 0.3.
    initial_load_factor:
        Per-frame cost before the drop, relative to nominal.  The Figure-5
        section of the input is somewhat heavier than the native-run average
        (the scheduler needs about seven of the eight cores to hold the
        window), modelled here as a 1.52x cost factor.
    """

    NAME = "bodytrack"
    HEARTBEAT_LOCATION = "Every frame"
    PAPER_HEART_RATE = 4.31
    DEFAULT_SCALING = AmdahlScaling(0.10)
    DEFAULT_BEATS = 260

    def __init__(
        self,
        *,
        particles: int = 1024,
        load_drop_beat: int | None = None,
        load_drop_factor: float = 0.3,
        initial_load_factor: float = 1.0,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        if particles <= 0:
            raise ValueError(f"particles must be positive, got {particles}")
        if not 0.0 < load_drop_factor <= 1.0:
            raise ValueError(f"load_drop_factor must be in (0, 1], got {load_drop_factor}")
        if initial_load_factor <= 0:
            raise ValueError(f"initial_load_factor must be positive, got {initial_load_factor}")
        self.particles = int(particles)
        self.load_drop_beat = load_drop_beat
        self.load_drop_factor = float(load_drop_factor)
        self.initial_load_factor = float(initial_load_factor)
        self._filter = ParticleFilter(self.particles, seed=self.seed)

    def _reseed_kernel(self) -> None:
        self._filter = ParticleFilter(self.particles, seed=self.seed)

    @classmethod
    def figure5(cls, **kwargs: object) -> "BodytrackWorkload":
        """The Figure-5 configuration: heavier opening, sharp load drop at beat 141."""
        kwargs.setdefault("load_drop_beat", 141)
        kwargs.setdefault("load_drop_factor", 0.3)
        kwargs.setdefault("initial_load_factor", 1.52)
        return cls(**kwargs)

    def phase_multiplier(self, beat_index: int) -> float:
        if self.load_drop_beat is not None and beat_index >= self.load_drop_beat:
            return self.load_drop_factor
        return self.initial_load_factor

    def _true_position(self, beat_index: int) -> np.ndarray:
        """Ground-truth subject position for frame ``beat_index`` (smooth path)."""
        t = beat_index * 0.1
        return np.array([5.0 + 3.0 * np.cos(t), 5.0 + 3.0 * np.sin(0.7 * t)])

    def execute_beat(self, beat_index: int) -> float:
        """Track one frame; returns the estimation error against ground truth."""
        rng = np.random.default_rng(self.seed * 100_000 + beat_index)
        truth = self._true_position(beat_index)
        observation = truth + rng.normal(0.0, 0.3, size=2)
        estimate = self._filter.step(observation)
        return float(np.linalg.norm(estimate - truth))
