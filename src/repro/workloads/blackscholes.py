"""``blackscholes`` — European option pricing.

PARSEC's blackscholes prices a portfolio of ten million European options with
the Black–Scholes closed-form formula.  The paper registers a heartbeat every
25 000 options (Table 2: "Every 25000 options", average rate 561.03 beat/s)
after finding that a beat per option adds an order of magnitude of overhead
(Section 5.1) — the overhead experiment in this reproduction revisits exactly
that comparison.

The kernel here is the real closed-form formula evaluated with numpy over a
synthetic option batch, vectorised as the HPC guides recommend (no Python
loop over options).
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.scaling import LinearScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import option_batch

__all__ = ["black_scholes_price", "BlackscholesWorkload"]

_SQRT2 = math.sqrt(2.0)


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via the error function (no scipy dependency)."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / _SQRT2))


def black_scholes_price(
    spot: np.ndarray,
    strike: np.ndarray,
    rate: np.ndarray,
    volatility: np.ndarray,
    expiry: np.ndarray,
    is_call: np.ndarray,
) -> np.ndarray:
    """Price European options with the Black–Scholes closed form.

    All arguments are broadcastable arrays; returns the option prices.
    """
    spot = np.asarray(spot, dtype=np.float64)
    strike = np.asarray(strike, dtype=np.float64)
    rate = np.asarray(rate, dtype=np.float64)
    volatility = np.asarray(volatility, dtype=np.float64)
    expiry = np.asarray(expiry, dtype=np.float64)
    if np.any(spot <= 0) or np.any(strike <= 0):
        raise ValueError("spot and strike prices must be positive")
    if np.any(volatility <= 0) or np.any(expiry <= 0):
        raise ValueError("volatility and expiry must be positive")
    sqrt_t = np.sqrt(expiry)
    d1 = (np.log(spot / strike) + (rate + 0.5 * volatility**2) * expiry) / (volatility * sqrt_t)
    d2 = d1 - volatility * sqrt_t
    call = spot * _norm_cdf(d1) - strike * np.exp(-rate * expiry) * _norm_cdf(d2)
    put = call - spot + strike * np.exp(-rate * expiry)  # put-call parity
    return np.where(np.asarray(is_call, dtype=bool), call, put)


class BlackscholesWorkload(Workload):
    """Option-pricing workload; one heartbeat per batch of options.

    Parameters
    ----------
    options_per_beat:
        Batch size per heartbeat; the paper uses 25 000 for the Table-2 run
        and 1 (a beat per option) to demonstrate over-instrumentation in the
        overhead study.
    """

    NAME = "blackscholes"
    HEARTBEAT_LOCATION = "Every 25000 options"
    PAPER_HEART_RATE = 561.03
    # Embarrassingly parallel across options.
    DEFAULT_SCALING = LinearScaling(0.97)
    DEFAULT_BEATS = 400

    def __init__(self, *, options_per_beat: int = 25_000, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if options_per_beat <= 0:
            raise ValueError(f"options_per_beat must be positive, got {options_per_beat}")
        self.options_per_beat = int(options_per_beat)
        # A beat covering fewer options costs proportionally less work (the
        # Table-2 rate describes 25 000-option beats).  An explicit
        # target_rate already refers to the configured beat size.
        if not self.explicit_target_rate:
            self._base_work *= self.options_per_beat / 25_000.0

    def execute_beat(self, beat_index: int) -> float:
        """Price one batch of options; returns the mean option price."""
        rng = np.random.default_rng(self.seed * 100_000 + beat_index)
        batch = option_batch(rng, self.options_per_beat)
        prices = black_scholes_price(
            batch["spot"],
            batch["strike"],
            batch["rate"],
            batch["volatility"],
            batch["expiry"],
            batch["is_call"],
        )
        return float(np.mean(prices))
