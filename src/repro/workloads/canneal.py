"""``canneal`` — simulated-annealing netlist placement.

PARSEC's canneal minimises the routing cost of a chip netlist with
cache-aware simulated annealing; elements swap locations and swaps that
lower the total wire length (or pass the Metropolis test) are accepted.  The
paper registers one heartbeat every 1875 moves (Table 2: 1043.76 beat/s).

The kernel is a real annealer over a synthetic netlist: each beat performs a
batch of random swap proposals, evaluates the wire-length delta of each and
applies the accepted ones.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import AmdahlScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import netlist

__all__ = ["NetlistAnnealer", "CannealWorkload"]


class NetlistAnnealer:
    """Simulated annealing over element positions of a random netlist."""

    def __init__(self, elements: int = 512, grid: int = 64, *, seed: int = 0) -> None:
        if elements < 4:
            raise ValueError(f"need at least 4 elements, got {elements}")
        self.rng = np.random.default_rng(seed)
        self.positions, self.nets = netlist(self.rng, elements, grid)
        self.positions = self.positions.astype(np.float64)
        self.temperature = 10.0
        self.cooling = 0.995

    def total_cost(self) -> float:
        """Total Manhattan wire length of the current placement."""
        src = self.positions[:, None, :]
        dst = self.positions[self.nets]
        return float(np.abs(src - dst).sum())

    def _element_cost(self, idx: np.ndarray) -> np.ndarray:
        """Wire length contributed by each element in ``idx``."""
        src = self.positions[idx][:, None, :]
        dst = self.positions[self.nets[idx]]
        return np.abs(src - dst).sum(axis=(1, 2))

    def anneal_moves(self, moves: int) -> tuple[int, float]:
        """Propose ``moves`` random swaps; returns (accepted, cost_delta)."""
        if moves <= 0:
            raise ValueError(f"moves must be positive, got {moves}")
        n = len(self.positions)
        accepted = 0
        total_delta = 0.0
        a_idx = self.rng.integers(0, n, moves)
        b_idx = self.rng.integers(0, n, moves)
        uniforms = self.rng.random(moves)
        for a, b, u in zip(a_idx, b_idx, uniforms):
            if a == b:
                continue
            pair = np.array([a, b])
            before = float(self._element_cost(pair).sum())
            self.positions[[a, b]] = self.positions[[b, a]]
            after = float(self._element_cost(pair).sum())
            delta = after - before
            accept = delta <= 0 or u < np.exp(-delta / max(self.temperature, 1e-9))
            if accept:
                accepted += 1
                total_delta += delta
            else:
                self.positions[[a, b]] = self.positions[[b, a]]  # revert
        self.temperature *= self.cooling
        return accepted, total_delta


class CannealWorkload(Workload):
    """Annealing workload; one heartbeat per batch of proposed moves."""

    NAME = "canneal"
    HEARTBEAT_LOCATION = "Every 1875 moves"
    PAPER_HEART_RATE = 1043.76
    # Swap evaluation parallelises well; the shared placement is the serial part.
    DEFAULT_SCALING = AmdahlScaling(0.12)
    DEFAULT_BEATS = 400

    def __init__(self, *, moves_per_beat: int = 1875, elements: int = 512, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if moves_per_beat <= 0:
            raise ValueError(f"moves_per_beat must be positive, got {moves_per_beat}")
        self.moves_per_beat = int(moves_per_beat)
        self.elements = int(elements)
        self._annealer = NetlistAnnealer(self.elements, seed=self.seed)
        if not self.explicit_target_rate:
            self._base_work *= self.moves_per_beat / 1875.0

    def _reseed_kernel(self) -> None:
        self._annealer = NetlistAnnealer(self.elements, seed=self.seed)

    def execute_beat(self, beat_index: int) -> tuple[int, float]:
        """Run one batch of annealing moves (sub-sampled for wall-clock runs)."""
        moves = min(self.moves_per_beat, 256)
        return self._annealer.anneal_moves(moves)
