"""Workload abstractions for the PARSEC-like suite.

Every workload in this package plays two roles:

1. **Cost model** for the simulated machine (:meth:`Workload.work_per_beat`
   plus a :class:`~repro.sim.scaling.ScalingModel`).  The per-beat cost is
   calibrated so that, on the eight-core simulated reference machine, the
   workload's average heart rate lands close to the value the paper reports
   in Table 2.  Phase structure (e.g. x264's easy middle section in Figure 2)
   and small stochastic variation are expressed through
   :meth:`Workload.phase_multiplier` and a seeded noise model.

2. **Real kernel** (:meth:`Workload.execute_beat`) — an actual numpy
   computation of the same character as the original benchmark (pricing
   options, clustering points, deduplicating a stream, ...).  The wall-clock
   examples and the overhead study run these kernels for real and register
   heartbeats around them, which is exactly how the paper instruments PARSEC:
   "find the key loops over the input data set and insert the call to
   register a heartbeat in this loop".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.heartbeat import Heartbeat
from repro.sim.scaling import LinearScaling, ScalingModel

__all__ = ["Workload", "WorkloadInfo", "REFERENCE_CORES"]

#: Core count of the paper's test platform, used to calibrate per-beat cost.
REFERENCE_CORES = 8


@dataclass(frozen=True, slots=True)
class WorkloadInfo:
    """Static description of a workload (one row of the paper's Table 2)."""

    name: str
    heartbeat_location: str
    paper_heart_rate: float | None


class Workload(abc.ABC):
    """Base class for instrumented workloads.

    Parameters
    ----------
    scaling:
        Parallel-scaling model; defaults to the subclass's
        :attr:`DEFAULT_SCALING`.
    target_rate:
        Average heart rate the workload should achieve on the eight-core
        reference machine; defaults to the paper's Table-2 value
        (:attr:`PAPER_HEART_RATE`).  The per-beat cost is derived from it.
    noise:
        Relative standard deviation of per-beat cost variation (log-normal),
        giving traces the jitter visible in the paper's figures without
        affecting the mean.  ``0`` disables variation.
    seed:
        Seed for the workload's private random generator; every workload is
        deterministic given its seed.
    """

    #: Subclasses override these class attributes.
    NAME: str = "workload"
    HEARTBEAT_LOCATION: str = ""
    PAPER_HEART_RATE: float | None = None
    DEFAULT_SCALING: ScalingModel = LinearScaling(0.9)
    #: Number of beats a "native input" run produces (used by Table 2 runs).
    DEFAULT_BEATS: int = 200

    def __init__(
        self,
        *,
        scaling: ScalingModel | None = None,
        target_rate: float | None = None,
        noise: float = 0.03,
        seed: int = 0,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.name = self.NAME
        self.heartbeat_location = self.HEARTBEAT_LOCATION
        self.scaling = scaling if scaling is not None else self.DEFAULT_SCALING
        #: True when the caller pinned the 8-core rate explicitly; workloads
        #: whose beat granularity is configurable (options per beat, points
        #: per beat, ...) skip their granularity rescaling in that case,
        #: because an explicit rate already describes the configured beat.
        self.explicit_target_rate = target_rate is not None
        rate = target_rate if target_rate is not None else self.PAPER_HEART_RATE
        if rate is None or rate <= 0:
            raise ValueError(
                f"workload {self.name!r} needs a positive target_rate "
                "(no paper rate is defined for it)"
            )
        self.target_rate = float(rate)
        self.noise = float(noise)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        # Cost per beat (single-core seconds) such that the reference machine
        # achieves ``target_rate`` beats/s: rate = speedup(8) / work.
        self._base_work = self.scaling.speedup(REFERENCE_CORES) / self.target_rate
        self._noise_cache: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # Cost model (simulated-machine mode)
    # ------------------------------------------------------------------ #
    def work_per_beat(self, beat_index: int) -> float:
        """Single-reference-core seconds of work behind beat ``beat_index``."""
        return self._base_work * self.phase_multiplier(beat_index) * self._noise_factor(beat_index)

    def phase_multiplier(self, beat_index: int) -> float:
        """Relative cost of beat ``beat_index`` (1.0 = nominal).

        Subclasses with phase behaviour (x264's easy middle section,
        bodytrack's load drop in Figure 5) override this.
        """
        return 1.0

    def tag(self, beat_index: int) -> int:
        """Heartbeat tag for beat ``beat_index`` (defaults to the index)."""
        return beat_index

    @property
    def base_work(self) -> float:
        """Nominal single-core seconds of work per beat."""
        return self._base_work

    def reseed(self, seed: int) -> None:
        """Rewind the workload to a fresh deterministic state under ``seed``.

        Resets the private generator, the per-beat noise cache, and (via
        :meth:`_reseed_kernel`) any mutable kernel state a subclass keeps, so
        two runs reseeded identically produce bit-identical beat costs and
        kernel results regardless of what ran before.  The tuner's evaluation
        harness relies on this for reproducible scoring.
        """
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._noise_cache.clear()
        self._reseed_kernel()

    def _reseed_kernel(self) -> None:
        """Rebuild subclass kernel state derived from :attr:`rng`, if any."""

    def _noise_factor(self, beat_index: int) -> float:
        """Deterministic-per-beat multiplicative jitter with unit mean."""
        if self.noise == 0.0:
            return 1.0
        factor = self._noise_cache.get(beat_index)
        if factor is None:
            # Derive per-beat randomness from the seed and index so the cost
            # of a beat does not depend on query order.
            rng = np.random.default_rng((self.seed + 1) * 1_000_003 + beat_index)
            sigma = self.noise
            factor = float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
            self._noise_cache[beat_index] = factor
        return factor

    # ------------------------------------------------------------------ #
    # Real kernel (wall-clock mode)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def execute_beat(self, beat_index: int) -> Any:
        """Run the real computation behind one heartbeat and return its result."""

    def run_instrumented(
        self,
        heartbeat: Heartbeat,
        beats: int | None = None,
    ) -> list[Any]:
        """Run the real kernel for ``beats`` beats, registering heartbeats.

        This is the paper's instrumentation pattern: one ``HB_heartbeat``
        call in the key loop over the input.  Returns the per-beat kernel
        results (kept small by each workload) so tests can check the kernels
        compute something meaningful.
        """
        n = self.DEFAULT_BEATS if beats is None else int(beats)
        if n < 0:
            raise ValueError(f"beats must be >= 0, got {n}")
        results: list[Any] = []
        for i in range(n):
            results.append(self.execute_beat(i))
            heartbeat.heartbeat(tag=self.tag(i))
        return results

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #
    @classmethod
    def info(cls) -> WorkloadInfo:
        """Static Table-2 row for this workload."""
        return WorkloadInfo(
            name=cls.NAME,
            heartbeat_location=cls.HEARTBEAT_LOCATION,
            paper_heart_rate=cls.PAPER_HEART_RATE,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(target_rate={self.target_rate}, "
            f"scaling={self.scaling!r}, seed={self.seed})"
        )
