"""``x264`` — H.264 video encoding.

PARSEC's x264 encodes a video with the x264 H.264 encoder; the paper
registers one heartbeat per encoded frame.  Three distinct configurations
appear in the evaluation:

* **Table 2 / Figure 2** — the PARSEC native input, average rate 11.32 beat/s
  with clear phases: roughly 12–14 beat/s for the first ~100 frames, 23–29
  beat/s between frames ~100 and ~330, then back to 12–14 beat/s
  (:meth:`X264Workload.figure2`).
* **Figure 7** — an easier input/parameter set that exceeds 40 beat/s on
  eight cores, scheduled externally into a 30–35 beat/s window
  (:meth:`X264Workload.figure7`).
* **Sections 5.2 / 5.4** — the internally adaptive encoder, reproduced by
  :class:`repro.encoder.AdaptiveEncoder` rather than by this workload model.

The cost model uses the phase structure; the real kernel encodes synthetic
frames with :class:`repro.encoder.BlockEncoder` so wall-clock instrumented
runs do genuine encoding work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoder.encoder import BlockEncoder, FrameResult
from repro.encoder.frames import SyntheticVideoSource
from repro.encoder.settings import preset
from repro.sim.scaling import SaturatingScaling
from repro.workloads.base import Workload

__all__ = ["RatePhase", "X264Workload"]


@dataclass(frozen=True, slots=True)
class RatePhase:
    """A contiguous run of frames with a given relative encoding cost."""

    start_beat: int
    #: Cost of a frame in this phase relative to the workload's nominal cost.
    cost_multiplier: float


#: Phase profile matching Figure 2: the middle section of the native input is
#: roughly twice as fast as the opening and closing sections.  Combined with
#: the Figure-2 configuration's nominal 13 beat/s, these multipliers put the
#: opening and closing phases in the paper's 12–14 beat/s band and the middle
#: phase in its 23–29 beat/s band on the eight-core reference machine.
FIGURE2_PHASES = (
    RatePhase(start_beat=0, cost_multiplier=1.0),
    RatePhase(start_beat=100, cost_multiplier=0.5),
    RatePhase(start_beat=330, cost_multiplier=1.0),
)

#: Nominal (hard-phase) rate of the Figure-2 configuration on eight cores.
FIGURE2_NOMINAL_RATE = 13.0


class X264Workload(Workload):
    """Video-encoding workload; one heartbeat per encoded frame.

    Parameters
    ----------
    phases:
        Relative-cost phases; ``None`` gives a flat profile.
    real_preset_level:
        Preset-ladder level used by the real kernel (wall-clock runs only).
    frame_size:
        Frame edge length of the real kernel's synthetic video.
    """

    NAME = "x264"
    HEARTBEAT_LOCATION = "Every frame"
    PAPER_HEART_RATE = 11.32
    # x264 saturates around six cores on the paper's inputs; the per-core
    # efficiency is chosen so a five-core allocation lands inside the
    # Figure-7 target window (30-35 beat/s) as it does in the paper.
    DEFAULT_SCALING = SaturatingScaling(max_speedup=5.5, efficiency=0.82)
    DEFAULT_BEATS = 530

    #: Average rate of the easier Figure-7 input on eight cores ("can easily
    #: maintain an average heart rate of over 40 beats per second").
    FIGURE7_RATE = 42.0

    def __init__(
        self,
        *,
        phases: tuple[RatePhase, ...] | None = None,
        real_preset_level: int = 4,
        frame_size: int = 48,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.phases = tuple(sorted(phases, key=lambda p: p.start_beat)) if phases else ()
        if self.phases and self.phases[0].start_beat != 0:
            raise ValueError("the first phase must start at beat 0")
        self.real_preset_level = int(real_preset_level)
        self.frame_size = int(frame_size)
        self._source: SyntheticVideoSource | None = None
        self._encoder: BlockEncoder | None = None

    # ------------------------------------------------------------------ #
    # Paper configurations
    # ------------------------------------------------------------------ #
    @classmethod
    def figure2(cls, **kwargs: object) -> "X264Workload":
        """Native-input configuration with the Figure-2 phase structure."""
        kwargs.setdefault("phases", FIGURE2_PHASES)
        kwargs.setdefault("target_rate", FIGURE2_NOMINAL_RATE)
        return cls(**kwargs)

    @classmethod
    def figure7(cls, **kwargs: object) -> "X264Workload":
        """Easier configuration used for the Figure-7 scheduler experiment."""
        kwargs.setdefault("target_rate", cls.FIGURE7_RATE)
        kwargs.setdefault("noise", 0.06)
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def phase_multiplier(self, beat_index: int) -> float:
        if not self.phases:
            return 1.0
        multiplier = self.phases[0].cost_multiplier
        for phase in self.phases:
            if beat_index >= phase.start_beat:
                multiplier = phase.cost_multiplier
            else:
                break
        return multiplier

    # ------------------------------------------------------------------ #
    # Real kernel
    # ------------------------------------------------------------------ #
    def _ensure_encoder(self) -> tuple[SyntheticVideoSource, BlockEncoder]:
        if self._source is None or self._encoder is None:
            self._source = SyntheticVideoSource(
                self.frame_size, self.frame_size, seed=self.seed
            )
            self._encoder = BlockEncoder(
                self.frame_size,
                self.frame_size,
                settings=preset(self.real_preset_level),
            )
        return self._source, self._encoder

    def execute_beat(self, beat_index: int) -> FrameResult:
        """Encode one synthetic frame for real; returns its :class:`FrameResult`."""
        source, encoder = self._ensure_encoder()
        frame = source.frame(encoder.frames_encoded)
        return encoder.encode_frame(frame)
