"""``streamcluster`` — online clustering of a point stream.

PARSEC's streamcluster "solves the online clustering problem for a stream of
input points by finding a number of medians and assigning each point to the
closest median".  The paper registers one heartbeat per 200 000 points for
Table 2 (0.02 beat/s) and one per 5 000 points for the external-scheduler
experiment of Figure 6 (just over 0.75 beat/s on eight cores).

The kernel is a real online k-median pass: each beat consumes a block of
streamed points, assigns them to the current medians, opens new medians for
points whose assignment cost exceeds a facility cost (the classic online
facility-location heuristic streamcluster is built around), and recenters.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import AmdahlScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import point_stream

__all__ = ["OnlineKMedian", "StreamclusterWorkload"]


class OnlineKMedian:
    """Streaming facility-location clustering used by the kernel."""

    def __init__(self, dims: int, facility_cost: float = 200.0, max_centers: int = 64) -> None:
        if dims <= 0:
            raise ValueError(f"dims must be positive, got {dims}")
        if facility_cost <= 0:
            raise ValueError(f"facility_cost must be positive, got {facility_cost}")
        self.dims = dims
        self.facility_cost = float(facility_cost)
        self.max_centers = int(max_centers)
        self.centers = np.empty((0, dims), dtype=np.float64)
        self.weights = np.empty(0, dtype=np.float64)
        self.total_cost = 0.0

    def consume(self, points: np.ndarray) -> float:
        """Cluster one block of points; returns the block's assignment cost."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dims:
            raise ValueError(f"points must have shape (n, {self.dims})")
        block_cost = 0.0
        if self.centers.shape[0] == 0:
            self.centers = points[:1].copy()
            self.weights = np.ones(1)
            points = points[1:]
        for chunk in np.array_split(points, max(1, len(points) // 256)):
            if chunk.size == 0:
                continue
            # Distance of every point in the chunk to every current center.
            dists = np.linalg.norm(chunk[:, None, :] - self.centers[None, :, :], axis=2)
            nearest = np.argmin(dists, axis=1)
            nearest_cost = dists[np.arange(len(chunk)), nearest]
            # Open new facilities for points that are too expensive to serve.
            # Candidates are reconsidered one by one against the centers
            # opened earlier in the same chunk, so a burst of far-away points
            # from one new cluster opens a single facility rather than one
            # per point.
            open_mask = np.zeros(len(chunk), dtype=bool)
            for idx in np.nonzero(nearest_cost > self.facility_cost)[0]:
                if self.centers.shape[0] >= self.max_centers:
                    break
                distance = float(
                    np.linalg.norm(self.centers - chunk[idx], axis=1).min()
                )
                if distance > self.facility_cost:
                    self.centers = np.vstack([self.centers, chunk[idx][None, :]])
                    self.weights = np.concatenate([self.weights, np.ones(1)])
                    nearest_cost[idx] = 0.0
                    open_mask[idx] = True
                else:
                    nearest_cost[idx] = distance
            # Recenter served facilities towards their new members (weighted).
            served = ~open_mask
            if np.any(served):
                for center_id in np.unique(nearest[served]):
                    members = chunk[served][nearest[served] == center_id]
                    w = self.weights[center_id]
                    new_w = w + len(members)
                    self.centers[center_id] = (
                        self.centers[center_id] * w + members.sum(axis=0)
                    ) / new_w
                    self.weights[center_id] = new_w
            block_cost += float(nearest_cost.sum())
        self.total_cost += block_cost
        return block_cost

    @property
    def num_centers(self) -> int:
        return int(self.centers.shape[0])


class StreamclusterWorkload(Workload):
    """Online-clustering workload; one heartbeat per block of streamed points.

    Parameters
    ----------
    points_per_beat:
        Stream block size per heartbeat — 200 000 reproduces the Table-2
        configuration, 5 000 the Figure-6 scheduler configuration.
    dims:
        Dimensionality of the streamed points.
    """

    NAME = "streamcluster"
    HEARTBEAT_LOCATION = "Every 200000 points"
    PAPER_HEART_RATE = 0.02
    # Dominated by the parallel distance computations with a small serial
    # facility-opening section; the serial fraction places a four-core
    # allocation in the middle of the paper's Figure-6 target window.
    DEFAULT_SCALING = AmdahlScaling(0.12)
    DEFAULT_BEATS = 60

    #: Heart rate the Figure-6 configuration sustains on eight cores
    #: ("maintains an average heart rate of over 0.75 beats per second").
    FIGURE6_RATE = 0.78

    def __init__(self, *, points_per_beat: int = 200_000, dims: int = 16, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if points_per_beat <= 0:
            raise ValueError(f"points_per_beat must be positive, got {points_per_beat}")
        self.points_per_beat = int(points_per_beat)
        self.dims = int(dims)
        self._clusterer = OnlineKMedian(self.dims)
        # Work scales with the block size relative to the Table-2 block; an
        # explicit target_rate already refers to the configured block size.
        if not self.explicit_target_rate:
            self._base_work *= self.points_per_beat / 200_000.0

    @classmethod
    def figure6(cls, **kwargs: object) -> "StreamclusterWorkload":
        """The configuration used for the Figure-6 scheduler experiment.

        One heartbeat per 5 000 points, just over 0.75 beat/s on eight cores,
        and low per-beat jitter (the kernel's per-block cost is very regular),
        which the narrow 0.50–0.55 beat/s window of the experiment needs.
        """
        kwargs.setdefault("points_per_beat", 5_000)
        kwargs.setdefault("target_rate", cls.FIGURE6_RATE)
        kwargs.setdefault("noise", 0.01)
        return cls(**kwargs)

    def execute_beat(self, beat_index: int) -> float:
        """Cluster one stream block (sub-sampled for wall-clock runs)."""
        rng = np.random.default_rng(self.seed * 100_000 + beat_index)
        # Cap the real kernel's block so instrumented wall-clock runs stay
        # interactive; the cost *model* still reflects the full block size.
        count = min(self.points_per_beat, 4_000)
        block = point_stream(rng, count, self.dims)
        return self._clusterer.consume(block)
