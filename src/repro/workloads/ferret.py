"""``ferret`` — content-based similarity search.

PARSEC's ferret answers content-based image-retrieval queries through a
pipeline of segmentation, feature extraction and indexed similarity search.
The paper registers one heartbeat per query (Table 2: 40.78 beat/s).

The kernel runs a real top-k similarity search per beat: the query feature
vector is compared (cosine similarity) against a normalised in-memory feature
database and the k best entries are ranked.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import LinearScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import feature_database, query_vector

__all__ = ["SimilarityIndex", "FerretWorkload"]


class SimilarityIndex:
    """Brute-force cosine-similarity index over normalised feature vectors."""

    def __init__(self, entries: int = 4096, dims: int = 64, *, seed: int = 0) -> None:
        if entries <= 0 or dims <= 0:
            raise ValueError("entries and dims must be positive")
        rng = np.random.default_rng(seed)
        self.database = feature_database(rng, entries, dims)
        self.dims = dims

    def query(self, vector: np.ndarray, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Return (indices, similarities) of the ``k`` most similar entries."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dims,):
            raise ValueError(f"query vector must have shape ({self.dims},), got {vector.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.database.shape[0])
        similarities = self.database @ vector
        top = np.argpartition(similarities, -k)[-k:]
        order = np.argsort(similarities[top])[::-1]
        ranked = top[order]
        return ranked, similarities[ranked]


class FerretWorkload(Workload):
    """Similarity-search workload; one heartbeat per answered query."""

    NAME = "ferret"
    HEARTBEAT_LOCATION = "Every query"
    PAPER_HEART_RATE = 40.78
    # The pipeline stages parallelise well across queries.
    DEFAULT_SCALING = LinearScaling(0.92)
    DEFAULT_BEATS = 400

    def __init__(self, *, database_entries: int = 4096, dims: int = 64, k: int = 10, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self._index = SimilarityIndex(database_entries, dims, seed=self.seed)

    def execute_beat(self, beat_index: int) -> float:
        """Answer one query; returns the best similarity score."""
        rng = np.random.default_rng(self.seed * 100_000 + beat_index)
        q = query_vector(rng, self._index.dims)
        _, scores = self._index.query(q, self.k)
        return float(scores[0])
