"""Synthetic input generators shared by the workload kernels.

The PARSEC benchmarks ship multi-gigabyte "native" inputs that are not
redistributable here, so every workload generates a statistically similar
synthetic input from a seed.  Generators are deliberately cheap: inputs are
produced lazily, per beat, so the wall-clock instrumented runs spend their
time in the kernels rather than in input construction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "option_batch",
    "point_stream",
    "feature_database",
    "query_vector",
    "data_stream",
    "netlist",
    "particle_cloud",
    "mesh_grid",
    "swaption_parameters",
]


def option_batch(rng: np.random.Generator, count: int) -> dict[str, np.ndarray]:
    """European option parameters (spot, strike, rate, volatility, expiry)."""
    return {
        "spot": rng.uniform(20.0, 120.0, count),
        "strike": rng.uniform(20.0, 120.0, count),
        "rate": rng.uniform(0.01, 0.08, count),
        "volatility": rng.uniform(0.1, 0.6, count),
        "expiry": rng.uniform(0.1, 2.0, count),
        "is_call": rng.integers(0, 2, count).astype(bool),
    }


def point_stream(rng: np.random.Generator, count: int, dims: int, clusters: int = 10) -> np.ndarray:
    """Points drawn from a mixture of Gaussians (streamcluster-style input)."""
    centers = rng.uniform(0.0, 100.0, size=(clusters, dims))
    assignment = rng.integers(0, clusters, size=count)
    return centers[assignment] + rng.normal(0.0, 2.0, size=(count, dims))


def feature_database(rng: np.random.Generator, entries: int, dims: int) -> np.ndarray:
    """L2-normalised feature vectors standing in for ferret's image database."""
    db = rng.normal(0.0, 1.0, size=(entries, dims))
    norms = np.linalg.norm(db, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return db / norms


def query_vector(rng: np.random.Generator, dims: int) -> np.ndarray:
    """A single normalised query feature vector."""
    q = rng.normal(0.0, 1.0, size=dims)
    norm = np.linalg.norm(q)
    return q / norm if norm > 0 else q


def data_stream(rng: np.random.Generator, length: int, repetition: float = 0.5) -> bytes:
    """A byte stream with tunable redundancy (dedup-style input).

    ``repetition`` is the fraction of the stream drawn from a small pool of
    repeated blocks; the rest is incompressible random data.
    """
    if not 0.0 <= repetition <= 1.0:
        raise ValueError(f"repetition must be in [0, 1], got {repetition}")
    block = 512
    pool = [rng.integers(0, 256, block, dtype=np.uint8).tobytes() for _ in range(8)]
    out = bytearray()
    while len(out) < length:
        if rng.random() < repetition:
            out.extend(pool[int(rng.integers(0, len(pool)))])
        else:
            out.extend(rng.integers(0, 256, block, dtype=np.uint8).tobytes())
    return bytes(out[:length])


def netlist(rng: np.random.Generator, elements: int, grid: int) -> tuple[np.ndarray, np.ndarray]:
    """A random netlist placement: element positions and net connectivity.

    Returns ``(positions, nets)`` where ``positions`` is ``(elements, 2)``
    integer grid coordinates and ``nets`` is ``(elements, fanout)`` indices of
    connected elements (canneal-style annealing input).
    """
    positions = rng.integers(0, grid, size=(elements, 2))
    fanout = 4
    nets = rng.integers(0, elements, size=(elements, fanout))
    return positions, nets


def particle_cloud(rng: np.random.Generator, particles: int, box: float = 10.0) -> dict[str, np.ndarray]:
    """Particle positions and velocities for the SPH fluid step."""
    return {
        "position": rng.uniform(0.0, box, size=(particles, 3)),
        "velocity": rng.normal(0.0, 0.1, size=(particles, 3)),
    }


def mesh_grid(rng: np.random.Generator, side: int) -> dict[str, np.ndarray]:
    """A square spring-mass mesh (facesim-style deformable surface)."""
    xs, ys = np.meshgrid(np.arange(side, dtype=np.float64), np.arange(side, dtype=np.float64))
    rest = np.stack([xs.ravel(), ys.ravel(), np.zeros(side * side)], axis=1)
    return {
        "rest": rest,
        "position": rest + rng.normal(0.0, 0.05, rest.shape),
        "velocity": np.zeros_like(rest),
    }


def swaption_parameters(rng: np.random.Generator, count: int) -> dict[str, np.ndarray]:
    """Swaption contract parameters for the Monte-Carlo pricer."""
    return {
        "strike": rng.uniform(0.02, 0.08, count),
        "maturity": rng.uniform(1.0, 10.0, count),
        "tenor": rng.uniform(1.0, 10.0, count),
        "volatility": rng.uniform(0.1, 0.4, count),
        "initial_rate": rng.uniform(0.01, 0.06, count),
    }
