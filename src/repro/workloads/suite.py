"""The PARSEC-like suite registry and Table-2 runner.

The paper instruments the ten PARSEC 1.0 benchmarks that build on its test
platform and reports, for each, where the heartbeat was inserted and the
average heart rate over the native input (Table 2).  :func:`run_table2`
reproduces that table on the simulated eight-core reference machine; each row
carries both the paper's value and the measured value so the regeneration
harness can print them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.workloads.base import REFERENCE_CORES, Workload
from repro.workloads.blackscholes import BlackscholesWorkload
from repro.workloads.bodytrack import BodytrackWorkload
from repro.workloads.canneal import CannealWorkload
from repro.workloads.dedup import DedupWorkload
from repro.workloads.facesim import FacesimWorkload
from repro.workloads.ferret import FerretWorkload
from repro.workloads.fluidanimate import FluidanimateWorkload
from repro.workloads.streamcluster import StreamclusterWorkload
from repro.workloads.swaptions import SwaptionsWorkload
from repro.workloads.x264 import X264Workload

__all__ = ["WORKLOAD_CLASSES", "Table2Row", "create_workload", "run_table2", "workload_names"]


#: All Table-2 workloads, keyed by benchmark name, in the paper's order.
WORKLOAD_CLASSES: dict[str, type[Workload]] = {
    "blackscholes": BlackscholesWorkload,
    "bodytrack": BodytrackWorkload,
    "canneal": CannealWorkload,
    "dedup": DedupWorkload,
    "facesim": FacesimWorkload,
    "ferret": FerretWorkload,
    "fluidanimate": FluidanimateWorkload,
    "streamcluster": StreamclusterWorkload,
    "swaptions": SwaptionsWorkload,
    "x264": X264Workload,
}


def workload_names() -> list[str]:
    """Benchmark names in Table-2 order."""
    return list(WORKLOAD_CLASSES)


def create_workload(name: str, **kwargs: object) -> Workload:
    """Instantiate a suite workload by benchmark name."""
    try:
        cls = WORKLOAD_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOAD_CLASSES)}"
        ) from None
    return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One row of the reproduced Table 2."""

    benchmark: str
    heartbeat_location: str
    paper_heart_rate: float
    measured_heart_rate: float
    beats: int

    @property
    def relative_error(self) -> float:
        """|measured - paper| / paper."""
        if self.paper_heart_rate == 0:
            return 0.0
        return abs(self.measured_heart_rate - self.paper_heart_rate) / self.paper_heart_rate


def run_table2(
    *,
    cores: int = REFERENCE_CORES,
    beats_per_workload: int | None = None,
    seed: int = 0,
    names: Iterable[str] | None = None,
    workload_factory: Callable[[str], Workload] | None = None,
) -> list[Table2Row]:
    """Run every suite workload on the simulated machine and tabulate rates.

    Parameters
    ----------
    cores:
        Cores allocated to each workload (the paper uses all eight).
    beats_per_workload:
        Beats simulated per workload; ``None`` uses each workload's
        ``DEFAULT_BEATS``.
    seed:
        Seed forwarded to every workload.
    names:
        Subset of benchmarks to run (defaults to the full suite).
    workload_factory:
        Optional override used by tests to substitute configured workloads.
    """
    rows: list[Table2Row] = []
    for name in names if names is not None else workload_names():
        workload = (
            workload_factory(name)
            if workload_factory is not None
            else create_workload(name, seed=seed)
        )
        clock = SimulatedClock()
        machine = SimulatedMachine(cores)
        heartbeat = Heartbeat(window=20, clock=clock, history=8192)
        process = SimulatedProcess(workload, heartbeat, machine, cores=cores)
        engine = ExecutionEngine(clock)
        beats = beats_per_workload if beats_per_workload is not None else workload.DEFAULT_BEATS
        engine.run(process, beats)
        rows.append(
            Table2Row(
                benchmark=name,
                heartbeat_location=workload.heartbeat_location,
                paper_heart_rate=float(workload.PAPER_HEART_RATE or 0.0),
                measured_heart_rate=heartbeat.global_heart_rate(),
                beats=beats,
            )
        )
    return rows
