"""``swaptions`` — Monte-Carlo swaption pricing.

PARSEC's swaptions prices a portfolio of swaptions with Monte-Carlo
simulation of the Heath–Jarrow–Morton framework.  The paper registers one
heartbeat per swaption (Table 2: "Every 'swaption'", 2.27 beat/s).

The kernel here prices one payer swaption per beat by simulating short-rate
paths under a one-factor Hull–White-style model and discounting the swap
payoff — a genuinely Monte-Carlo workload with the same beat granularity.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scaling import LinearScaling
from repro.workloads.base import Workload
from repro.workloads.inputs import swaption_parameters

__all__ = ["price_swaption", "SwaptionsWorkload"]


def price_swaption(
    strike: float,
    maturity: float,
    tenor: float,
    volatility: float,
    initial_rate: float,
    *,
    paths: int = 2048,
    steps: int = 32,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo price of a payer swaption under a mean-reverting short rate.

    The short rate follows ``dr = a (b - r) dt + sigma dW`` (Vasicek-style);
    at option maturity the payoff is the positive part of the difference
    between the prevailing swap rate and the strike, annuity-weighted over the
    swap tenor.  Accuracy is secondary to being a real Monte-Carlo kernel
    with a configurable path count (the knob that makes the workload heavy).
    """
    if paths <= 0 or steps <= 0:
        raise ValueError("paths and steps must be positive")
    if maturity <= 0 or tenor <= 0:
        raise ValueError("maturity and tenor must be positive")
    # A fixed default seed keeps bare calls reproducible; pass an explicit
    # generator for independent pricing runs.
    rng = rng if rng is not None else np.random.default_rng(0)
    a, b, sigma = 0.1, initial_rate, volatility * 0.05
    dt = maturity / steps
    rates = np.full(paths, initial_rate, dtype=np.float64)
    discount = np.zeros(paths, dtype=np.float64)
    for _ in range(steps):
        shock = rng.normal(0.0, 1.0, paths)
        rates = rates + a * (b - rates) * dt + sigma * np.sqrt(dt) * shock
        discount += rates * dt
    # Swap rate proxy at maturity: the prevailing short rate; annuity ~ tenor.
    payoff = np.maximum(rates - strike, 0.0) * tenor
    return float(np.mean(np.exp(-discount) * payoff))


class SwaptionsWorkload(Workload):
    """Swaption-pricing workload; one heartbeat per priced swaption."""

    NAME = "swaptions"
    HEARTBEAT_LOCATION = "Every \"swaption\""
    PAPER_HEART_RATE = 2.27
    DEFAULT_SCALING = LinearScaling(0.95)
    DEFAULT_BEATS = 128

    def __init__(self, *, paths: int = 2048, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if paths <= 0:
            raise ValueError(f"paths must be positive, got {paths}")
        self.paths = int(paths)

    def execute_beat(self, beat_index: int) -> float:
        """Price one swaption; returns its Monte-Carlo price."""
        rng = np.random.default_rng(self.seed * 100_000 + beat_index)
        params = swaption_parameters(rng, 1)
        return price_swaption(
            float(params["strike"][0]),
            float(params["maturity"][0]),
            float(params["tenor"][0]),
            float(params["volatility"][0]),
            float(params["initial_rate"][0]),
            paths=self.paths,
            rng=rng,
        )
