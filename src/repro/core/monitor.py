"""External observer handle.

:class:`HeartbeatMonitor` is the read side of the paper's Figure 1(b): an
external service (OS, scheduler, cloud manager, system-administration tool)
that observes a Heartbeat-enabled application's progress and goals without
participating in its execution.

A monitor can observe:

* a :class:`~repro.core.heartbeat.Heartbeat` object in the same process
  (used by the simulated-machine experiments and the external scheduler);
* a heartbeat log file written by a :class:`~repro.core.backends.FileBackend`
  in any process;
* a shared-memory segment written by a
  :class:`~repro.core.backends.SharedMemoryBackend` in any process on the
  same host.

All three attachment modes expose the same query surface: windowed heart
rate, target range, history, liveness (time since the last beat) and simple
health classification, which is what the fault-tolerance and cloud use cases
in the paper's Sections 2.3, 2.6 and 5.4 need.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.clock import Clock, WallClock
from repro.core.backends.base import BackendSnapshot, DeltaSnapshot, SnapshotCursor
from repro.core.backends.file import HEADER_WIDTH, read_heartbeat_log, tail_heartbeat_log
from repro.core.buffer import circular_batch_slices
from repro.core.errors import MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.rate import windowed_rate
from repro.core.record import RECORD_DTYPE, HeartbeatRecord, array_to_records
from repro.core.window import resolve_window

__all__ = [
    "HeartbeatMonitor",
    "HealthStatus",
    "MonitorReading",
    "StreamDeltaState",
    "classify",
    "reading_from_snapshot",
]

#: Type of a cursored delta provider (see :meth:`Backend.snapshot_since`).
DeltaSource = Callable[[SnapshotCursor | None], tuple[DeltaSnapshot, SnapshotCursor]]


class HealthStatus(Enum):
    """Coarse application-health classification derived from heartbeats."""

    #: No beats observed yet (application starting, or no progress at all).
    UNKNOWN = "unknown"
    #: Beats are arriving and the rate is inside the published target range.
    HEALTHY = "healthy"
    #: Beats are arriving but the rate is below the published minimum.
    SLOW = "slow"
    #: Beats are arriving but the rate is above the published maximum.
    FAST = "fast"
    #: No beat has arrived for longer than the liveness timeout — the
    #: application may have hung or crashed (paper Section 2.3/2.6).
    STALLED = "stalled"


@dataclass(frozen=True, slots=True)
class MonitorReading:
    """One observation taken by :meth:`HeartbeatMonitor.read`."""

    rate: float
    total_beats: int
    target_min: float
    target_max: float
    last_timestamp: float | None
    age: float | None
    status: HealthStatus

    @property
    def below_target(self) -> bool:
        return self.status is HealthStatus.SLOW

    @property
    def above_target(self) -> bool:
        return self.status is HealthStatus.FAST

    @property
    def in_target(self) -> bool:
        return self.status is HealthStatus.HEALTHY


def reading_from_snapshot(
    snap: BackendSnapshot,
    *,
    now: float,
    window: int = 0,
    liveness_timeout: float | None = None,
) -> MonitorReading:
    """Classify one backend snapshot into a :class:`MonitorReading`.

    This is the single interpretation of a heartbeat stream's state shared by
    the per-stream :class:`HeartbeatMonitor` and the fleet-level
    :class:`repro.core.aggregator.HeartbeatAggregator`, so a stream is
    "slow" or "stalled" by exactly the same rule no matter which observer is
    asking.  ``now`` is the observer's current time in the producer's time
    base.
    """
    requested = int(window)
    default_window = snap.default_window if snap.default_window > 0 else max(requested, 1)
    effective = resolve_window(requested, default_window, snap.retained)
    timestamps = snap.records["timestamp"]
    rate = windowed_rate(timestamps[timestamps.shape[0] - effective :]) if effective >= 2 else 0.0
    last_ts: float | None = float(timestamps[-1]) if timestamps.shape[0] else None
    age = (now - last_ts) if last_ts is not None else None
    status = _classify_snapshot(rate, snap, age, liveness_timeout)
    return MonitorReading(
        rate=rate,
        total_beats=snap.total_beats,
        target_min=snap.target_min,
        target_max=snap.target_max,
        last_timestamp=last_ts,
        age=age,
        status=status,
    )


def classify(
    rate: float,
    retained: int,
    target_min: float,
    target_max: float,
    age: float | None,
    liveness_timeout: float | None,
) -> HealthStatus:
    """The single scalar health-classification rule.

    :func:`reading_from_snapshot` and the incremental delta consumers both
    reduce to this function; the aggregator's vectorized classification is
    its numpy transliteration (and is tested for equivalence against it).
    """
    if retained == 0:
        return HealthStatus.UNKNOWN
    if liveness_timeout is not None and age is not None and age > liveness_timeout:
        return HealthStatus.STALLED
    if target_min <= 0.0 and target_max <= 0.0:
        # No published goal: any progress is healthy.
        return HealthStatus.HEALTHY
    if rate < target_min:
        return HealthStatus.SLOW
    if target_max > 0.0 and rate > target_max:
        return HealthStatus.FAST
    return HealthStatus.HEALTHY


def _classify_snapshot(
    rate: float,
    snap: BackendSnapshot,
    age: float | None,
    liveness_timeout: float | None,
) -> HealthStatus:
    return classify(
        rate, snap.retained, snap.target_min, snap.target_max, age, liveness_timeout
    )


class StreamDeltaState:
    """Rolling per-stream observation state fed by :class:`DeltaSnapshot`\\ s.

    Replaces the "copy the retained history, recompute the windowed rate
    from scratch" read with O(new beats) bookkeeping: a small ring of the
    last ``default_window`` beat timestamps is updated from each delta's
    records, and the windowed rate falls out of the ring's first/last
    entries — the same arithmetic :func:`repro.core.rate.windowed_rate`
    applies to a full timestamp copy.

    Shared by the incremental :meth:`HeartbeatMonitor.read` and every stream
    of a :class:`repro.core.aggregator.HeartbeatAggregator`.
    """

    __slots__ = (
        "requested", "cursor", "version", "ring", "seen", "dw",
        "rate", "total", "retained", "tmin", "tmax", "last_ts",
    )

    def __init__(self, requested: int) -> None:
        #: Window requested by the observer (0: the producer's default).
        self.requested = int(requested)
        self.cursor: SnapshotCursor | None = None
        self.version: object | None = None
        self.ring = np.zeros(max(self.requested, 2), dtype=np.float64)
        self.seen = 0  # timestamps ever written into the ring
        self.dw = max(self.requested, 1)  # effective default window
        self.rate = 0.0
        self.total = 0
        self.retained = 0
        self.tmin = 0.0
        self.tmax = 0.0
        self.last_ts = math.nan

    def apply(self, delta: DeltaSnapshot, cursor: SnapshotCursor) -> bool:
        """Fold one delta into the cached rolling state.

        Returns True when the ring covers every timestamp the effective
        window can ask for.  False means the rate would be computed over too
        few beats — the producer grew its default window past what the ring
        retained — and the caller must re-read with a fresh cursor (a full
        resync refills the ring from the backend's retained history).
        """
        self.cursor = cursor
        self.total = delta.total_beats
        self.retained = delta.retained
        self.tmin = delta.target_min
        self.tmax = delta.target_max
        dw = delta.default_window if delta.default_window > 0 else max(self.requested, 1)
        if delta.resync:
            self.seen = 0
        if dw != self.dw or dw > self.ring.shape[0]:
            self._resize(max(dw, 2))
        self.dw = dw
        timestamps = delta.records["timestamp"]
        k = int(timestamps.shape[0])
        cap = self.ring.shape[0]
        if k:
            for destination, source in circular_batch_slices(self.seen, cap, k):
                self.ring[destination] = timestamps[source]
            self.seen += k
            self.last_ts = float(self.ring[(self.seen - 1) % cap])
        elif self.seen == 0:
            self.last_ts = math.nan
        self.rate = self._rate_for(self.requested)
        return min(self.seen, cap) >= min(self.retained, self.dw)

    def consume(self, delta_source: DeltaSource) -> None:
        """Read and fold the next delta, resyncing in full when needed.

        The one consume protocol shared by the monitor and the aggregator:
        when :meth:`apply` reports the ring cannot cover the effective
        window (the producer grew its default window past what the ring
        retained), re-read with a fresh cursor so a full resync refills the
        ring from the backend's retained history.
        """
        delta, cursor = delta_source(self.cursor)
        if not self.apply(delta, cursor):
            delta, cursor = delta_source(None)
            self.apply(delta, cursor)

    def reading(self, now: float, liveness_timeout: float | None) -> MonitorReading:
        """Classify the cached state exactly like :func:`reading_from_snapshot`."""
        no_beats = math.isnan(self.last_ts)
        age = None if no_beats else now - self.last_ts
        return MonitorReading(
            rate=self.rate,
            total_beats=self.total,
            target_min=self.tmin,
            target_max=self.tmax,
            last_timestamp=None if no_beats else self.last_ts,
            age=age,
            status=classify(
                self.rate, self.retained, self.tmin, self.tmax, age, liveness_timeout
            ),
        )

    def _rate_for(self, requested: int) -> float:
        effective = resolve_window(requested, self.dw, self.retained)
        entries = min(self.seen, self.ring.shape[0])
        if effective > entries:  # pragma: no cover - defensive; ring covers dw
            effective = entries
        if effective < 2:
            return 0.0
        cap = self.ring.shape[0]
        last = float(self.ring[(self.seen - 1) % cap])
        first = float(self.ring[(self.seen - effective) % cap])
        span = last - first
        if span < 0:
            raise ValueError("timestamps are not sorted in non-decreasing order")
        if span == 0.0:
            return 0.0
        return (effective - 1) / span

    def _resize(self, cap: int) -> None:
        """Grow (or shrink) the ring, preserving the newest timestamps."""
        entries = min(self.seen, self.ring.shape[0])
        if entries:
            end = self.seen % self.ring.shape[0]
            if self.seen <= self.ring.shape[0]:
                ordered = self.ring[:entries].copy()
            elif end == 0:
                ordered = self.ring.copy()
            else:
                ordered = np.concatenate((self.ring[end:], self.ring[:end]))
        else:
            ordered = self.ring[:0]
        keep = min(int(ordered.shape[0]), cap)
        ring = np.zeros(cap, dtype=np.float64)
        ring[:keep] = ordered[ordered.shape[0] - keep :]
        self.ring = ring
        self.seen = keep


class HeartbeatMonitor:
    """Read-only observer of one heartbeat stream.

    Construct via one of the ``attach_*`` class methods (or pass a snapshot
    provider directly).  Each call to :meth:`read` re-polls the source, so a
    monitor held by a scheduler naturally tracks the application over time.

    Parameters
    ----------
    source:
        Callable returning a fresh :class:`BackendSnapshot`.
    clock:
        Clock used to compute the age of the last beat for liveness checks;
        it must be the same time base the producer stamps beats with
        (simulated experiments pass the shared simulated clock).
    window:
        Rate window used by :meth:`read`; ``0`` uses the producer's published
        default window.
    liveness_timeout:
        Seconds without a beat after which the application is classified
        :attr:`HealthStatus.STALLED`.  ``None`` disables the check.
    delta:
        Optional cursored delta provider (``Backend.snapshot_since`` or an
        equivalent).  When present, :meth:`read` polls incrementally — cost
        proportional to the beats produced since the previous read instead
        of the whole retained history.  The ``attach_*`` constructors wire
        this automatically.
    probe:
        Optional cheap change token (``Backend.version``); two equal values
        let :meth:`read` skip the delta read entirely on an idle stream.
    """

    def __init__(
        self,
        source: Callable[[], BackendSnapshot],
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
        close: Callable[[], None] | None = None,
        delta: DeltaSource | None = None,
        probe: Callable[[], object | None] | None = None,
    ) -> None:
        self._source = source
        self._clock = clock if clock is not None else WallClock()
        self._window = int(window)
        self._liveness_timeout = liveness_timeout
        self._close = close
        self._delta = delta
        self._probe = probe
        self._state: StreamDeltaState | None = None

    # ------------------------------------------------------------------ #
    # Attachment constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def for_source(
        cls,
        source: object,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
        own: bool = False,
    ) -> "HeartbeatMonitor":
        """Observe any :class:`~repro.core.stream.StreamSource`-shaped object.

        Capabilities (``snapshot_since`` deltas, ``version`` probes, a
        ``close`` hook) are discovered with
        :func:`repro.core.stream.capabilities_of`, so a backend, a reader, a
        collector per-stream view, a ``Heartbeat`` or a bare snapshot
        callable all attach through the same door and get every fast path
        they support.  ``own=True`` makes :meth:`close` release the source.
        """
        from repro.core.stream import capabilities_of

        caps = capabilities_of(source)
        return cls(
            caps.snapshot,
            clock=clock,
            window=window,
            liveness_timeout=liveness_timeout,
            close=caps.close if own else None,
            delta=caps.delta,
            probe=caps.probe,
        )

    @classmethod
    def attach(
        cls,
        heartbeat: Heartbeat,
        *,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe a heartbeat object living in this process."""
        return cls.for_source(
            heartbeat,
            clock=heartbeat.clock,
            window=window,
            liveness_timeout=liveness_timeout,
        )

    @classmethod
    def attach_endpoint(
        cls,
        endpoint: object,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe the stream named by an endpoint URL (``file://``/``shm://``).

        The monitor owns the attachment: :meth:`close` detaches it.  See
        :mod:`repro.endpoints` for the URL scheme; ``mem://`` and ``tcp://``
        endpoints are observed through
        :class:`~repro.session.TelemetrySession` instead.
        """
        from repro.endpoints import open_source

        return cls.for_source(
            open_source(endpoint),  # type: ignore[arg-type]
            clock=clock,
            window=window,
            liveness_timeout=liveness_timeout,
            own=True,
        )

    @classmethod
    def attach_file(
        cls,
        path: str | os.PathLike[str],
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe a heartbeat log file written by a :class:`FileBackend`.

        Equivalent to :meth:`attach_endpoint` with a ``file://`` URL.
        """
        from repro.endpoints import FileEndpoint

        return cls.attach_endpoint(
            FileEndpoint(path=os.fspath(path)),
            clock=clock,
            window=window,
            liveness_timeout=liveness_timeout,
        )

    @classmethod
    def attach_shared_memory(
        cls,
        name: str,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe a shared-memory segment written by another process.

        Equivalent to :meth:`attach_endpoint` with a ``shm://`` URL.
        """
        from repro.endpoints import ShmEndpoint

        return cls.attach_endpoint(
            ShmEndpoint(name=name),
            clock=clock,
            window=window,
            liveness_timeout=liveness_timeout,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def read(self, window: int | None = None) -> MonitorReading:
        """Poll the source and classify the application's current health.

        Sources attached with delta support are read incrementally: only the
        beats produced since the previous ``read`` are fetched and folded
        into cached rolling-window state, so a steady poll costs O(new
        beats) instead of O(history).  A ``window`` override different from
        the monitor's configured window falls back to the full-snapshot
        path, as does any source without delta support.
        """
        requested = self._window if window is None else int(window)
        if self._delta is not None and requested == self._window:
            return self._read_incremental()
        return reading_from_snapshot(
            self._source(),
            now=self._clock.now(),
            window=requested,
            liveness_timeout=self._liveness_timeout,
        )

    def _read_incremental(self) -> MonitorReading:
        state = self._state
        if state is None:
            state = self._state = StreamDeltaState(self._window)
        version = self._probe() if self._probe is not None else None
        # Probe *before* the read: a beat landing in between is consumed now
        # and read again next time — never the other way around.
        if state.cursor is None or version is None or version != state.version:
            state.consume(self._delta)
            state.version = version
        return state.reading(self._clock.now(), self._liveness_timeout)

    @property
    def snapshot_source(self) -> Callable[[], BackendSnapshot]:
        """The snapshot provider this monitor polls.

        Exposed so a :class:`repro.core.aggregator.HeartbeatAggregator` can
        adopt an existing monitor attachment as one stream of a fleet.
        """
        return self._source

    @property
    def delta_source(self) -> DeltaSource | None:
        """The cursored delta provider, when the attachment supports one."""
        return self._delta

    @property
    def probe_source(self) -> Callable[[], object | None] | None:
        """The cheap change-token provider, when the attachment supports one."""
        return self._probe

    def current_rate(self, window: int | None = None) -> float:
        """Convenience: the windowed rate only."""
        return self.read(window).rate

    def target_range(self) -> tuple[float, float]:
        """The application's published target heart-rate range."""
        snap = self._source()
        return snap.target_min, snap.target_max

    def get_history(self, n: int | None = None) -> list[HeartbeatRecord]:
        """The last ``n`` observed heartbeat records."""
        snap = self._source()
        records = snap.records
        if n is not None and n < records.shape[0]:
            records = records[records.shape[0] - n :]
        return array_to_records(records)

    def history_array(self, n: int | None = None) -> np.ndarray:
        snap = self._source()
        records = snap.records
        if n is not None and n < records.shape[0]:
            records = records[records.shape[0] - n :]
        if records.dtype != RECORD_DTYPE:  # pragma: no cover - defensive
            records = records.astype(RECORD_DTYPE)
        return records

    def is_alive(self, timeout: float) -> bool:
        """True when a beat has been observed within the last ``timeout`` seconds."""
        snap = self._source()
        if snap.retained == 0:
            return False
        age = self._clock.now() - float(snap.records["timestamp"][-1])
        return age <= timeout

    def close(self) -> None:
        """Detach from the source (needed for shared-memory attachments)."""
        if self._close is not None:
            self._close()

    def __enter__(self) -> "HeartbeatMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def file_observer_sources(
    path: str | os.PathLike[str],
) -> tuple[Callable[[], BackendSnapshot], DeltaSource, Callable[[], object | None]]:
    """Build the (snapshot, delta, probe) triple for observing a log file.

    Shared by :meth:`HeartbeatMonitor.attach_file` and
    :meth:`repro.core.aggregator.HeartbeatAggregator.attach_file`.  The
    probe fingerprint is ``(size, inode, mtime, header bytes)`` — appends
    grow the size, rotation changes the inode, and reading the fixed-width
    header directly (rather than trusting mtime alone, whose granularity is
    filesystem-dependent) catches in-place target/window rewrites that
    change nothing else; mtime stays in the tuple as a second line of
    defense against a same-path producer restart that lands on the exact
    same size and header.  It answers ``None`` ("cannot tell, poll me")
    when the read fails so the delta read reports the real error.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise MonitorAttachError(f"heartbeat log {path!r} does not exist")

    def _snapshot() -> BackendSnapshot:
        default_window, tmin, tmax, records = read_heartbeat_log(path)
        return BackendSnapshot(
            records=records,
            total_beats=int(records.shape[0]),
            target_min=tmin,
            target_max=tmax,
            default_window=default_window,
        )

    def _delta(cursor: SnapshotCursor | None) -> tuple[DeltaSnapshot, SnapshotCursor]:
        return tail_heartbeat_log(path, cursor)

    def _probe() -> tuple[int, int, int, bytes] | None:
        try:
            with open(path, "rb") as fh:
                header = fh.read(HEADER_WIDTH)
                stat = os.fstat(fh.fileno())
        except OSError:
            return None
        return (stat.st_size, stat.st_ino, stat.st_mtime_ns, header)

    return _snapshot, _delta, _probe

