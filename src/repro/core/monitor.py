"""External observer handle.

:class:`HeartbeatMonitor` is the read side of the paper's Figure 1(b): an
external service (OS, scheduler, cloud manager, system-administration tool)
that observes a Heartbeat-enabled application's progress and goals without
participating in its execution.

A monitor can observe:

* a :class:`~repro.core.heartbeat.Heartbeat` object in the same process
  (used by the simulated-machine experiments and the external scheduler);
* a heartbeat log file written by a :class:`~repro.core.backends.FileBackend`
  in any process;
* a shared-memory segment written by a
  :class:`~repro.core.backends.SharedMemoryBackend` in any process on the
  same host.

All three attachment modes expose the same query surface: windowed heart
rate, target range, history, liveness (time since the last beat) and simple
health classification, which is what the fault-tolerance and cloud use cases
in the paper's Sections 2.3, 2.6 and 5.4 need.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.clock import Clock, WallClock
from repro.core.backends.base import BackendSnapshot
from repro.core.backends.file import read_heartbeat_log
from repro.core.backends.shared_memory import SharedMemoryReader
from repro.core.errors import MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.rate import windowed_rate
from repro.core.record import RECORD_DTYPE, HeartbeatRecord, array_to_records
from repro.core.window import resolve_window

__all__ = ["HeartbeatMonitor", "HealthStatus", "MonitorReading", "reading_from_snapshot"]


class HealthStatus(Enum):
    """Coarse application-health classification derived from heartbeats."""

    #: No beats observed yet (application starting, or no progress at all).
    UNKNOWN = "unknown"
    #: Beats are arriving and the rate is inside the published target range.
    HEALTHY = "healthy"
    #: Beats are arriving but the rate is below the published minimum.
    SLOW = "slow"
    #: Beats are arriving but the rate is above the published maximum.
    FAST = "fast"
    #: No beat has arrived for longer than the liveness timeout — the
    #: application may have hung or crashed (paper Section 2.3/2.6).
    STALLED = "stalled"


@dataclass(frozen=True, slots=True)
class MonitorReading:
    """One observation taken by :meth:`HeartbeatMonitor.read`."""

    rate: float
    total_beats: int
    target_min: float
    target_max: float
    last_timestamp: float | None
    age: float | None
    status: HealthStatus

    @property
    def below_target(self) -> bool:
        return self.status is HealthStatus.SLOW

    @property
    def above_target(self) -> bool:
        return self.status is HealthStatus.FAST

    @property
    def in_target(self) -> bool:
        return self.status is HealthStatus.HEALTHY


def reading_from_snapshot(
    snap: BackendSnapshot,
    *,
    now: float,
    window: int = 0,
    liveness_timeout: float | None = None,
) -> MonitorReading:
    """Classify one backend snapshot into a :class:`MonitorReading`.

    This is the single interpretation of a heartbeat stream's state shared by
    the per-stream :class:`HeartbeatMonitor` and the fleet-level
    :class:`repro.core.aggregator.HeartbeatAggregator`, so a stream is
    "slow" or "stalled" by exactly the same rule no matter which observer is
    asking.  ``now`` is the observer's current time in the producer's time
    base.
    """
    requested = int(window)
    default_window = snap.default_window if snap.default_window > 0 else max(requested, 1)
    effective = resolve_window(requested, default_window, snap.retained)
    timestamps = snap.records["timestamp"]
    rate = windowed_rate(timestamps[timestamps.shape[0] - effective :]) if effective >= 2 else 0.0
    last_ts: float | None = float(timestamps[-1]) if timestamps.shape[0] else None
    age = (now - last_ts) if last_ts is not None else None
    status = _classify_snapshot(rate, snap, age, liveness_timeout)
    return MonitorReading(
        rate=rate,
        total_beats=snap.total_beats,
        target_min=snap.target_min,
        target_max=snap.target_max,
        last_timestamp=last_ts,
        age=age,
        status=status,
    )


def _classify_snapshot(
    rate: float,
    snap: BackendSnapshot,
    age: float | None,
    liveness_timeout: float | None,
) -> HealthStatus:
    if snap.retained == 0:
        return HealthStatus.UNKNOWN
    if liveness_timeout is not None and age is not None and age > liveness_timeout:
        return HealthStatus.STALLED
    if snap.target_min <= 0.0 and snap.target_max <= 0.0:
        # No published goal: any progress is healthy.
        return HealthStatus.HEALTHY
    if rate < snap.target_min:
        return HealthStatus.SLOW
    if snap.target_max > 0.0 and rate > snap.target_max:
        return HealthStatus.FAST
    return HealthStatus.HEALTHY


class HeartbeatMonitor:
    """Read-only observer of one heartbeat stream.

    Construct via one of the ``attach_*`` class methods (or pass a snapshot
    provider directly).  Each call to :meth:`read` re-polls the source, so a
    monitor held by a scheduler naturally tracks the application over time.

    Parameters
    ----------
    source:
        Callable returning a fresh :class:`BackendSnapshot`.
    clock:
        Clock used to compute the age of the last beat for liveness checks;
        it must be the same time base the producer stamps beats with
        (simulated experiments pass the shared simulated clock).
    window:
        Rate window used by :meth:`read`; ``0`` uses the producer's published
        default window.
    liveness_timeout:
        Seconds without a beat after which the application is classified
        :attr:`HealthStatus.STALLED`.  ``None`` disables the check.
    """

    def __init__(
        self,
        source: Callable[[], BackendSnapshot],
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
        close: Callable[[], None] | None = None,
    ) -> None:
        self._source = source
        self._clock = clock if clock is not None else WallClock()
        self._window = int(window)
        self._liveness_timeout = liveness_timeout
        self._close = close

    # ------------------------------------------------------------------ #
    # Attachment constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def attach(
        cls,
        heartbeat: Heartbeat,
        *,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe a heartbeat object living in this process."""
        return cls(
            heartbeat.backend.snapshot,
            clock=heartbeat.clock,
            window=window,
            liveness_timeout=liveness_timeout,
        )

    @classmethod
    def attach_file(
        cls,
        path: str | os.PathLike[str],
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe a heartbeat log file written by a :class:`FileBackend`."""
        path = os.fspath(path)
        if not os.path.exists(path):
            raise MonitorAttachError(f"heartbeat log {path!r} does not exist")

        def _snapshot() -> BackendSnapshot:
            default_window, tmin, tmax, records = read_heartbeat_log(path)
            return BackendSnapshot(
                records=records,
                total_beats=int(records.shape[0]),
                target_min=tmin,
                target_max=tmax,
                default_window=default_window,
            )

        return cls(_snapshot, clock=clock, window=window, liveness_timeout=liveness_timeout)

    @classmethod
    def attach_shared_memory(
        cls,
        name: str,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
    ) -> "HeartbeatMonitor":
        """Observe a shared-memory segment written by another process."""
        reader = SharedMemoryReader(name)
        return cls(
            reader.snapshot,
            clock=clock,
            window=window,
            liveness_timeout=liveness_timeout,
            close=reader.close,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def read(self, window: int | None = None) -> MonitorReading:
        """Poll the source and classify the application's current health."""
        return reading_from_snapshot(
            self._source(),
            now=self._clock.now(),
            window=self._window if window is None else int(window),
            liveness_timeout=self._liveness_timeout,
        )

    @property
    def snapshot_source(self) -> Callable[[], BackendSnapshot]:
        """The snapshot provider this monitor polls.

        Exposed so a :class:`repro.core.aggregator.HeartbeatAggregator` can
        adopt an existing monitor attachment as one stream of a fleet.
        """
        return self._source

    def current_rate(self, window: int | None = None) -> float:
        """Convenience: the windowed rate only."""
        return self.read(window).rate

    def target_range(self) -> tuple[float, float]:
        """The application's published target heart-rate range."""
        snap = self._source()
        return snap.target_min, snap.target_max

    def get_history(self, n: int | None = None) -> list[HeartbeatRecord]:
        """The last ``n`` observed heartbeat records."""
        snap = self._source()
        records = snap.records
        if n is not None and n < records.shape[0]:
            records = records[records.shape[0] - n :]
        return array_to_records(records)

    def history_array(self, n: int | None = None) -> np.ndarray:
        snap = self._source()
        records = snap.records
        if n is not None and n < records.shape[0]:
            records = records[records.shape[0] - n :]
        if records.dtype != RECORD_DTYPE:  # pragma: no cover - defensive
            records = records.astype(RECORD_DTYPE)
        return records

    def is_alive(self, timeout: float) -> bool:
        """True when a beat has been observed within the last ``timeout`` seconds."""
        snap = self._source()
        if snap.retained == 0:
            return False
        age = self._clock.now() - float(snap.records["timestamp"][-1])
        return age <= timeout

    def close(self) -> None:
        """Detach from the source (needed for shared-memory attachments)."""
        if self._close is not None:
            self._close()

    def __enter__(self) -> "HeartbeatMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

