"""Core Application Heartbeats framework.

This package is the paper's primary contribution: the heartbeat record and
history buffer, windowed heart-rate computation, the :class:`Heartbeat`
object API, the C-style functional API of Table 1, the storage backends
(memory / file / shared memory) and the external-observer
:class:`HeartbeatMonitor`.
"""

from repro.core.aggregator import FleetSample, FleetSummary, HeartbeatAggregator
from repro.core.api import (
    HB_current_rate,
    HB_finalize,
    HB_get_history,
    HB_get_target_max,
    HB_get_target_min,
    HB_global_rate,
    HB_heartbeat,
    HB_heartbeat_n,
    HB_initialize,
    HB_is_initialized,
    HB_set_target_rate,
)
from repro.core.backends import (
    Backend,
    BackendSnapshot,
    DeltaSnapshot,
    FileBackend,
    MemoryBackend,
    SharedMemoryBackend,
    SnapshotCursor,
)
from repro.core.buffer import CircularBuffer
from repro.core.errors import (
    BackendError,
    BackendFormatError,
    HeartbeatClosedError,
    HeartbeatError,
    HeartbeatStateError,
    InvalidTargetError,
    InvalidWindowError,
    MonitorAttachError,
    ProtocolError,
    RegistryError,
)
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HealthStatus, HeartbeatMonitor, MonitorReading
from repro.core.rate import (
    RateStatistics,
    global_rate,
    instantaneous_rate,
    moving_rate_series,
    rate_statistics,
    windowed_rate,
)
from repro.core.record import RECORD_DTYPE, HeartbeatRecord
from repro.core.registry import HeartbeatRegistry
from repro.core.stream import (
    BoundSource,
    SourceCapabilities,
    StreamSink,
    StreamSource,
    capabilities_of,
)
from repro.core.window import DEFAULT_WINDOW, MAX_WINDOW

__all__ = [
    # object API
    "Heartbeat",
    "HeartbeatMonitor",
    "MonitorReading",
    "HealthStatus",
    "HeartbeatAggregator",
    "FleetSample",
    "FleetSummary",
    "HeartbeatRegistry",
    "HeartbeatRecord",
    "CircularBuffer",
    "RECORD_DTYPE",
    # functional API (Table 1)
    "HB_initialize",
    "HB_heartbeat",
    "HB_heartbeat_n",
    "HB_current_rate",
    "HB_set_target_rate",
    "HB_get_target_min",
    "HB_get_target_max",
    "HB_get_history",
    "HB_global_rate",
    "HB_finalize",
    "HB_is_initialized",
    # capability protocols
    "StreamSource",
    "StreamSink",
    "SourceCapabilities",
    "BoundSource",
    "capabilities_of",
    # backends
    "Backend",
    "BackendSnapshot",
    "DeltaSnapshot",
    "SnapshotCursor",
    "MemoryBackend",
    "FileBackend",
    "SharedMemoryBackend",
    # rates
    "windowed_rate",
    "global_rate",
    "instantaneous_rate",
    "moving_rate_series",
    "rate_statistics",
    "RateStatistics",
    # windows
    "DEFAULT_WINDOW",
    "MAX_WINDOW",
    # errors
    "HeartbeatError",
    "HeartbeatStateError",
    "HeartbeatClosedError",
    "InvalidWindowError",
    "InvalidTargetError",
    "BackendError",
    "BackendFormatError",
    "ProtocolError",
    "MonitorAttachError",
    "RegistryError",
]
