"""Heartbeat records.

The paper specifies that every heartbeat is automatically stamped with the
current time and the thread ID of the caller, plus an optional user tag
(Section 3).  :class:`HeartbeatRecord` is the in-memory representation; the
module also defines the numpy structured dtype used by the circular history
buffer and the shared-memory backend so that the on-disk / in-shared-memory
layout is identical everywhere ("a standard must be established specifying the
components and layout of the heartbeat data structures in memory").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "HeartbeatRecord",
    "RECORD_DTYPE",
    "records_to_array",
    "array_to_records",
    "iter_intervals",
]


#: Binary layout of a single heartbeat record.  ``beat`` is the global beat
#: sequence number (0-based), ``timestamp`` the stamping time in seconds,
#: ``tag`` the user supplied integer tag, and ``thread_id`` the producing
#: thread identifier.  64-bit fields keep the layout simple and aligned.
RECORD_DTYPE = np.dtype(
    [
        ("beat", np.int64),
        ("timestamp", np.float64),
        ("tag", np.int64),
        ("thread_id", np.int64),
    ]
)


@dataclass(frozen=True, slots=True)
class HeartbeatRecord:
    """A single heartbeat event.

    Attributes
    ----------
    beat:
        Zero-based sequence number of this heartbeat within its buffer.
    timestamp:
        Time at which the heartbeat was registered, in seconds, according to
        the owning :class:`repro.clock.Clock`.
    tag:
        User supplied integer tag (frame type, sequence number, ...).  The
        default tag is ``0``.
    thread_id:
        Identifier of the thread (or simulated process) that registered the
        beat.
    """

    beat: int
    timestamp: float
    tag: int = 0
    thread_id: int = 0

    def interval_since(self, previous: "HeartbeatRecord") -> float:
        """Return the time elapsed since ``previous`` (may be zero).

        Raises ``ValueError`` when ``previous`` was stamped after this record,
        which would indicate buffer corruption or mixed clocks.
        """
        delta = self.timestamp - previous.timestamp
        if delta < 0:
            raise ValueError(
                "heartbeat records out of order: "
                f"{previous.timestamp!r} followed by {self.timestamp!r}"
            )
        return delta

    def as_tuple(self) -> tuple[int, float, int, int]:
        """Return ``(beat, timestamp, tag, thread_id)``."""
        return (self.beat, self.timestamp, self.tag, self.thread_id)


def records_to_array(records: Sequence[HeartbeatRecord] | Iterable[HeartbeatRecord]) -> np.ndarray:
    """Pack records into a structured array with :data:`RECORD_DTYPE`."""
    items = list(records)
    out = np.empty(len(items), dtype=RECORD_DTYPE)
    for i, rec in enumerate(items):
        out[i] = (rec.beat, rec.timestamp, rec.tag, rec.thread_id)
    return out


def array_to_records(array: np.ndarray) -> list[HeartbeatRecord]:
    """Unpack a structured array (see :data:`RECORD_DTYPE`) into records."""
    if array.dtype != RECORD_DTYPE:
        raise ValueError(f"expected dtype {RECORD_DTYPE}, got {array.dtype}")
    return [
        HeartbeatRecord(
            beat=int(row["beat"]),
            timestamp=float(row["timestamp"]),
            tag=int(row["tag"]),
            thread_id=int(row["thread_id"]),
        )
        for row in array
    ]


def iter_intervals(records: Sequence[HeartbeatRecord]) -> Iterator[float]:
    """Yield successive inter-beat intervals for ``records`` (in order)."""
    for prev, cur in zip(records, records[1:]):
        yield cur.interval_since(prev)
