"""Window-resolution rules.

The paper's API lets every rate query specify a window (the number of most
recent heartbeats over which the average heart rate is computed) and lets the
application register a *default* window at initialisation time:

* ``HB_current_rate(window=0)`` uses the default window;
* windows larger than the stored history "may be silently clipped";
* implementations should retain at least as much history as the default
  window requested by the application (Section 3).

:func:`resolve_window` centralises those rules so the object API, the
functional API and the external monitor all behave identically.
"""

from __future__ import annotations

from repro.core.errors import InvalidWindowError

__all__ = ["resolve_window", "validate_default_window", "DEFAULT_WINDOW", "MAX_WINDOW"]

#: Default window used when the application does not specify one.
DEFAULT_WINDOW = 20

#: Upper bound on history retained by the in-memory and shared-memory
#: backends.  The paper allows implementations to "restrict the maximum
#: window size to limit the resources used to store heartbeat history".
MAX_WINDOW = 65536


def validate_default_window(window: int) -> int:
    """Validate the default window passed to ``HB_initialize``.

    Returns the validated window.  ``0`` selects :data:`DEFAULT_WINDOW`.
    """
    if isinstance(window, bool) or not isinstance(window, int):
        raise InvalidWindowError(f"window must be an int, got {window!r}")
    if window < 0:
        raise InvalidWindowError(f"window must be >= 0, got {window}")
    if window == 0:
        return DEFAULT_WINDOW
    if window > MAX_WINDOW:
        return MAX_WINDOW
    return window


def resolve_window(requested: int, default_window: int, available: int) -> int:
    """Resolve the window actually used for a heart-rate query.

    Parameters
    ----------
    requested:
        Window requested by the caller.  ``0`` means "use the default
        window" per the paper's API.
    default_window:
        The default window registered at initialisation time.
    available:
        Number of heartbeats currently retained in the history buffer.

    Returns
    -------
    int
        The effective window: the requested (or default) window, silently
        clipped first to the default window when a larger value is requested
        — "if window values larger than the default are passed to
        HB_current_rate they may be silently clipped to the default value" —
        and then to the available history.
    """
    if isinstance(requested, bool) or not isinstance(requested, int):
        raise InvalidWindowError(f"window must be an int, got {requested!r}")
    if requested < 0:
        raise InvalidWindowError(f"window must be >= 0, got {requested}")
    window = default_window if requested == 0 else requested
    if window > default_window:
        window = default_window
    return min(window, available)
