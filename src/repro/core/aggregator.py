"""Sharded fleet-level aggregation of many heartbeat streams.

The paper's external observer (Figure 1b) reads *one* application's
heartbeats.  Scaling that idea to a cluster manager or load balancer watching
thousands of instrumented applications turns the observer into a fan-in
problem: polling streams one at a time from one thread makes the observation
period grow linearly with the fleet, which is exactly the single-stream
bottleneck batched fan-in aggregation removes in massively parallel
evaluation loops.

:class:`HeartbeatAggregator` is that fan-in stage.  It attaches to any mix of
stream kinds — in-process :class:`~repro.core.heartbeat.Heartbeat` objects,
heartbeat log files, shared-memory segments, whole registries, or raw
snapshot providers — shards them across a pool of reader threads, and turns
one :meth:`poll` into a :class:`FleetSample`: a columnar view of every
stream's rate, goal and health on which fleet-level queries (:meth:`rates`,
:meth:`lagging`, :meth:`FleetSample.percentiles`) are vectorized numpy
operations rather than per-stream loops.

Each stream is classified by :func:`repro.core.monitor.reading_from_snapshot`
— the same rule the per-stream :class:`~repro.core.monitor.HeartbeatMonitor`
applies — so "slow" means the same thing to a fleet observer as to a
dedicated one.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Protocol, Sequence

import numpy as np

from repro.clock import Clock, WallClock
from repro.core.backends.base import BackendSnapshot
from repro.core.backends.file import read_heartbeat_log
from repro.core.backends.shared_memory import SharedMemoryReader
from repro.core.errors import HeartbeatError, MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import (
    HealthStatus,
    HeartbeatMonitor,
    MonitorReading,
    reading_from_snapshot,
)
from repro.core.registry import HeartbeatRegistry

__all__ = ["HeartbeatAggregator", "FleetSample", "FleetSummary", "CollectorLike"]


class CollectorLike(Protocol):
    """What :meth:`HeartbeatAggregator.attach_collector` needs from a collector.

    :class:`repro.net.collector.HeartbeatCollector` satisfies it; so would
    any other fan-in stage that registers named streams dynamically.
    """

    def stream_ids(self) -> list[str]: ...  # pragma: no cover - protocol stub

    def snapshot_source(
        self, stream_id: str
    ) -> Callable[[], BackendSnapshot]: ...  # pragma: no cover - protocol stub


@dataclass(frozen=True, slots=True)
class FleetSummary:
    """Aggregate statistics over one :class:`FleetSample`.

    ``streams`` counts every attached stream; ``measurable`` only those with
    at least two beats (streams still warming up have no defined rate and are
    excluded from the rate statistics and percentiles).
    """

    streams: int
    measurable: int
    mean: float
    minimum: float
    maximum: float
    std: float
    percentiles: Mapping[float, float]
    lagging: int
    stalled: int


@dataclass(frozen=True, slots=True)
class FleetSample:
    """One consistent observation of every attached stream.

    ``names`` and ``readings`` are parallel sequences in attachment order.
    Streams whose source failed to answer (e.g. their writer exited and the
    segment vanished mid-poll) appear in ``errors`` instead, so one dead
    producer never poisons the fleet view.
    """

    names: tuple[str, ...]
    readings: tuple[MonitorReading, ...]
    errors: Mapping[str, str]
    taken_at: float
    _by_name: dict[str, MonitorReading] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_name", dict(zip(self.names, self.readings, strict=True))
        )

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[tuple[str, MonitorReading]]:
        return iter(zip(self.names, self.readings))

    def reading(self, name: str) -> MonitorReading:
        """The reading for one stream (``KeyError`` if absent or errored)."""
        return self._by_name[name]

    def get(self, name: str) -> MonitorReading | None:
        """Like :meth:`reading`, but ``None`` for absent or errored streams."""
        return self._by_name.get(name)

    # ------------------------------------------------------------------ #
    # Vectorized fleet queries
    # ------------------------------------------------------------------ #
    def rates(self) -> np.ndarray:
        """Per-stream windowed heart rates, in attachment order."""
        return np.array([r.rate for r in self.readings], dtype=np.float64)

    def total_beats(self) -> int:
        """Total beats ever produced across the fleet."""
        return int(sum(r.total_beats for r in self.readings))

    def lagging(self, target: float | None = None) -> list[str]:
        """Streams making less progress than required, worst first.

        With ``target=None`` a stream lags when it is classified SLOW or
        STALLED against its own published goal; with an explicit ``target``
        every measurable stream whose rate is below it (and every stalled
        stream) lags.  Results are sorted by rate ascending so the most
        starved stream leads — the order a balancer wants to service.
        """
        out: list[tuple[float, str]] = []
        for name, reading in self:
            if reading.status is HealthStatus.STALLED:
                out.append((reading.rate, name))
            elif target is None:
                if reading.status is HealthStatus.SLOW:
                    out.append((reading.rate, name))
            elif reading.total_beats >= 2 and reading.rate < target:
                out.append((reading.rate, name))
        return [name for _, name in sorted(out)]

    def stalled(self) -> list[str]:
        """Streams whose last beat is older than the liveness timeout."""
        return [n for n, r in self if r.status is HealthStatus.STALLED]

    def by_status(self) -> dict[HealthStatus, list[str]]:
        """Stream names grouped by health classification."""
        out: dict[HealthStatus, list[str]] = {status: [] for status in HealthStatus}
        for name, reading in self:
            out[reading.status].append(name)
        return out

    def _measurable_rates(self) -> np.ndarray:
        """Rates of streams with a defined rate (at least two beats)."""
        return np.array(
            [r.rate for r in self.readings if r.total_beats >= 2], dtype=np.float64
        )

    def percentiles(self, q: Sequence[float] = (50.0, 90.0, 99.0)) -> dict[float, float]:
        """Rate percentiles over the measurable streams (empty fleet: zeros)."""
        return _rate_percentiles(self._measurable_rates(), q)

    def summary(self, q: Sequence[float] = (50.0, 90.0, 99.0)) -> FleetSummary:
        """Compact fleet-health roll-up (the observer's dashboard line)."""
        measurable = self._measurable_rates()
        lagging = sum(1 for r in self.readings if r.status is HealthStatus.SLOW)
        stalled = sum(1 for r in self.readings if r.status is HealthStatus.STALLED)
        empty = measurable.size == 0
        return FleetSummary(
            streams=len(self.names),
            measurable=int(measurable.size),
            mean=0.0 if empty else float(np.mean(measurable)),
            minimum=0.0 if empty else float(np.min(measurable)),
            maximum=0.0 if empty else float(np.max(measurable)),
            std=0.0 if empty else float(np.std(measurable)),
            percentiles=_rate_percentiles(measurable, q),
            lagging=lagging,
            stalled=stalled,
        )


def _rate_percentiles(rates: np.ndarray, q: Sequence[float]) -> dict[float, float]:
    """Percentile dict over a rate array; an empty array yields all zeros."""
    if rates.size == 0:
        return {float(p): 0.0 for p in q}
    values = np.percentile(rates, list(q))
    return {float(p): float(v) for p, v in zip(q, values, strict=True)}


class _Stream:
    """One attached stream: a snapshot provider plus its teardown hook."""

    __slots__ = ("name", "source", "close")

    def __init__(
        self,
        name: str,
        source: Callable[[], BackendSnapshot],
        close: Callable[[], None] | None,
    ) -> None:
        self.name = name
        self.source = source
        self.close = close


class HeartbeatAggregator:
    """Fan-in observer over many heartbeat streams.

    Parameters
    ----------
    clock:
        Time base used for beat ages and liveness; it must match the clock
        the producers stamp beats with (simulated fleets pass the shared
        simulated clock).
    window:
        Rate window applied to every stream; ``0`` uses each producer's
        published default window.
    liveness_timeout:
        Seconds without a beat after which a stream is classified STALLED.
        ``None`` disables the check.
    num_shards:
        Number of reader threads the attached streams are sharded across
        during :meth:`poll`.  ``0`` selects a shard per CPU (capped at 8);
        ``1`` polls inline with no thread hand-off.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
        num_shards: int = 1,
    ) -> None:
        if num_shards < 0:
            raise ValueError(f"num_shards must be >= 0, got {num_shards}")
        if num_shards == 0:
            num_shards = min(os.cpu_count() or 1, 8)
        self._clock = clock if clock is not None else WallClock()
        self._window = int(window)
        self._liveness_timeout = liveness_timeout
        self._num_shards = int(num_shards)
        self._lock = threading.Lock()
        self._streams: dict[str, _Stream] = {}
        self._collectors: list[tuple[str, CollectorLike]] = []
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def attach(self, name: str, heartbeat: Heartbeat) -> None:
        """Attach an in-process heartbeat object as stream ``name``."""
        self.attach_source(name, heartbeat.backend.snapshot)

    def attach_file(self, name: str, path: str | os.PathLike[str]) -> None:
        """Attach a heartbeat log file written by a ``FileBackend``."""
        path = os.fspath(path)
        if not os.path.exists(path):
            raise MonitorAttachError(f"heartbeat log {path!r} does not exist")

        def _snapshot() -> BackendSnapshot:
            default_window, tmin, tmax, records = read_heartbeat_log(path)
            return BackendSnapshot(
                records=records,
                total_beats=int(records.shape[0]),
                target_min=tmin,
                target_max=tmax,
                default_window=default_window,
            )

        self.attach_source(name, _snapshot)

    def attach_shared_memory(self, name: str, segment: str | None = None) -> None:
        """Attach a shared-memory segment (``segment`` defaults to ``name``)."""
        reader = SharedMemoryReader(segment if segment is not None else name)
        try:
            self.attach_source(name, reader.snapshot, close=reader.close)
        except Exception:
            reader.close()  # don't leak the mapping on a rejected attachment
            raise

    def attach_monitor(self, name: str, monitor: "HeartbeatMonitor") -> None:
        """Adopt an existing per-stream monitor attachment as stream ``name``.

        The monitor keeps working independently; closing it (for
        shared-memory attachments) also invalidates the aggregator's stream,
        so hand over teardown to :meth:`detach`/:meth:`close` instead.
        """
        self.attach_source(name, monitor.snapshot_source)

    def attach_registry(
        self, registry: HeartbeatRegistry | None = None, *, prefix: str = ""
    ) -> list[str]:
        """Attach every stream of a process registry; returns the names used.

        ``registry`` defaults to the process-wide registry behind the
        functional Table 1 API, so ``attach_registry()`` turns the aggregator
        into an observer of everything this process instruments.
        """
        if registry is None:
            from repro.core.api import get_registry

            registry = get_registry()
        attached: list[str] = []
        streams: list[tuple[str, Heartbeat]] = []
        if registry.has_global:
            hb = registry.get(local=False)
            streams.append((prefix + hb.name, hb))
        streams.extend(
            (f"{prefix}{hb.name}", hb) for _, hb in registry.iter_locals()
        )
        for name, hb in streams:
            self.attach(name, hb)
            attached.append(name)
        return attached

    def attach_collector(self, collector: CollectorLike, *, prefix: str = "") -> list[str]:
        """Observe every stream of a network collector; returns the names added.

        The attachment is *dynamic*: streams that register with the collector
        after this call are picked up automatically at the start of every
        :meth:`poll`, so a fleet observer attaches once and new producers
        simply appear.  Stream names are ``prefix + stream_id``; ids already
        attached (by an earlier sync or manually) are left untouched.

        The producers and this aggregator must share a time base for
        liveness ages to mean anything — remote producers normally stamp
        beats with ``WallClock(rebase=False)``, so pass the same here.
        """
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            self._collectors.append((str(prefix), collector))
        return self._sync_collectors()

    def _sync_collectors(self) -> list[str]:
        """Attach collector streams that appeared since the last sync."""
        with self._lock:
            collectors = list(self._collectors)
            existing = set(self._streams)
        added: list[str] = []
        for prefix, collector in collectors:
            # One lock acquisition per collector with news, not one per
            # stream id: the steady state (thousands of long-lived streams,
            # nothing new) stays a lock-free set scan.
            missing = [
                (prefix + stream_id, stream_id)
                for stream_id in collector.stream_ids()
                if prefix + stream_id not in existing
            ]
            if not missing:
                continue
            with self._lock:
                if self._closed:
                    break
                for name, stream_id in missing:
                    if name in self._streams:
                        continue
                    self._streams[name] = _Stream(
                        name, collector.snapshot_source(stream_id), None
                    )
                    existing.add(name)
                    added.append(name)
        return added

    def attach_source(
        self,
        name: str,
        source: Callable[[], BackendSnapshot],
        *,
        close: Callable[[], None] | None = None,
    ) -> None:
        """Attach a raw snapshot provider (the lowest-level attachment)."""
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            if name in self._streams:
                raise MonitorAttachError(f"stream {name!r} is already attached")
            self._streams[name] = _Stream(str(name), source, close)

    def detach(self, name: str) -> None:
        """Detach one stream, releasing its reader resources."""
        with self._lock:
            stream = self._streams.pop(name, None)
        if stream is None:
            raise MonitorAttachError(f"no stream named {name!r} is attached")
        if stream.close is not None:
            stream.close()

    @property
    def names(self) -> list[str]:
        """Names of the attached streams, in attachment order."""
        with self._lock:
            return list(self._streams)

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._streams

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def poll(self) -> FleetSample:
        """Snapshot every attached stream and classify the whole fleet.

        Streams are split round-robin over ``num_shards`` reader threads;
        each shard drains its slice independently, so the wall time of a poll
        is the slowest shard, not the sum of every stream's read latency.
        """
        if self._collectors:
            self._sync_collectors()
        with self._lock:
            streams = list(self._streams.values())
        now = self._clock.now()
        results: list[tuple[str, MonitorReading] | None] = [None] * len(streams)
        errors: dict[str, str] = {}
        error_lock = threading.Lock()

        def _drain(shard: list[tuple[int, _Stream]]) -> None:
            for index, stream in shard:
                try:
                    snap = stream.source()
                except HeartbeatError as exc:
                    with error_lock:
                        errors[stream.name] = str(exc)
                    continue
                results[index] = (
                    stream.name,
                    reading_from_snapshot(
                        snap,
                        now=now,
                        window=self._window,
                        liveness_timeout=self._liveness_timeout,
                    ),
                )

        shards: list[list[tuple[int, _Stream]]] = [
            [] for _ in range(min(self._num_shards, max(len(streams), 1)))
        ]
        for index, stream in enumerate(streams):
            shards[index % len(shards)].append((index, stream))
        if len(shards) == 1:
            _drain(shards[0])
        else:
            pool = self._ensure_pool()
            for future in [pool.submit(_drain, shard) for shard in shards]:
                future.result()

        kept = [entry for entry in results if entry is not None]
        return FleetSample(
            names=tuple(name for name, _ in kept),
            readings=tuple(reading for _, reading in kept),
            errors=errors,
            taken_at=now,
        )

    def rates(self) -> dict[str, float]:
        """Convenience: poll once and return ``{stream name: rate}``."""
        sample = self.poll()
        return {name: reading.rate for name, reading in sample}

    def lagging(self, target: float | None = None) -> list[str]:
        """Convenience: poll once and return the lagging streams, worst first."""
        return self.poll().lagging(target)

    def summary(self, q: Sequence[float] = (50.0, 90.0, 99.0)) -> FleetSummary:
        """Convenience: poll once and roll the fleet up into one summary."""
        return self.poll().summary(q)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach every stream and stop the reader pool.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            streams = list(self._streams.values())
            self._streams.clear()
            self._collectors.clear()
            pool, self._pool = self._pool, None
        for stream in streams:
            if stream.close is not None:
                stream.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "HeartbeatAggregator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._num_shards,
                    thread_name_prefix="hb-aggregator",
                )
            return self._pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatAggregator(streams={len(self)}, shards={self._num_shards}, "
            f"window={self._window})"
        )
