"""Sharded fleet-level aggregation of many heartbeat streams.

The paper's external observer (Figure 1b) reads *one* application's
heartbeats.  Scaling that idea to a cluster manager or load balancer watching
thousands of instrumented applications turns the observer into a fan-in
problem: polling streams one at a time from one thread makes the observation
period grow linearly with the fleet, which is exactly the single-stream
bottleneck batched fan-in aggregation removes in massively parallel
evaluation loops.

:class:`HeartbeatAggregator` is that fan-in stage.  It attaches to any mix of
stream kinds — in-process :class:`~repro.core.heartbeat.Heartbeat` objects,
heartbeat log files, shared-memory segments, whole registries, or raw
snapshot providers — shards them across a pool of reader threads, and turns
one :meth:`poll` into a :class:`FleetSample`: a columnar view of every
stream's rate, goal and health on which fleet-level queries (:meth:`rates`,
:meth:`lagging`, :meth:`FleetSample.percentiles`) are vectorized numpy
operations rather than per-stream loops.

Polling is *incremental* by default.  Each stream carries a
:class:`~repro.core.monitor.StreamDeltaState` — a cursor into the backend's
beat sequence plus a rolling window of recent timestamps — so a poll reads
only the beats produced since the previous poll (``snapshot_since``), skips
streams whose cheap change token (``version``) is unchanged, writes the
per-stream columns into preallocated reusable numpy arrays, and classifies
the whole fleet with one vectorized pass instead of one
:func:`~repro.core.monitor.reading_from_snapshot` call per stream.  The
classic full-snapshot path is kept (``incremental=False``) as a fallback for
exotic sources and as the benchmark baseline arm.

Each stream is classified by the same rule the per-stream
:class:`~repro.core.monitor.HeartbeatMonitor` applies (see
:func:`repro.core.monitor.classify`), so "slow" means the same thing to a
fleet observer as to a dedicated one.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Protocol, Sequence

import numpy as np

from repro.clock import Clock, WallClock
from repro.core.backends.arena import Arena
from repro.core.backends.base import BackendSnapshot, delta_from_snapshot
from repro.core.errors import HeartbeatError, MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import (
    DeltaSource,
    HealthStatus,
    HeartbeatMonitor,
    MonitorReading,
    StreamDeltaState,
    reading_from_snapshot,
)
from repro.core.registry import HeartbeatRegistry
from repro.obs.registry import MetricsRegistry

__all__ = [
    "HeartbeatAggregator",
    "FleetSample",
    "FleetSummary",
    "CollectorLike",
    "collector_stream_sources",
]


class CollectorLike(Protocol):
    """What :meth:`HeartbeatAggregator.attach_collector` needs from a collector.

    :class:`repro.net.collector.HeartbeatCollector` satisfies it; so would
    any other fan-in stage that registers named streams dynamically.
    Collectors additionally exposing ``delta_source(stream_id)`` and
    ``version_source(stream_id)`` (as :class:`HeartbeatCollector` does) get
    incremental O(new-records) polling; others fall back to full snapshots.
    """

    def stream_ids(self) -> list[str]: ...  # pragma: no cover - protocol stub

    def snapshot_source(
        self, stream_id: str
    ) -> Callable[[], BackendSnapshot]: ...  # pragma: no cover - protocol stub


def collector_stream_sources(
    collector: CollectorLike, stream_id: str
) -> tuple[
    Callable[[], BackendSnapshot],
    DeltaSource | None,
    Callable[[], object | None] | None,
]:
    """The ``(source, delta, probe)`` attachment triple for one collector stream.

    The single capability probe for incremental collector polling (the
    counterpart of :func:`repro.core.monitor.file_observer_sources` for log
    files): collectors exposing ``delta_source`` / ``version_source`` get
    O(new-records) polling, others fall back to full snapshots via ``None``.
    """
    delta_of = getattr(collector, "delta_source", None)
    probe_of = getattr(collector, "version_source", None)
    return (
        collector.snapshot_source(stream_id),
        delta_of(stream_id) if delta_of is not None else None,
        probe_of(stream_id) if probe_of is not None else None,
    )


@dataclass(frozen=True, slots=True)
class FleetSummary:
    """Aggregate statistics over one :class:`FleetSample`.

    ``streams`` counts every attached stream; ``measurable`` only those with
    at least two beats (streams still warming up have no defined rate and are
    excluded from the rate statistics and percentiles).
    """

    streams: int
    measurable: int
    mean: float
    minimum: float
    maximum: float
    std: float
    percentiles: Mapping[float, float]
    lagging: int
    stalled: int


#: Integer health codes used by the vectorized classification; index into
#: :data:`_STATUS_BY_CODE` to recover the enum.
_UNKNOWN, _HEALTHY, _SLOW, _FAST, _STALLED = range(5)
_STATUS_BY_CODE = (
    HealthStatus.UNKNOWN,
    HealthStatus.HEALTHY,
    HealthStatus.SLOW,
    HealthStatus.FAST,
    HealthStatus.STALLED,
)
_CODE_BY_STATUS = {status: code for code, status in enumerate(_STATUS_BY_CODE)}


def classify_codes(
    rate: np.ndarray,
    retained: np.ndarray,
    target_min: np.ndarray,
    target_max: np.ndarray,
    age: np.ndarray,
    liveness_timeout: float | None,
) -> np.ndarray:
    """Vectorized transliteration of :func:`repro.core.monitor.classify`.

    ``age`` uses ``nan`` for "no beat observed" (which can never exceed the
    liveness timeout, matching the scalar rule's ``age is None`` guard).
    Returns one int8 status code per stream.
    """
    unknown = retained == 0
    if liveness_timeout is not None:
        stalled = (age > liveness_timeout) & ~unknown
    else:
        stalled = np.zeros(rate.shape, dtype=bool)
    no_goal = (target_min <= 0.0) & (target_max <= 0.0)
    slow = rate < target_min
    fast = (target_max > 0.0) & (rate > target_max)
    return np.select(
        [unknown, stalled, no_goal, slow, fast],
        [_UNKNOWN, _STALLED, _HEALTHY, _SLOW, _FAST],
        default=_HEALTHY,
    ).astype(np.int8)


class FleetSample:
    """One consistent observation of every attached stream.

    ``names`` is in attachment order; the per-stream measurements live in
    parallel numpy columns (:meth:`rates`, plus the internal total/target/
    age/status arrays the fleet queries operate on), so fleet-level
    questions are vectorized instead of per-stream loops.  ``readings``
    materialises :class:`MonitorReading` objects lazily for callers that
    want the per-stream view.  Streams whose source failed to answer (e.g.
    their writer exited and the segment vanished mid-poll) appear in
    ``errors`` instead, so one dead producer never poisons the fleet view.
    """

    __slots__ = (
        "names", "errors", "taken_at",
        "_rate", "_total", "_tmin", "_tmax", "_last_ts", "_age", "_codes",
        "_readings", "_by_name",
    )

    def __init__(
        self,
        names: tuple[str, ...],
        errors: Mapping[str, str],
        taken_at: float,
        *,
        rate: np.ndarray,
        total: np.ndarray,
        target_min: np.ndarray,
        target_max: np.ndarray,
        last_ts: np.ndarray,
        age: np.ndarray,
        codes: np.ndarray,
    ) -> None:
        self.names = names
        self.errors = errors
        self.taken_at = taken_at
        self._rate = rate
        self._total = total
        self._tmin = target_min
        self._tmax = target_max
        self._last_ts = last_ts
        self._age = age
        self._codes = codes
        self._readings: tuple[MonitorReading, ...] | None = None
        self._by_name: dict[str, MonitorReading] | None = None

    @classmethod
    def from_readings(
        cls,
        names: tuple[str, ...],
        readings: Sequence[MonitorReading],
        errors: Mapping[str, str],
        taken_at: float,
    ) -> "FleetSample":
        """Build a sample from per-stream readings (the full-snapshot path)."""
        sample = cls(
            names,
            errors,
            taken_at,
            rate=np.array([r.rate for r in readings], dtype=np.float64),
            total=np.array([r.total_beats for r in readings], dtype=np.int64),
            target_min=np.array([r.target_min for r in readings], dtype=np.float64),
            target_max=np.array([r.target_max for r in readings], dtype=np.float64),
            last_ts=np.array(
                [np.nan if r.last_timestamp is None else r.last_timestamp for r in readings],
                dtype=np.float64,
            ),
            age=np.array(
                [np.nan if r.age is None else r.age for r in readings], dtype=np.float64
            ),
            codes=np.array([_CODE_BY_STATUS[r.status] for r in readings], dtype=np.int8),
        )
        sample._readings = tuple(readings)
        return sample

    # ------------------------------------------------------------------ #
    # Per-stream view
    # ------------------------------------------------------------------ #
    @property
    def readings(self) -> tuple[MonitorReading, ...]:
        """Per-stream readings in attachment order (materialised lazily)."""
        if self._readings is None:
            self._readings = tuple(
                MonitorReading(
                    rate=float(self._rate[i]),
                    total_beats=int(self._total[i]),
                    target_min=float(self._tmin[i]),
                    target_max=float(self._tmax[i]),
                    last_timestamp=None if np.isnan(self._last_ts[i]) else float(self._last_ts[i]),
                    age=None if np.isnan(self._age[i]) else float(self._age[i]),
                    status=_STATUS_BY_CODE[self._codes[i]],
                )
                for i in range(len(self.names))
            )
        return self._readings

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[tuple[str, MonitorReading]]:
        return iter(zip(self.names, self.readings))

    def reading(self, name: str) -> MonitorReading:
        """The reading for one stream (``KeyError`` if absent or errored)."""
        if self._by_name is None:
            self._by_name = dict(zip(self.names, self.readings, strict=True))
        return self._by_name[name]

    def get(self, name: str) -> MonitorReading | None:
        """Like :meth:`reading`, but ``None`` for absent or errored streams."""
        if self._by_name is None:
            self._by_name = dict(zip(self.names, self.readings, strict=True))
        return self._by_name.get(name)

    # ------------------------------------------------------------------ #
    # Vectorized fleet queries
    # ------------------------------------------------------------------ #
    def rates(self) -> np.ndarray:
        """Per-stream windowed heart rates, in attachment order."""
        return self._rate.copy()

    def total_beats(self) -> int:
        """Total beats ever produced across the fleet."""
        return int(self._total.sum())

    def lagging(self, target: float | None = None) -> list[str]:
        """Streams making less progress than required, worst first.

        With ``target=None`` a stream lags when it is classified SLOW or
        STALLED against its own published goal; with an explicit ``target``
        every measurable stream whose rate is below it (and every stalled
        stream) lags.  Results are sorted by rate ascending so the most
        starved stream leads — the order a balancer wants to service.
        """
        stalled = self._codes == _STALLED
        if target is None:
            mask = stalled | (self._codes == _SLOW)
        else:
            mask = stalled | ((self._total >= 2) & (self._rate < float(target)))
        picked = sorted(
            (float(self._rate[i]), self.names[i]) for i in np.nonzero(mask)[0]
        )
        return [name for _, name in picked]

    def stalled(self) -> list[str]:
        """Streams whose last beat is older than the liveness timeout."""
        return [self.names[i] for i in np.nonzero(self._codes == _STALLED)[0]]

    def by_status(self) -> dict[HealthStatus, list[str]]:
        """Stream names grouped by health classification."""
        out: dict[HealthStatus, list[str]] = {status: [] for status in HealthStatus}
        for name, code in zip(self.names, self._codes):
            out[_STATUS_BY_CODE[code]].append(name)
        return out

    def _measurable_rates(self) -> np.ndarray:
        """Rates of streams with a defined rate (at least two beats)."""
        return self._rate[self._total >= 2]

    def percentiles(self, q: Sequence[float] = (50.0, 90.0, 99.0)) -> dict[float, float]:
        """Rate percentiles over the measurable streams (empty fleet: zeros)."""
        return _rate_percentiles(self._measurable_rates(), q)

    def summary(self, q: Sequence[float] = (50.0, 90.0, 99.0)) -> FleetSummary:
        """Compact fleet-health roll-up (the observer's dashboard line)."""
        measurable = self._measurable_rates()
        empty = measurable.size == 0
        return FleetSummary(
            streams=len(self.names),
            measurable=int(measurable.size),
            mean=0.0 if empty else float(np.mean(measurable)),
            minimum=0.0 if empty else float(np.min(measurable)),
            maximum=0.0 if empty else float(np.max(measurable)),
            std=0.0 if empty else float(np.std(measurable)),
            percentiles=_rate_percentiles(measurable, q),
            lagging=int((self._codes == _SLOW).sum()),
            stalled=int((self._codes == _STALLED).sum()),
        )


def _rate_percentiles(rates: np.ndarray, q: Sequence[float]) -> dict[float, float]:
    """Percentile dict over a rate array; an empty array yields all zeros."""
    if rates.size == 0:
        return {float(p): 0.0 for p in q}
    values = np.percentile(rates, list(q))
    return {float(p): float(v) for p, v in zip(q, values, strict=True)}


class _Stream:
    """One attached stream: snapshot/delta providers plus cached poll state."""

    __slots__ = ("name", "source", "close", "delta", "probe", "state")

    def __init__(
        self,
        name: str,
        source: Callable[[], BackendSnapshot],
        close: Callable[[], None] | None,
        delta: DeltaSource | None = None,
        probe: Callable[[], object | None] | None = None,
    ) -> None:
        self.name = name
        self.source = source
        self.close = close
        self.delta = delta
        self.probe = probe
        self.state: StreamDeltaState | None = None


class _ArenaShard:
    """One attached arena slab, polled whole via the vectorized slab path.

    Unlike :class:`_Stream` (one Python object, one ``snapshot_since`` call
    per poll), an arena shard covers *every* allocated row of the slab with a
    single :meth:`Arena.snapshot_since_all` pass — the aggregator never
    touches the rows individually.  ``cursors`` is the fleet cursor vector
    carried between polls; ``names`` caches the prefixed row names and is
    refreshed only when the slab allocates new rows.
    """

    __slots__ = ("label", "arena", "prefix", "cursors", "names", "close")

    def __init__(
        self,
        label: str,
        arena: Arena,
        prefix: str,
        close: Callable[[], None] | None,
    ) -> None:
        self.label = label
        self.arena = arena
        self.prefix = prefix
        self.cursors: np.ndarray | None = None
        self.names: tuple[str, ...] = ()
        self.close = close

    def refresh_names(self) -> None:
        """Re-derive the prefixed row-name tuple from the slab header table."""
        self.names = tuple(
            self.prefix + (name if name else f"{self.label}[{i}]")
            for i, name in enumerate(self.arena.row_names())
        )


class _Columns:
    """Preallocated, reusable per-stream column arrays for :meth:`poll`.

    Grown (never shrunk) to the fleet size; each poll rewrites only the
    slots of streams that had news, so the steady-state cost of a mostly
    idle fleet is the probe pass plus a few vectorized operations.
    """

    __slots__ = ("rate", "total", "tmin", "tmax", "last_ts", "retained", "size")

    def __init__(self) -> None:
        self.size = 0
        self.ensure(64)

    def ensure(self, n: int) -> None:
        if n <= self.size:
            return
        size = max(64, 2 * self.size, n)
        # No copy-over: every slot is (re)written before it is read whenever
        # the stream layout changes, which includes every growth.
        self.rate = np.zeros(size, dtype=np.float64)
        self.total = np.zeros(size, dtype=np.int64)
        self.tmin = np.zeros(size, dtype=np.float64)
        self.tmax = np.zeros(size, dtype=np.float64)
        self.last_ts = np.full(size, np.nan, dtype=np.float64)
        self.retained = np.zeros(size, dtype=np.int64)
        self.size = size

    def write(self, i: int, state: StreamDeltaState) -> None:
        self.rate[i] = state.rate
        self.total[i] = state.total
        self.tmin[i] = state.tmin
        self.tmax[i] = state.tmax
        self.last_ts[i] = state.last_ts
        self.retained[i] = state.retained


class HeartbeatAggregator:
    """Fan-in observer over many heartbeat streams.

    Parameters
    ----------
    clock:
        Time base used for beat ages and liveness; it must match the clock
        the producers stamp beats with (simulated fleets pass the shared
        simulated clock).
    window:
        Rate window applied to every stream; ``0`` uses each producer's
        published default window.
    liveness_timeout:
        Seconds without a beat after which a stream is classified STALLED.
        ``None`` disables the check.
    num_shards:
        Number of reader threads the attached streams are sharded across
        during :meth:`poll`.  ``0`` selects a shard per CPU (capped at 8);
        ``1`` polls inline with no thread hand-off.
    incremental:
        When True (default) :meth:`poll` consumes cursored deltas and skips
        idle streams; ``False`` restores the full-snapshot-per-stream poll
        (the benchmark baseline arm, and a refuge for exotic sources).
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` holding poll
        counters and the poll-duration histogram.  A private registry is
        created when omitted.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        window: int = 0,
        liveness_timeout: float | None = None,
        num_shards: int = 1,
        incremental: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_shards < 0:
            raise ValueError(f"num_shards must be >= 0, got {num_shards}")
        if num_shards == 0:
            num_shards = min(os.cpu_count() or 1, 8)
        self._clock = clock if clock is not None else WallClock()
        self._window = int(window)
        self._liveness_timeout = liveness_timeout
        self._num_shards = int(num_shards)
        self._incremental = bool(incremental)
        self._lock = threading.Lock()
        #: Serialises whole polls: the per-stream cursors and the reusable
        #: column arrays are aggregator state, so concurrent poll() calls
        #: (e.g. a balancer loop racing a metrics thread) take turns — same
        #: external contract as the stateless full-snapshot poll had.
        self._poll_lock = threading.Lock()
        self._streams: dict[str, _Stream] = {}
        self._arenas: list[_ArenaShard] = []
        #: Wall seconds the current poll spent in the arena slab path;
        #: reset by :meth:`poll`, accumulated by :meth:`_poll_arenas`.
        self._arena_seconds = 0.0
        self._collectors: list[tuple[str, CollectorLike]] = []
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._columns = _Columns()
        #: Bumped on every attach/detach; while unchanged, idle streams'
        #: column slots are still valid from the previous poll.
        self._membership = 0
        self._columns_membership = -1
        self._names_cache: tuple[str, ...] = ()

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_polls = self.metrics.counter(
            "aggregator_polls_total", help="fleet polls run"
        )
        self._m_stream_errors = self.metrics.counter(
            "aggregator_stream_errors_total", help="per-stream read failures across polls"
        )
        self._m_poll_duration = self.metrics.histogram(
            "aggregator_poll_duration_seconds", help="wall time of one fleet poll"
        )
        self._m_poll_arena = self.metrics.histogram(
            "aggregator_poll_duration_seconds",
            help="wall time of one fleet poll",
            labels={"path": "arena"},
        )
        self._m_poll_per_object = self.metrics.histogram(
            "aggregator_poll_duration_seconds",
            help="wall time of one fleet poll",
            labels={"path": "per_object"},
        )
        self.metrics.gauge(
            "aggregator_streams", help="attached streams",
            fn=lambda: float(len(self._streams)),
        )

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def attach_stream(self, name: str, source: object, *, own: bool = False) -> None:
        """Attach any :class:`~repro.core.stream.StreamSource`-shaped object.

        The universal attachment: capabilities (``snapshot_since`` deltas,
        ``version`` probes, a ``close`` hook) are discovered with
        :func:`repro.core.stream.capabilities_of`, so backends, readers,
        collector per-stream views, ``Heartbeat`` objects, monitors and bare
        snapshot callables all come in through the same door.  ``own=True``
        hands the source's ``close`` to :meth:`detach`/:meth:`close`.
        """
        from repro.core.stream import capabilities_of

        caps = capabilities_of(source)
        try:
            self.attach_source(
                name,
                caps.snapshot,
                close=caps.close if own else None,
                delta=caps.delta,
                probe=caps.probe,
            )
        except Exception:
            if own and caps.close is not None:
                caps.close()  # don't leak the attachment on a rejected stream
            raise

    def attach_endpoint(self, endpoint: object, *, name: str | None = None) -> str:
        """Attach the stream(s) named by an endpoint URL; returns the stream name.

        ``file://`` and ``shm://`` endpoints attach one observed stream
        (named ``file:<basename>`` / ``shm:<segment>`` unless ``name`` is
        given), owned by the aggregator.  A fleet-shaped arena endpoint
        (``mem-arena://`` / ``shm-arena://`` without ``?stream=``) attaches
        the *whole slab* as one vectorized shard via :meth:`attach_arena`
        (``name`` becomes the row-name prefix) and returns that prefix; with
        ``?stream=`` it attaches just that row like any single stream.
        ``tcp://`` endpoints are whole fleets — bind a collector
        (:func:`repro.endpoints.open_collector` or
        :meth:`TelemetrySession.fleet <repro.session.TelemetrySession.fleet>`)
        and use :meth:`attach_collector`.
        """
        from repro.endpoints import (
            Endpoint,
            _ArenaEndpoint,
            open_arena,
            open_source,
            stream_name_for,
        )

        ep = Endpoint.parse(endpoint)  # type: ignore[arg-type]
        if isinstance(ep, _ArenaEndpoint) and ep.stream is None:
            prefix = name if name is not None else ""
            self.attach_arena(open_arena(ep), prefix=prefix)
            return prefix
        stream_name = name if name is not None else stream_name_for(ep)
        self.attach_stream(stream_name, open_source(ep), own=True)
        return stream_name

    def attach_arena(
        self, arena: Arena, *, prefix: str = "", own: bool = False
    ) -> None:
        """Attach every row of an arena slab as one vectorized shard.

        The slab is polled through :meth:`Arena.snapshot_since_all` — one
        masked numpy pass over all allocated rows, zero per-stream Python
        dispatch — and its rows join the fleet sample named
        ``prefix + row_name``.  Rows allocated *after* this call appear
        automatically on the next poll (the slab header is the membership).
        ``own=True`` hands the arena's ``close`` to :meth:`close`.

        Attaching also registers live slab gauges
        (``aggregator_arena_streams`` / ``_bytes`` / ``_occupancy``) labelled
        with the slab name, so dashboards see the arena fill up.
        """
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            label = arena.name if arena.name else f"arena-{len(self._arenas)}"
            shard = _ArenaShard(label, arena, prefix, arena.close if own else None)
            self._arenas.append(shard)
            self._membership += 1
        labels = {"arena": label}

        def _safe(fn: Callable[[], float]) -> Callable[[], float]:
            def call() -> float:
                try:
                    return float(fn())
                except HeartbeatError:
                    return 0.0  # slab closed under the gauge; report empty

            return call

        self.metrics.gauge(
            "aggregator_arena_streams", help="allocated rows in the arena slab",
            labels=labels, fn=_safe(lambda: arena.rows_in_use),
        )
        self.metrics.gauge(
            "aggregator_arena_bytes", help="arena slab size in bytes",
            labels=labels, fn=_safe(lambda: arena.nbytes),
        )
        self.metrics.gauge(
            "aggregator_arena_occupancy", help="fraction of arena rows allocated",
            labels=labels, fn=_safe(lambda: arena.occupancy),
        )

    def attach(self, name: str, heartbeat: Heartbeat) -> None:
        """Attach an in-process heartbeat object as stream ``name``."""
        self.attach_stream(name, heartbeat)

    def attach_file(self, name: str, path: str | os.PathLike[str]) -> None:
        """Attach a heartbeat log file (``file://`` endpoint) as stream ``name``."""
        from repro.endpoints import FileEndpoint

        self.attach_endpoint(FileEndpoint(path=os.fspath(path)), name=name)

    def attach_shared_memory(self, name: str, segment: str | None = None) -> None:
        """Attach a shared-memory segment (``segment`` defaults to ``name``)."""
        from repro.endpoints import ShmEndpoint

        self.attach_endpoint(
            ShmEndpoint(name=segment if segment is not None else name), name=name
        )

    def attach_monitor(self, name: str, monitor: "HeartbeatMonitor") -> None:
        """Adopt an existing per-stream monitor attachment as stream ``name``.

        The monitor keeps working independently; closing it (for
        shared-memory attachments) also invalidates the aggregator's stream,
        so hand over teardown to :meth:`detach`/:meth:`close` instead.
        """
        self.attach_source(
            name,
            monitor.snapshot_source,
            delta=monitor.delta_source,
            probe=monitor.probe_source,
        )

    def attach_registry(
        self, registry: HeartbeatRegistry | None = None, *, prefix: str = ""
    ) -> list[str]:
        """Attach every stream of a process registry; returns the names used.

        ``registry`` defaults to the process-wide registry behind the
        functional Table 1 API, so ``attach_registry()`` turns the aggregator
        into an observer of everything this process instruments.
        """
        if registry is None:
            from repro.core.api import get_registry

            registry = get_registry()
        attached: list[str] = []
        streams: list[tuple[str, Heartbeat]] = []
        if registry.has_global:
            hb = registry.get(local=False)
            streams.append((prefix + hb.name, hb))
        streams.extend(
            (f"{prefix}{hb.name}", hb) for _, hb in registry.iter_locals()
        )
        for name, hb in streams:
            self.attach(name, hb)
            attached.append(name)
        return attached

    def attach_collector(self, collector: CollectorLike, *, prefix: str = "") -> list[str]:
        """Observe every stream of a network collector; returns the names added.

        The attachment is *dynamic*: streams that register with the collector
        after this call are picked up automatically at the start of every
        :meth:`poll`, so a fleet observer attaches once and new producers
        simply appear.  Stream names are ``prefix + stream_id``; ids already
        attached (by an earlier sync or manually) are left untouched.

        The producers and this aggregator must share a time base for
        liveness ages to mean anything — remote producers normally stamp
        beats with ``WallClock(rebase=False)``, so pass the same here.

        Collectors running in arena mode (an ``arena=`` slab backing their
        streams) are attached through the slab fast path: the whole arena
        becomes one vectorized shard via :meth:`attach_arena`, and only the
        overflow streams the slab could not hold are attached per-object.
        """
        arena = getattr(collector, "arena", None)
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            self._collectors.append((str(prefix), collector))
        if arena is not None:
            self.attach_arena(arena, prefix=str(prefix))
        return self._sync_collectors()

    def _sync_collectors(self) -> list[str]:
        """Attach collector streams that appeared since the last sync."""
        with self._lock:
            collectors = list(self._collectors)
            existing = set(self._streams)
        added: list[str] = []
        for prefix, collector in collectors:
            # One lock acquisition per collector with news, not one per
            # stream id: the steady state (thousands of long-lived streams,
            # nothing new) stays a lock-free set scan.  Arena-mode
            # collectors expose only their slab-overflow streams here — the
            # slab rows are already covered by the arena shard.
            ids_fn = getattr(collector, "unpooled_stream_ids", None)
            stream_ids = ids_fn() if ids_fn is not None else collector.stream_ids()
            missing = [
                (prefix + stream_id, stream_id)
                for stream_id in stream_ids
                if prefix + stream_id not in existing
            ]
            if not missing:
                continue
            with self._lock:
                if self._closed:
                    break
                for name, stream_id in missing:
                    if name in self._streams:
                        continue
                    source, delta, probe = collector_stream_sources(collector, stream_id)
                    self._streams[name] = _Stream(name, source, None, delta, probe)
                    self._membership += 1
                    existing.add(name)
                    added.append(name)
        return added

    def attach_source(
        self,
        name: str,
        source: Callable[[], BackendSnapshot],
        *,
        close: Callable[[], None] | None = None,
        delta: DeltaSource | None = None,
        probe: Callable[[], object | None] | None = None,
    ) -> None:
        """Attach a raw snapshot provider (the lowest-level attachment).

        ``delta`` and ``probe`` opt the stream into incremental polling (see
        :meth:`Backend.snapshot_since` / :meth:`Backend.version`); without
        them the stream is re-snapshotted in full on every poll.
        """
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            if name in self._streams:
                raise MonitorAttachError(f"stream {name!r} is already attached")
            self._streams[name] = _Stream(str(name), source, close, delta, probe)
            self._membership += 1

    def detach(self, name: str) -> None:
        """Detach one stream, releasing its reader resources."""
        with self._lock:
            stream = self._streams.pop(name, None)
            if stream is not None:
                self._membership += 1
        if stream is None:
            raise MonitorAttachError(f"no stream named {name!r} is attached")
        if stream.close is not None:
            stream.close()

    @property
    def names(self) -> list[str]:
        """Names of the attached streams, in attachment order.

        Arena shard rows follow the per-object streams; their names reflect
        the slab's *current* allocation table.
        """
        with self._lock:
            names = list(self._streams)
            shards = list(self._arenas)
        for shard in shards:
            if shard.arena.rows_in_use != len(shard.names):
                shard.refresh_names()
            names.extend(shard.names)
        return names

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def incremental(self) -> bool:
        return self._incremental

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams) + sum(
                shard.arena.rows_in_use for shard in self._arenas
            )

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._streams

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def poll(self) -> FleetSample:
        """Observe every attached stream and classify the whole fleet.

        The incremental path costs O(new beats) plus one cheap change-token
        probe per stream: each reader shard probes its streams and reads a
        delta only from those whose backend reports news, the deltas are
        folded into cached rolling-window state, and the health
        classification runs as one vectorized pass over the reusable column
        arrays.  Streams are split round-robin over ``num_shards`` reader
        threads, so the wall time of a poll is the slowest shard, not the
        sum of every stream's probe/read latency.

        Concurrent ``poll`` calls from different threads are serialised
        internally (the per-stream cursors and reusable column arrays are
        aggregator state); the shard threads *inside* one poll still run in
        parallel.
        """
        with self._poll_lock:
            self._arena_seconds = 0.0
            start = time.perf_counter()
            sample = self._poll_locked()
            elapsed = time.perf_counter() - start
            self._m_poll_duration.observe(elapsed)
            # Split the poll wall time by shard kind so the dashboard can
            # show what the slab path saves over per-object dispatch.
            if self._arenas:
                self._m_poll_arena.observe(self._arena_seconds)
            if self._streams:
                self._m_poll_per_object.observe(elapsed - self._arena_seconds)
        self._m_polls.inc()
        self._m_stream_errors.inc(len(sample.errors))
        return sample

    def _poll_locked(self) -> FleetSample:
        if self._collectors:
            self._sync_collectors()
        with self._lock:
            streams = list(self._streams.values())
            membership = self._membership
        now = self._clock.now()
        if not self._incremental:
            return self._poll_full(streams, now)

        n = len(streams)
        columns = self._columns
        columns.ensure(n)
        rewrite_all = membership != self._columns_membership

        errors: dict[str, str] = {}
        dead: list[int] = []
        error_lock = threading.Lock()

        def _drain(shard: list[tuple[int, _Stream]]) -> None:
            # Probe-then-read per stream, inside the shard: the change-token
            # probes (an ``os.stat``-class syscall for file streams) are
            # spread across the reader threads with the delta reads they
            # gate, so an idle fleet's poll parallelizes too.
            for i, stream in shard:
                version: object | None = None
                if stream.probe is not None:
                    try:
                        version = stream.probe()
                    except HeartbeatError:
                        version = None  # let the delta read report the failure
                if (
                    stream.state is not None
                    and version is not None
                    and version == stream.state.version
                ):
                    continue  # no new beats, no goal change: skip the read
                try:
                    state = stream.state
                    if state is None:
                        state = StreamDeltaState(self._window)
                    if stream.delta is not None:
                        state.consume(stream.delta)
                    else:
                        # Plain snapshot provider: read once, serve the
                        # consume protocol (including its resync retry)
                        # from that one snapshot.
                        snap = stream.source()
                        state.consume(lambda cursor: delta_from_snapshot(snap, cursor))
                    state.version = version
                    stream.state = state
                except HeartbeatError as exc:
                    stream.state = None  # full resync whenever it recovers
                    with error_lock:
                        errors[stream.name] = str(exc)
                        dead.append(i)
                    continue
                columns.write(i, state)

        self._run_sharded(list(enumerate(streams)), _drain)

        if rewrite_all:
            # Stream layout changed since the last poll: refresh every live
            # slot from its cached state (idle slots may have moved).
            for i, stream in enumerate(streams):
                if stream.state is not None:
                    columns.write(i, stream.state)
            self._columns_membership = membership
            self._names_cache = tuple(stream.name for stream in streams)

        if dead:
            keep = np.ones(n, dtype=bool)
            keep[dead] = False
            names = tuple(
                stream.name for stream, alive in zip(streams, keep) if alive
            )
            rate = columns.rate[:n][keep]
            total = columns.total[:n][keep]
            tmin = columns.tmin[:n][keep]
            tmax = columns.tmax[:n][keep]
            last_ts = columns.last_ts[:n][keep]
            retained = columns.retained[:n][keep]
        else:
            names = self._names_cache
            rate = columns.rate[:n].copy()
            total = columns.total[:n].copy()
            tmin = columns.tmin[:n].copy()
            tmax = columns.tmax[:n].copy()
            last_ts = columns.last_ts[:n].copy()
            retained = columns.retained[:n].copy()

        arena = self._poll_arenas(errors)
        if arena is not None:
            a_names, a_cols = arena
            names = names + a_names
            rate = np.concatenate([rate, a_cols[0]])
            total = np.concatenate([total, a_cols[1]])
            tmin = np.concatenate([tmin, a_cols[2]])
            tmax = np.concatenate([tmax, a_cols[3]])
            last_ts = np.concatenate([last_ts, a_cols[4]])
            retained = np.concatenate([retained, a_cols[5]])

        age = now - last_ts  # nan where no beat has been observed
        codes = classify_codes(rate, retained, tmin, tmax, age, self._liveness_timeout)
        return FleetSample(
            names,
            errors,
            now,
            rate=rate,
            total=total,
            target_min=tmin,
            target_max=tmax,
            last_ts=last_ts,
            age=age,
            codes=codes,
        )

    def _poll_arenas(
        self, errors: dict[str, str]
    ) -> tuple[tuple[str, ...], tuple[np.ndarray, ...]] | None:
        """Poll every arena shard through the slab path; concatenated columns.

        Returns ``(names, (rate, total, tmin, tmax, last_ts, retained))``
        covering all allocated rows of all attached arenas, or ``None`` when
        no arena is attached.  One ``snapshot_since_all`` call per slab —
        the per-row work is numpy's, not the interpreter's.  A slab that
        fails to answer (e.g. its creator unlinked it mid-poll) lands in
        ``errors`` under ``arena:<label>`` and drops out of this sample,
        mirroring how dead per-object streams are handled.
        """
        with self._lock:
            shards = list(self._arenas)
        if not shards:
            return None
        t0 = time.perf_counter()
        names: tuple[str, ...] = ()
        cols: list[tuple[np.ndarray, ...]] = []
        for shard in shards:
            try:
                fleet = shard.arena.snapshot_since_all(
                    shard.cursors, window=self._window, include_records=False
                )
            except HeartbeatError as exc:
                errors[f"arena:{shard.label}"] = str(exc)
                continue
            shard.cursors = fleet.cursors
            if fleet.rows != len(shard.names):
                shard.refresh_names()
            names = names + shard.names
            cols.append(
                (
                    fleet.rate,
                    fleet.totals,
                    fleet.target_min,
                    fleet.target_max,
                    fleet.last_timestamp,
                    fleet.retained,
                )
            )
        self._arena_seconds += time.perf_counter() - t0
        if not cols:
            return names, tuple(
                np.zeros(0, dtype=dtype)
                for dtype in (
                    np.float64, np.int64, np.float64,
                    np.float64, np.float64, np.int64,
                )
            )
        if len(cols) == 1:
            return names, cols[0]
        return names, tuple(
            np.concatenate([c[k] for c in cols]) for k in range(6)
        )

    def _poll_full(self, streams: list[_Stream], now: float) -> FleetSample:
        """The classic full-snapshot poll: every stream, whole history."""
        results: list[tuple[str, MonitorReading] | None] = [None] * len(streams)
        errors: dict[str, str] = {}
        error_lock = threading.Lock()

        def _drain(shard: list[tuple[int, _Stream]]) -> None:
            for index, stream in shard:
                try:
                    snap = stream.source()
                except HeartbeatError as exc:
                    with error_lock:
                        errors[stream.name] = str(exc)
                    continue
                results[index] = (
                    stream.name,
                    reading_from_snapshot(
                        snap,
                        now=now,
                        window=self._window,
                        liveness_timeout=self._liveness_timeout,
                    ),
                )

        self._run_sharded(list(enumerate(streams)), _drain)
        kept = [entry for entry in results if entry is not None]
        names = tuple(name for name, _ in kept)
        readings = [reading for _, reading in kept]
        arena = self._poll_arenas(errors)
        if arena is not None:
            a_names, (rate, total, tmin, tmax, last_ts, retained) = arena
            age = now - last_ts
            codes = classify_codes(
                rate, retained, tmin, tmax, age, self._liveness_timeout
            )
            names = names + a_names
            readings.extend(
                MonitorReading(
                    rate=float(rate[i]),
                    total_beats=int(total[i]),
                    target_min=float(tmin[i]),
                    target_max=float(tmax[i]),
                    last_timestamp=None if np.isnan(last_ts[i]) else float(last_ts[i]),
                    age=None if np.isnan(age[i]) else float(age[i]),
                    status=_STATUS_BY_CODE[codes[i]],
                )
                for i in range(len(a_names))
            )
        return FleetSample.from_readings(
            names=names,
            readings=readings,
            errors=errors,
            taken_at=now,
        )

    def _run_sharded(
        self,
        work: list[tuple[int, _Stream]],
        drain: Callable[[list[tuple[int, _Stream]]], None],
    ) -> None:
        """Split ``work`` round-robin over the reader shards and drain it."""
        if not work:
            return
        shards: list[list[tuple[int, _Stream]]] = [
            [] for _ in range(min(self._num_shards, len(work)))
        ]
        for j, item in enumerate(work):
            shards[j % len(shards)].append(item)
        if len(shards) == 1:
            drain(shards[0])
            return
        pool = self._ensure_pool()
        for future in [pool.submit(drain, shard) for shard in shards]:
            future.result()

    def rates(self) -> dict[str, float]:
        """Convenience: poll once and return ``{stream name: rate}``."""
        sample = self.poll()
        return {name: reading.rate for name, reading in sample}

    def lagging(self, target: float | None = None) -> list[str]:
        """Convenience: poll once and return the lagging streams, worst first."""
        return self.poll().lagging(target)

    def summary(self, q: Sequence[float] = (50.0, 90.0, 99.0)) -> FleetSummary:
        """Convenience: poll once and roll the fleet up into one summary."""
        return self.poll().summary(q)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach every stream and stop the reader pool.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            streams = list(self._streams.values())
            self._streams.clear()
            shards = list(self._arenas)
            self._arenas.clear()
            self._collectors.clear()
            self._membership += 1
            pool, self._pool = self._pool, None
        for stream in streams:
            if stream.close is not None:
                stream.close()
        for shard in shards:
            if shard.close is not None:
                shard.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "HeartbeatAggregator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise MonitorAttachError("aggregator is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._num_shards,
                    thread_name_prefix="hb-aggregator",
                )
            return self._pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatAggregator(streams={len(self)}, shards={self._num_shards}, "
            f"window={self._window})"
        )
