"""Shared-memory heartbeat storage.

The paper argues that the global heartbeat buffer "must be in a universally
accessible location such as coherent shared memory" and that "a standard must
be established specifying the components and layout of the heartbeat data
structures in memory" so external observers — other processes, the OS, even
hardware — can read them directly.  This backend is the Python analogue: a
``multiprocessing.shared_memory`` segment with a fixed binary layout that any
process on the host can attach to read-only.

Segment layout (little-endian, 8-byte aligned)
----------------------------------------------
===========  =======  ====================================================
offset       type     field
===========  =======  ====================================================
0            int64    magic (``0x48424541_54313036`` — "HBEAT106")
8            int64    layout version (currently 1)
16           int64    capacity (number of record slots)
24           int64    total beats ever written (monotonic, publication word)
32           int64    default window
40           float64  target_min
48           float64  target_max
56           int64    writer PID
64           int64    sequence counter (odd while a write is in progress)
72..128      --       reserved
128          records  ``capacity`` records of dtype ``RECORD_DTYPE``
===========  =======  ====================================================

Writes use a seqlock-style protocol: the sequence counter is incremented to an
odd value before the record slot and the total are updated and incremented
again afterwards.  Readers retry a snapshot whenever they observe an odd or
changed sequence counter, so an observer polling from another process never
sees a torn record.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
import os

import numpy as np

from repro.core.backends.base import Backend, BackendSnapshot
from repro.core.errors import BackendError, BackendFormatError
from repro.core.record import RECORD_DTYPE

__all__ = ["SharedMemoryBackend", "SharedMemoryReader", "HEADER_SIZE", "MAGIC"]

MAGIC = 0x4842454154313036
LAYOUT_VERSION = 1
HEADER_SIZE = 128

_HEADER_DTYPE = np.dtype(
    [
        ("magic", np.int64),
        ("version", np.int64),
        ("capacity", np.int64),
        ("total", np.int64),
        ("default_window", np.int64),
        ("target_min", np.float64),
        ("target_max", np.float64),
        ("writer_pid", np.int64),
        ("sequence", np.int64),
        ("reserved", np.int64, 7),
    ]
)
assert _HEADER_DTYPE.itemsize == HEADER_SIZE


def segment_size(capacity: int) -> int:
    """Total shared-memory segment size for ``capacity`` record slots."""
    return HEADER_SIZE + capacity * RECORD_DTYPE.itemsize


class _SharedLayout:
    """Views of the header and record array inside a shared-memory buffer."""

    __slots__ = ("header", "records")

    def __init__(self, buf: memoryview, capacity: int) -> None:
        self.header = np.ndarray(shape=(), dtype=_HEADER_DTYPE, buffer=buf[:HEADER_SIZE])
        self.records = np.ndarray(
            shape=(capacity,),
            dtype=RECORD_DTYPE,
            buffer=buf[HEADER_SIZE : HEADER_SIZE + capacity * RECORD_DTYPE.itemsize],
        )


class SharedMemoryBackend(Backend):
    """Writer side of the shared-memory heartbeat segment.

    Parameters
    ----------
    name:
        Name of the shared-memory segment.  Observers attach with the same
        name via :class:`SharedMemoryReader` (or
        :meth:`repro.core.monitor.HeartbeatMonitor.attach_shared_memory`).
        When omitted an OS-assigned unique name is used and exposed as
        :attr:`name`.
    capacity:
        Number of record slots in the circular history.
    """

    def __init__(self, name: str | None = None, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise BackendError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        try:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=segment_size(self.capacity)
            )
        except OSError as exc:
            raise BackendError(f"cannot create shared-memory segment: {exc}") from exc
        self.name = self._shm.name
        self._layout = _SharedLayout(self._shm.buf, self.capacity)
        header = self._layout.header
        header["magic"] = MAGIC
        header["version"] = LAYOUT_VERSION
        header["capacity"] = self.capacity
        header["total"] = 0
        header["default_window"] = 0
        header["target_min"] = 0.0
        header["target_max"] = 0.0
        header["writer_pid"] = os.getpid()
        header["sequence"] = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        header = self._layout.header
        total = int(header["total"])
        slot = total % self.capacity
        header["sequence"] = int(header["sequence"]) + 1  # odd: write in progress
        self._layout.records[slot] = (beat, timestamp, tag, thread_id)
        header["total"] = total + 1
        header["sequence"] = int(header["sequence"]) + 1  # even: write published

    def set_targets(self, target_min: float, target_max: float) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        header = self._layout.header
        header["sequence"] = int(header["sequence"]) + 1
        header["target_min"] = float(target_min)
        header["target_max"] = float(target_max)
        header["sequence"] = int(header["sequence"]) + 1

    def set_default_window(self, window: int) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        self._layout.header["default_window"] = int(window)

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        return _read_snapshot(self._layout, self.capacity, n)

    def close(self) -> None:
        """Release the segment.  The writer also unlinks it."""
        if self._closed:
            return
        self._closed = True
        # Drop views before closing the buffer, otherwise close() raises.
        self._layout = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedMemoryBackend(name={self.name!r}, capacity={self.capacity})"


class SharedMemoryReader:
    """Read-only observer attachment to a shared-memory heartbeat segment.

    Used by external observers — the scheduler in Figure 1(b) — possibly in a
    different process from the instrumented application.
    """

    def __init__(self, name: str) -> None:
        try:
            self._shm = shared_memory.SharedMemory(name=name, create=False)
        except (OSError, ValueError) as exc:
            raise BackendFormatError(
                f"cannot attach to shared-memory segment {name!r}: {exc}"
            ) from exc
        # The reader must not unregister/unlink the writer's segment when it
        # exits; only the writer owns the segment lifetime.
        try:  # pragma: no cover - platform dependent
            resource_tracker.unregister(self._shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        header_probe = np.ndarray(
            shape=(), dtype=_HEADER_DTYPE, buffer=self._shm.buf[:HEADER_SIZE]
        )
        if int(header_probe["magic"]) != MAGIC:
            self._shm.close()
            raise BackendFormatError(f"segment {name!r} is not a heartbeat segment")
        if int(header_probe["version"]) != LAYOUT_VERSION:
            self._shm.close()
            raise BackendFormatError(
                f"unsupported heartbeat segment version {int(header_probe['version'])}"
            )
        self.capacity = int(header_probe["capacity"])
        self.name = name
        self._layout = _SharedLayout(self._shm.buf, self.capacity)
        self._closed = False

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        if self._closed:
            raise BackendError("shared-memory reader is closed")
        return _read_snapshot(self._layout, self.capacity, n)

    def writer_pid(self) -> int:
        """PID of the producing process (useful for liveness checks)."""
        return int(self._layout.header["writer_pid"])

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._layout = None
            self._shm.close()

    def __enter__(self) -> "SharedMemoryReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _read_snapshot(layout: _SharedLayout, capacity: int, n: int | None) -> BackendSnapshot:
    """Seqlock-consistent snapshot of the segment."""
    header = layout.header
    for _ in range(64):
        seq_before = int(header["sequence"])
        if seq_before % 2 == 1:
            continue  # write in progress; retry
        total = int(header["total"])
        default_window = int(header["default_window"])
        tmin = float(header["target_min"])
        tmax = float(header["target_max"])
        retained = min(total, capacity)
        records = _copy_last(layout.records, total, capacity, retained)
        seq_after = int(header["sequence"])
        if seq_before == seq_after:
            if n is not None and n < records.shape[0]:
                records = records[records.shape[0] - n :]
            return BackendSnapshot(
                records=records,
                total_beats=total,
                target_min=tmin,
                target_max=tmax,
                default_window=default_window,
            )
    raise BackendError("could not obtain a consistent shared-memory snapshot")


def _copy_last(records: np.ndarray, total: int, capacity: int, count: int) -> np.ndarray:
    """Copy the last ``count`` records out of the circular array."""
    if count == 0:
        return np.empty(0, dtype=RECORD_DTYPE)
    end = total % capacity
    if total <= capacity:
        return records[total - count : total].copy()
    start = (end - count) % capacity
    if start < end:
        return records[start:end].copy()
    return np.concatenate((records[start:], records[:end]))
