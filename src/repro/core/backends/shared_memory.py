"""Shared-memory heartbeat storage.

The paper argues that the global heartbeat buffer "must be in a universally
accessible location such as coherent shared memory" and that "a standard must
be established specifying the components and layout of the heartbeat data
structures in memory" so external observers — other processes, the OS, even
hardware — can read them directly.  This backend is the Python analogue: a
``multiprocessing.shared_memory`` segment with a fixed binary layout that any
process on the host can attach to read-only.

Segment layout (little-endian, 8-byte aligned)
----------------------------------------------
===========  =======  ====================================================
offset       type     field
===========  =======  ====================================================
0            int64    magic (``0x48424541_54313036`` — "HBEAT106")
8            int64    layout version (currently 1)
16           int64    capacity (number of record slots)
24           int64    total beats ever written (monotonic, publication word)
32           int64    default window
40           float64  target_min
48           float64  target_max
56           int64    writer PID
64           int64    sequence counter (odd while a write is in progress)
72..128      --       reserved
128          records  ``capacity`` records of dtype ``RECORD_DTYPE``
===========  =======  ====================================================

Writes use a seqlock-style protocol: the sequence counter is incremented to an
odd value before the record slot and the total are updated and incremented
again afterwards.  Readers retry a snapshot whenever they observe an odd or
changed sequence counter, so an observer polling from another process never
sees a torn record.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
import mmap
import os
import sys
import time

try:  # POSIX only; Windows uses named file mappings with no resource tracker.
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX platform
    _posixshmem = None

import numpy as np

from repro.core.backends.base import (
    Backend,
    BackendSnapshot,
    DeltaSnapshot,
    SnapshotCursor,
    delta_bounds,
)
from repro.core.buffer import circular_batch_slices
from repro.core.errors import BackendError, BackendFormatError
from repro.core.record import RECORD_DTYPE

__all__ = ["SharedMemoryBackend", "SharedMemoryReader", "HEADER_SIZE", "MAGIC"]

MAGIC = 0x4842454154313036
LAYOUT_VERSION = 1
HEADER_SIZE = 128

_HEADER_DTYPE = np.dtype(
    [
        ("magic", np.int64),
        ("version", np.int64),
        ("capacity", np.int64),
        ("total", np.int64),
        ("default_window", np.int64),
        ("target_min", np.float64),
        ("target_max", np.float64),
        ("writer_pid", np.int64),
        ("sequence", np.int64),
        ("reserved", np.int64, 7),
    ]
)
assert _HEADER_DTYPE.itemsize == HEADER_SIZE


def segment_size(capacity: int) -> int:
    """Total shared-memory segment size for ``capacity`` record slots."""
    return HEADER_SIZE + capacity * RECORD_DTYPE.itemsize


def _untrack_segment(shm: shared_memory.SharedMemory) -> None:
    """Remove ``shm`` from this process's resource tracker, if present.

    The tracker assumes whoever registered a segment will also unlink it; a
    writer whose segment was already unlinked elsewhere must deregister
    explicitly or the tracker warns about a leaked segment at process exit.
    """
    try:  # pragma: no cover - platform dependent
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class _PosixAttachment:
    """Read/write mapping of an existing POSIX segment, tracker-free.

    Duck-types the slice of :class:`multiprocessing.shared_memory.SharedMemory`
    the readers use (``buf``, ``name``, ``close``) while opening the segment
    with ``shm_open`` + ``mmap`` directly, so nothing is ever registered with
    the resource tracker.
    """

    __slots__ = ("name", "_name", "_mmap", "buf")

    def __init__(self, name: str) -> None:
        self.name = name
        self._name = name if name.startswith("/") else "/" + name
        fd = _posixshmem.shm_open(self._name, os.O_RDWR, mode=0)
        try:
            size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        self.buf: memoryview | None = memoryview(self._mmap)

    def close(self) -> None:
        if self.buf is not None:
            self.buf.release()
            self.buf = None
            self._mmap.close()


def _attach_untracked(name: str):
    """Attach to an existing segment without registering it for cleanup.

    Only the writer owns a segment's lifetime.  Python < 3.13 registers
    *every* mapping with the resource tracker, and the tracker — which may be
    shared with the writer's process — keeps one cache entry per name, so a
    reader that registers and later unregisters clobbers the writer's entry
    and turns the writer's eventual unlink into a tracker ``KeyError``.
    Keeping readers entirely off the tracker's books (what ``track=False``
    does natively from 3.13 on) avoids both that and the converse leak.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    if _posixshmem is not None:
        return _PosixAttachment(name)
    # Windows named mappings are not resource-tracked; a plain attach is safe.
    return shared_memory.SharedMemory(name=name, create=False)  # pragma: no cover


class _SharedLayout:
    """Views of the header and record array inside a shared-memory buffer."""

    __slots__ = ("header", "records")

    def __init__(self, buf: memoryview, capacity: int) -> None:
        self.header = np.ndarray(shape=(), dtype=_HEADER_DTYPE, buffer=buf[:HEADER_SIZE])
        self.records = np.ndarray(
            shape=(capacity,),
            dtype=RECORD_DTYPE,
            buffer=buf[HEADER_SIZE : HEADER_SIZE + capacity * RECORD_DTYPE.itemsize],
        )


class SharedMemoryBackend(Backend):
    """Writer side of the shared-memory heartbeat segment.

    Parameters
    ----------
    name:
        Name of the shared-memory segment.  Observers attach with the same
        name via :class:`SharedMemoryReader` (or
        :meth:`repro.core.monitor.HeartbeatMonitor.attach_shared_memory`).
        When omitted an OS-assigned unique name is used and exposed as
        :attr:`name`.
    capacity:
        Number of record slots in the circular history.
    """

    def __init__(self, name: str | None = None, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise BackendError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        try:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=segment_size(self.capacity)
            )
        except OSError as exc:
            raise BackendError(f"cannot create shared-memory segment: {exc}") from exc
        self.name = self._shm.name
        self._layout = _SharedLayout(self._shm.buf, self.capacity)
        header = self._layout.header
        header["magic"] = MAGIC
        header["version"] = LAYOUT_VERSION
        header["capacity"] = self.capacity
        header["total"] = 0
        header["default_window"] = 0
        header["target_min"] = 0.0
        header["target_max"] = 0.0
        header["writer_pid"] = os.getpid()
        header["sequence"] = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        header = self._layout.header
        total = int(header["total"])
        slot = total % self.capacity
        header["sequence"] = int(header["sequence"]) + 1  # odd: write in progress
        self._layout.records[slot] = (beat, timestamp, tag, thread_id)
        header["total"] = total + 1
        header["sequence"] = int(header["sequence"]) + 1  # even: write published

    def append_many(self, records: np.ndarray) -> None:
        """Publish a whole batch of records under a single seqlock cycle.

        Observers either see the segment before the batch or after all of it;
        the per-record protocol would otherwise force a reader racing with a
        large batch to retry once per record.
        """
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        n = int(records.shape[0])
        if n == 0:
            return
        header = self._layout.header
        total = int(header["total"])
        placement = circular_batch_slices(total, self.capacity, n)
        header["sequence"] = int(header["sequence"]) + 1  # odd: write in progress
        for destination, source in placement:
            self._layout.records[destination] = records[source]
        header["total"] = total + n
        header["sequence"] = int(header["sequence"]) + 1  # even: write published

    def set_targets(self, target_min: float, target_max: float) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        header = self._layout.header
        header["sequence"] = int(header["sequence"]) + 1
        header["target_min"] = float(target_min)
        header["target_max"] = float(target_max)
        header["sequence"] = int(header["sequence"]) + 1

    def set_default_window(self, window: int) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        header = self._layout.header
        header["sequence"] = int(header["sequence"]) + 1
        header["default_window"] = int(window)
        header["sequence"] = int(header["sequence"]) + 1

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        return _read_snapshot(self._layout, self.capacity, n)

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        return _read_delta(self._layout, self.capacity, cursor)

    def version(self) -> tuple[int, int]:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        header = self._layout.header
        return (int(header["total"]), int(header["sequence"]))

    def close(self) -> None:
        """Release the segment.  The writer also unlinks it."""
        if self._closed:
            return
        self._closed = True
        # Drop views before closing the buffer, otherwise close() raises.
        self._layout = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            # Someone else already unlinked the segment.  unlink() only
            # deregisters on success, so deregister explicitly or the
            # resource tracker reports a leaked segment at process exit.
            _untrack_segment(self._shm)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedMemoryBackend(name={self.name!r}, capacity={self.capacity})"


class SharedMemoryReader:
    """Read-only observer attachment to a shared-memory heartbeat segment.

    Used by external observers — the scheduler in Figure 1(b) — possibly in a
    different process from the instrumented application.
    """

    def __init__(self, name: str) -> None:
        try:
            # Attach untracked: only the writer owns the segment lifetime, so
            # a reader must never unlink it (or warn about it) on exit.
            self._shm = _attach_untracked(name)
        except (OSError, ValueError) as exc:
            raise BackendFormatError(
                f"cannot attach to shared-memory segment {name!r}: {exc}"
            ) from exc
        header_probe = np.ndarray(
            shape=(), dtype=_HEADER_DTYPE, buffer=self._shm.buf[:HEADER_SIZE]
        )
        if int(header_probe["magic"]) != MAGIC:
            self._shm.close()
            raise BackendFormatError(f"segment {name!r} is not a heartbeat segment")
        if int(header_probe["version"]) != LAYOUT_VERSION:
            self._shm.close()
            raise BackendFormatError(
                f"unsupported heartbeat segment version {int(header_probe['version'])}"
            )
        self.capacity = int(header_probe["capacity"])
        self.name = name
        self._layout = _SharedLayout(self._shm.buf, self.capacity)
        self._closed = False

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        if self._closed:
            raise BackendError("shared-memory reader is closed")
        return _read_snapshot(self._layout, self.capacity, n)

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        """Seqlock-consistent read of only the ring region unseen by ``cursor``."""
        if self._closed:
            raise BackendError("shared-memory reader is closed")
        return _read_delta(self._layout, self.capacity, cursor)

    def version(self) -> tuple[int, int]:
        """Cheap change token: ``(total, sequence)`` read without the seqlock.

        An in-progress write leaves the sequence odd, which can never equal a
        previously returned (even) value — so "unchanged" is always safe to
        trust and "changed" merely costs one delta read.
        """
        if self._closed:
            raise BackendError("shared-memory reader is closed")
        header = self._layout.header
        return (int(header["total"]), int(header["sequence"]))

    def writer_pid(self) -> int:
        """PID of the producing process (useful for liveness checks)."""
        return int(self._layout.header["writer_pid"])

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._layout = None
            self._shm.close()

    def __enter__(self) -> "SharedMemoryReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _seqlock_read(layout: _SharedLayout, capacity: int, copy):
    """Run one seqlock-consistent read of the segment.

    ``copy(total, default_window, tmin, tmax, retained)`` performs the
    read-side record copy against a consistent header capture and returns
    the result; the scaffold retries whenever the writer's sequence counter
    moved (or was odd) around the copy.  Shared by the full-snapshot and
    delta reads so the retry/backoff policy lives in exactly one place.
    """
    header = layout.header
    for attempt in range(256):
        if attempt:
            # Yield so a writer mid-batch (possibly sharing our GIL) can
            # publish; escalate to a real sleep if it keeps winning the race.
            time.sleep(0.0001 if attempt % 32 == 31 else 0)
        seq_before = int(header["sequence"])
        if seq_before % 2 == 1:
            continue  # write in progress; retry
        total = int(header["total"])
        default_window = int(header["default_window"])
        tmin = float(header["target_min"])
        tmax = float(header["target_max"])
        retained = min(total, capacity)
        result = copy(total, default_window, tmin, tmax, retained)
        if int(header["sequence"]) == seq_before:
            return result
    raise BackendError("could not obtain a consistent shared-memory read")


def _read_snapshot(layout: _SharedLayout, capacity: int, n: int | None) -> BackendSnapshot:
    """Seqlock-consistent snapshot of the segment."""

    def copy(total, default_window, tmin, tmax, retained):
        records = _copy_last(layout.records, total, capacity, retained)
        if n is not None and n < records.shape[0]:
            records = records[records.shape[0] - n :]
        return BackendSnapshot(
            records=records,
            total_beats=total,
            target_min=tmin,
            target_max=tmax,
            default_window=default_window,
        )

    return _seqlock_read(layout, capacity, copy)


def _read_delta(
    layout: _SharedLayout, capacity: int, cursor: SnapshotCursor | None
) -> tuple[DeltaSnapshot, SnapshotCursor]:
    """Seqlock-consistent delta: copies only the records unseen by ``cursor``.

    Falls back to a full read (``resync=True``) when the writer lapped the
    cursor — more beats arrived than the ring retains — or when the cursor is
    from a segment generation we cannot reconcile (``cursor.total`` ahead of
    the segment's own counter).
    """

    def copy(total, default_window, tmin, tmax, retained):
        included, gap, resync = delta_bounds(cursor, total, retained)
        records = _copy_last(layout.records, total, capacity, included)
        delta = DeltaSnapshot(
            records=records,
            total_beats=total,
            retained=retained,
            target_min=tmin,
            target_max=tmax,
            default_window=default_window,
            gap=gap,
            resync=resync,
        )
        return delta, SnapshotCursor(total=total)

    return _seqlock_read(layout, capacity, copy)


def _copy_last(records: np.ndarray, total: int, capacity: int, count: int) -> np.ndarray:
    """Copy the last ``count`` records out of the circular array."""
    if count == 0:
        return np.empty(0, dtype=RECORD_DTYPE)
    end = total % capacity
    if total <= capacity:
        return records[total - count : total].copy()
    start = (end - count) % capacity
    if start < end:
        return records[start:end].copy()
    return np.concatenate((records[start:], records[:end]))
