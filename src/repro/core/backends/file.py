"""File-backed heartbeat storage.

This backend mirrors the paper's reference implementation: "When the
HB_heartbeat function is called, a new entry containing a timestamp, tag and
thread ID is written into a file. ... The target heart rates are also written
into the appropriate file so that the external service can access them."

Layout
------
The log is a plain-text file.  The first line is a header carrying the
format magic, version, default window and the published targets; it is
rewritten in place (the header line is padded to a fixed width so it can be
updated without rewriting the body).  Every subsequent line is one heartbeat::

    beat timestamp tag thread_id

The whole history is kept in the file — like the reference implementation,
"HB_get_history can support any value for n because the entire heartbeat
history is kept in the file" — while in-memory reads still honour the
retained-window semantics of the other backends via the ``capacity`` used for
snapshots.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core.backends.base import Backend, BackendSnapshot
from repro.core.errors import BackendError, BackendFormatError
from repro.core.record import RECORD_DTYPE

__all__ = ["FileBackend", "read_heartbeat_log"]

_MAGIC = "HBLOG"
_VERSION = 1
#: Fixed width of the header line (including newline) so targets can be
#: updated in place without shifting the record lines that follow it.
_HEADER_WIDTH = 128


def _format_header(default_window: int, target_min: float, target_max: float) -> bytes:
    text = f"{_MAGIC} v{_VERSION} window={default_window} min={target_min!r} max={target_max!r}"
    if len(text) >= _HEADER_WIDTH:
        raise BackendError("heartbeat log header overflow")
    return (text + " " * (_HEADER_WIDTH - 1 - len(text)) + "\n").encode("ascii")


def _parse_header(line: str) -> tuple[int, float, float]:
    fields = line.split()
    if len(fields) < 5 or fields[0] != _MAGIC:
        raise BackendFormatError(f"not a heartbeat log header: {line[:40]!r}")
    if fields[1] != f"v{_VERSION}":
        raise BackendFormatError(f"unsupported heartbeat log version: {fields[1]!r}")
    try:
        window = int(fields[2].split("=", 1)[1])
        tmin = float(fields[3].split("=", 1)[1])
        tmax = float(fields[4].split("=", 1)[1])
    except (IndexError, ValueError) as exc:  # pragma: no cover - defensive
        raise BackendFormatError(f"malformed heartbeat log header: {line!r}") from exc
    return window, tmin, tmax


class FileBackend(Backend):
    """Heartbeat storage in a plain-text log file readable by any process."""

    def __init__(self, path: str | os.PathLike[str], capacity: int = 65536) -> None:
        self.path = Path(path)
        self.capacity = int(capacity)
        self._target_min = 0.0
        self._target_max = 0.0
        self._default_window = 0
        self._total = 0
        try:
            self._fh = open(self.path, "w+b", buffering=0)
            self._fh.write(_format_header(0, 0.0, 0.0))
        except OSError as exc:
            raise BackendError(f"cannot create heartbeat log {self.path}: {exc}") from exc
        self._closed = False

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        if self._closed:
            raise BackendError("heartbeat log is closed")
        line = f"{beat} {timestamp!r} {tag} {thread_id}\n".encode("ascii")
        self._fh.write(line)
        self._total += 1

    def append_many(self, records: np.ndarray) -> None:
        if self._closed:
            raise BackendError("heartbeat log is closed")
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        if records.shape[0] == 0:
            return
        # tolist() materialises python scalars once; per-row structured-array
        # field access would dominate the batch otherwise.
        lines = "".join(
            f"{beat} {timestamp!r} {tag} {thread_id}\n"
            for beat, timestamp, tag, thread_id in records.tolist()
        )
        self._fh.write(lines.encode("ascii"))
        self._total += int(records.shape[0])

    def set_targets(self, target_min: float, target_max: float) -> None:
        self._target_min = float(target_min)
        self._target_max = float(target_max)
        self._rewrite_header()

    def set_default_window(self, window: int) -> None:
        self._default_window = int(window)
        self._rewrite_header()

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        window, tmin, tmax, records = read_heartbeat_log(self.path)
        if n is not None and n < len(records):
            records = records[len(records) - n :]
        elif len(records) > self.capacity:
            records = records[len(records) - self.capacity :]
        return BackendSnapshot(
            records=records,
            total_beats=self._total if not self._closed else int(records.shape[0]),
            target_min=tmin,
            target_max=tmax,
            default_window=window,
        )

    def close(self) -> None:
        if not self._closed:
            self._fh.close()
            self._closed = True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _rewrite_header(self) -> None:
        if self._closed:
            raise BackendError("heartbeat log is closed")
        pos = self._fh.tell()
        try:
            self._fh.seek(0)
            self._fh.write(
                _format_header(self._default_window, self._target_min, self._target_max)
            )
        finally:
            self._fh.seek(pos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileBackend(path={str(self.path)!r}, total={self._total})"


def read_heartbeat_log(path: str | os.PathLike[str]) -> tuple[int, float, float, np.ndarray]:
    """Parse a heartbeat log file.

    Returns ``(default_window, target_min, target_max, records)`` where
    ``records`` is a structured array with dtype
    :data:`repro.core.record.RECORD_DTYPE`.  This is the entry point used by
    external observers (see :class:`repro.core.monitor.HeartbeatMonitor`) to
    read a Heartbeat-enabled program's log, exactly like the external services
    in the paper's reference implementation.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="ascii")
    except OSError as exc:
        raise BackendError(f"cannot read heartbeat log {path}: {exc}") from exc
    lines = text.splitlines()
    if not lines:
        raise BackendFormatError(f"empty heartbeat log: {path}")
    window, tmin, tmax = _parse_header(lines[0])
    body = [ln for ln in lines[1:] if ln.strip()]
    records = np.empty(len(body), dtype=RECORD_DTYPE)
    for i, line in enumerate(body):
        fields = line.split()
        if len(fields) != 4:
            raise BackendFormatError(f"malformed heartbeat record line: {line!r}")
        try:
            records[i] = (int(fields[0]), float(fields[1]), int(fields[2]), int(fields[3]))
        except ValueError as exc:
            raise BackendFormatError(f"malformed heartbeat record line: {line!r}") from exc
    return window, tmin, tmax, records
