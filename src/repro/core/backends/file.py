"""File-backed heartbeat storage.

This backend mirrors the paper's reference implementation: "When the
HB_heartbeat function is called, a new entry containing a timestamp, tag and
thread ID is written into a file. ... The target heart rates are also written
into the appropriate file so that the external service can access them."

Layout
------
The log is a plain-text file.  The first line is a header carrying the
format magic, version, default window and the published targets; it is
rewritten in place (the header line is padded to a fixed width so it can be
updated without rewriting the body).  Every subsequent line is one heartbeat::

    beat timestamp tag thread_id

The whole history is kept in the file — like the reference implementation,
"HB_get_history can support any value for n because the entire heartbeat
history is kept in the file" — while in-memory reads still honour the
retained-window semantics of the other backends via the ``capacity`` used for
snapshots.

Write buffering
---------------
Appends go through a userspace write buffer instead of issuing one syscall
per beat; the buffer drains on :meth:`FileBackend.flush`, on every snapshot
taken through the backend object, on header rewrites, on close, and — so
beats cannot sit invisible to external observers for longer than
``flush_interval`` seconds — whenever an append lands after that long
without a drain, with a one-shot timer picking up the tail of a burst the
producer goes quiet after.  A fast producer amortizes the syscall over
~64 KiB of lines; a 1-beat/s producer effectively stays write-through,
keeping cross-process liveness detection honest.  Pass ``buffered=False``
to restore unconditional write-through appends.

Incremental reads
-----------------
:func:`tail_heartbeat_log` reads a log *incrementally*: a
:class:`~repro.core.backends.base.SnapshotCursor` persists the byte offset of
the first unread record line (plus the file's inode), so a poll parses only
appended lines instead of the whole history.  Truncation (the file shrank
below the cursor) and rotation (the inode changed) are detected and answered
with a full resync.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.backends.base import (
    Backend,
    BackendSnapshot,
    DeltaSnapshot,
    SnapshotCursor,
)
from repro.core.errors import BackendError, BackendFormatError
from repro.core.record import RECORD_DTYPE

__all__ = ["FileBackend", "HEADER_WIDTH", "read_heartbeat_log", "tail_heartbeat_log"]

_MAGIC = "HBLOG"
_VERSION = 1
#: Fixed width of the header line (including newline) so targets can be
#: updated in place without shifting the record lines that follow it.
#: Public so observers can fingerprint the header region directly.
HEADER_WIDTH = 128
_HEADER_WIDTH = HEADER_WIDTH
#: Userspace write-buffer size for buffered appends.
_WRITE_BUFFER = 1 << 16
#: Bytes re-read before a resuming cursor to verify the last consumed line
#: is still in place (record lines are well under this long).
_VERIFY_WINDOW = 256


def _format_header(default_window: int, target_min: float, target_max: float) -> bytes:
    text = f"{_MAGIC} v{_VERSION} window={default_window} min={target_min!r} max={target_max!r}"
    if len(text) >= _HEADER_WIDTH:
        raise BackendError("heartbeat log header overflow")
    return (text + " " * (_HEADER_WIDTH - 1 - len(text)) + "\n").encode("ascii")


def _parse_header(line: str) -> tuple[int, float, float]:
    fields = line.split()
    if len(fields) < 5 or fields[0] != _MAGIC:
        raise BackendFormatError(f"not a heartbeat log header: {line[:40]!r}")
    if fields[1] != f"v{_VERSION}":
        raise BackendFormatError(f"unsupported heartbeat log version: {fields[1]!r}")
    try:
        window = int(fields[2].split("=", 1)[1])
        tmin = float(fields[3].split("=", 1)[1])
        tmax = float(fields[4].split("=", 1)[1])
    except (IndexError, ValueError) as exc:  # pragma: no cover - defensive
        raise BackendFormatError(f"malformed heartbeat log header: {line!r}") from exc
    return window, tmin, tmax


def _ends_with_beat(chunk: bytes, beat: int) -> bool:
    """True when ``chunk`` ends in a newline-terminated line whose first
    field is the integer ``beat`` — the continuation check for file cursors."""
    if not chunk.endswith(b"\n"):
        return False
    fields = chunk[:-1].rsplit(b"\n", 1)[-1].split()
    if not fields:
        return False
    try:
        return int(fields[0]) == beat
    except ValueError:
        return False


def _parse_record_lines(lines: list[str]) -> np.ndarray:
    """Parse record lines into a structured array (blank lines skipped)."""
    body = [ln for ln in lines if ln.strip()]
    records = np.empty(len(body), dtype=RECORD_DTYPE)
    for i, line in enumerate(body):
        fields = line.split()
        if len(fields) != 4:
            raise BackendFormatError(f"malformed heartbeat record line: {line!r}")
        try:
            records[i] = (int(fields[0]), float(fields[1]), int(fields[2]), int(fields[3]))
        except ValueError as exc:
            raise BackendFormatError(f"malformed heartbeat record line: {line!r}") from exc
    return records


class FileBackend(Backend):
    """Heartbeat storage in a plain-text log file readable by any process.

    ``buffered`` (default True) batches appended lines in a userspace buffer
    — one ``write`` syscall per ~64 KiB instead of one per beat.  Call
    :meth:`flush` to make buffered beats visible to other processes at a
    moment of your choosing; snapshot reads through this object flush
    automatically, and an append arriving more than ``flush_interval``
    seconds after the last drain flushes too, bounding how stale an external
    observer's view of a slow producer can get.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        capacity: int = 65536,
        *,
        buffered: bool = True,
        flush_interval: float = 0.25,
    ) -> None:
        self.path = Path(path)
        self.capacity = int(capacity)
        self.buffered = bool(buffered)
        self.flush_interval = float(flush_interval)
        self._last_flush = time.monotonic()
        self._flush_timer: threading.Timer | None = None
        self._target_min = 0.0
        self._target_max = 0.0
        self._default_window = 0
        self._total = 0
        self._meta_version = 0
        try:
            self._fh = open(
                self.path, "w+b", buffering=_WRITE_BUFFER if self.buffered else 0
            )
            self._fh.write(_format_header(0, 0.0, 0.0))
            self._fh.flush()  # a valid (empty) log must exist before any flush
        except OSError as exc:
            raise BackendError(f"cannot create heartbeat log {self.path}: {exc}") from exc
        self._closed = False

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        if self._closed:
            raise BackendError("heartbeat log is closed")
        line = f"{beat} {timestamp!r} {tag} {thread_id}\n".encode("ascii")
        self._fh.write(line)
        self._total += 1
        self._maybe_flush()

    def append_many(self, records: np.ndarray) -> None:
        if self._closed:
            raise BackendError("heartbeat log is closed")
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        if records.shape[0] == 0:
            return
        # tolist() materialises python scalars once; per-row structured-array
        # field access would dominate the batch otherwise.
        lines = "".join(
            f"{beat} {timestamp!r} {tag} {thread_id}\n"
            for beat, timestamp, tag, thread_id in records.tolist()
        )
        self._fh.write(lines.encode("ascii"))
        self._total += int(records.shape[0])
        self._maybe_flush()

    def flush(self) -> None:
        """Drain the write buffer so other processes see every beat so far."""
        if not self._closed:
            self._fh.flush()
            self._last_flush = time.monotonic()

    def _maybe_flush(self) -> None:
        """Bound observer staleness after every append.

        An append landing ``flush_interval`` after the last drain flushes
        inline (so a slow producer is effectively write-through); otherwise
        a one-shot timer is armed to drain the tail of a burst, so beats
        cannot sit invisible past the interval even if the producer goes
        quiet right after them.
        """
        if not self.buffered or self.flush_interval <= 0:
            return
        now = time.monotonic()
        if now - self._last_flush >= self.flush_interval:
            self._fh.flush()
            self._last_flush = now
            return
        if self._flush_timer is None:
            # Benign race: two appends may both arm a timer; the extra
            # flush of an already-drained buffer is a no-op.
            timer = threading.Timer(
                self.flush_interval - (now - self._last_flush), self._timer_flush
            )
            timer.daemon = True
            self._flush_timer = timer
            timer.start()

    def _timer_flush(self) -> None:
        self._flush_timer = None
        try:
            if not self._closed:
                # Python's buffered file objects serialise flush() against
                # concurrent write() internally, so draining from the timer
                # thread is safe alongside producer appends.
                self._fh.flush()
                self._last_flush = time.monotonic()
        except (OSError, ValueError):  # pragma: no cover - closed mid-flush
            pass

    def set_targets(self, target_min: float, target_max: float) -> None:
        self._target_min = float(target_min)
        self._target_max = float(target_max)
        self._meta_version += 1
        self._rewrite_header()

    def set_default_window(self, window: int) -> None:
        self._default_window = int(window)
        self._meta_version += 1
        self._rewrite_header()

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        self.flush()
        window, tmin, tmax, records = read_heartbeat_log(self.path)
        if n is not None and n < len(records):
            records = records[len(records) - n :]
        elif len(records) > self.capacity:
            records = records[len(records) - self.capacity :]
        return BackendSnapshot(
            records=records,
            total_beats=self._total if not self._closed else int(records.shape[0]),
            target_min=tmin,
            target_max=tmax,
            default_window=window,
        )

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        """Tail-read only the lines appended since ``cursor``."""
        self.flush()
        return tail_heartbeat_log(self.path, cursor, capacity=self.capacity)

    def version(self) -> tuple[int, int]:
        return (self._total, self._meta_version)

    def close(self) -> None:
        if not self._closed:
            timer = self._flush_timer
            if timer is not None:
                timer.cancel()
            self._fh.close()
            self._closed = True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _rewrite_header(self) -> None:
        if self._closed:
            raise BackendError("heartbeat log is closed")
        self._fh.flush()
        pos = self._fh.tell()
        try:
            self._fh.seek(0)
            self._fh.write(
                _format_header(self._default_window, self._target_min, self._target_max)
            )
            self._fh.flush()
        finally:
            self._fh.seek(pos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileBackend(path={str(self.path)!r}, total={self._total})"


def read_heartbeat_log(path: str | os.PathLike[str]) -> tuple[int, float, float, np.ndarray]:
    """Parse a heartbeat log file.

    Returns ``(default_window, target_min, target_max, records)`` where
    ``records`` is a structured array with dtype
    :data:`repro.core.record.RECORD_DTYPE`.  This is the entry point used by
    external observers (see :class:`repro.core.monitor.HeartbeatMonitor`) to
    read a Heartbeat-enabled program's log, exactly like the external services
    in the paper's reference implementation.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="ascii")
    except OSError as exc:
        raise BackendError(f"cannot read heartbeat log {path}: {exc}") from exc
    lines = text.splitlines()
    if not lines:
        raise BackendFormatError(f"empty heartbeat log: {path}")
    window, tmin, tmax = _parse_header(lines[0])
    records = _parse_record_lines(lines[1:])
    return window, tmin, tmax, records


def tail_heartbeat_log(
    path: str | os.PathLike[str],
    cursor: SnapshotCursor | None = None,
    *,
    capacity: int | None = None,
) -> tuple[DeltaSnapshot, SnapshotCursor]:
    """Incrementally read a heartbeat log from a byte-offset cursor.

    Parses only the record lines appended after ``cursor.position``; a poll
    of a quiet log costs one ``stat`` plus one header read regardless of how
    deep the history is.  A missing or stale cursor, a truncated file
    (``size < position``) or a rotated file (inode changed) triggers a full
    re-read with ``resync=True`` — as does a producer restarting on the same
    path (same inode, truncate-and-regrow), which is caught by re-checking
    that the last consumed line still ends at ``cursor.position`` with the
    beat number the cursor recorded.  A trailing partial line (a producer's
    buffered write can land mid-line) is left for the next poll: the returned
    cursor only ever advances past complete lines.

    ``capacity`` clips the records carried by a resync delta (and the
    ``retained`` accounting) the way :meth:`FileBackend.snapshot` clips its
    history; observers that want the whole file pass ``None``.
    """
    path = Path(path)
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise BackendError(f"cannot read heartbeat log {path}: {exc}") from exc
    with fh:
        stat = os.fstat(fh.fileno())
        resync = (
            cursor is None
            or cursor.stamp != stat.st_ino
            or cursor.position < _HEADER_WIDTH
            or stat.st_size < cursor.position
        )
        if not resync and cursor.position > _HEADER_WIDTH:
            # Same inode and the file is at least as long as we left it —
            # but a producer restarting on this path truncates in place and
            # may have regrown past the stale offset.  Genuine continuations
            # still have our last consumed line ending exactly at the
            # cursor, carrying the beat number the cursor recorded.
            back = min(cursor.position - _HEADER_WIDTH, _VERIFY_WINDOW)
            fh.seek(cursor.position - back)
            chunk = fh.read(back)
            resync = not _ends_with_beat(chunk, cursor.check)
        start = _HEADER_WIDTH if resync else cursor.position
        base_total = 0 if resync else cursor.total
        fh.seek(0)
        header = fh.read(_HEADER_WIDTH)
        if len(header) < _HEADER_WIDTH:
            raise BackendFormatError(f"empty heartbeat log: {path}")
        window, tmin, tmax = _parse_header(header.decode("ascii", errors="replace"))
        fh.seek(start)
        data = fh.read()
    consumed = data.rfind(b"\n") + 1  # 0 when no complete line arrived yet
    try:
        records = _parse_record_lines(data[:consumed].decode("ascii").splitlines())
    except UnicodeDecodeError as exc:
        raise BackendFormatError(f"non-ascii bytes in heartbeat log {path}") from exc
    total = base_total + int(records.shape[0])
    if records.shape[0]:
        last_beat = int(records[-1]["beat"])
    else:
        last_beat = -1 if resync else cursor.check
    new_cursor = SnapshotCursor(
        total=total, position=start + consumed, stamp=stat.st_ino, check=last_beat
    )
    retained = total if capacity is None else min(total, capacity)
    if resync and capacity is not None and records.shape[0] > capacity:
        records = records[records.shape[0] - capacity :]
    delta = DeltaSnapshot(
        records=records,
        total_beats=total,
        retained=retained,
        target_min=tmin,
        target_max=tmax,
        default_window=window,
        gap=0,
        resync=resync,
    )
    return delta, new_cursor
