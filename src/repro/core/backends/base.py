"""Backend interface shared by all heartbeat storage implementations."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.record import RECORD_DTYPE, HeartbeatRecord, array_to_records

__all__ = [
    "Backend",
    "BackendSnapshot",
    "DeltaSnapshot",
    "SnapshotCursor",
    "delta_bounds",
    "delta_from_snapshot",
]


@dataclass(frozen=True, slots=True)
class SnapshotCursor:
    """Opaque resume point for :meth:`Backend.snapshot_since`.

    ``total`` is the number of beats the holder has observed — cursors are
    keyed on the monotonically increasing beat sequence, so every backend can
    compute "what is new" with integer arithmetic.  ``position``, ``stamp``
    and ``check`` are backend-specific resume hints (the file backend stores
    the byte offset of the next unread record line, the log file's inode and
    the beat number of the last consumed record; ring-buffer backends leave
    them at their defaults).  Treat cursors as opaque values: obtain them
    from ``snapshot_since`` and hand them back unchanged.
    """

    total: int
    position: int = 0
    stamp: int = 0
    check: int = -1


@dataclass(frozen=True, slots=True)
class DeltaSnapshot:
    """What changed in a backend since a :class:`SnapshotCursor` was taken.

    Attributes
    ----------
    records:
        Structured array (dtype :data:`repro.core.record.RECORD_DTYPE`) of
        the records that became visible since the cursor, in production
        order.  When :attr:`resync` is true this is the *full* retained
        history instead of an increment.
    total_beats, target_min, target_max, default_window:
        Same meaning as on :class:`BackendSnapshot`; always current, so a
        consumer refreshes goals even from an empty delta.
    retained:
        Number of records the backend currently retains.  A consumer
        replaying deltas trims its reconstruction to the last ``retained``
        records to mirror the backend's eviction.
    gap:
        Beats produced since the cursor that are *not* in ``records``
        because the writer overwrote them before this read (a slow reader
        lapped by the producer, or a truncated log).  ``gap > 0`` always
        comes with ``resync=True``.
    resync:
        True when ``records`` is the full retained history rather than an
        increment — the consumer must replace, not append.  Set on the first
        read (no cursor), on overwrite gaps, and on file truncation or
        rotation.

    Replay rule: ``state = records if resync else concat(state, records)``,
    then trim ``state`` to its last ``retained`` records.  The invariant the
    contract tests enforce is that this reconstruction equals
    ``backend.snapshot().records`` at every step.
    """

    records: np.ndarray
    total_beats: int
    retained: int
    target_min: float
    target_max: float
    default_window: int
    gap: int = 0
    resync: bool = False

    @property
    def new(self) -> int:
        """Number of records carried by this delta."""
        return int(self.records.shape[0])


def delta_bounds(
    cursor: SnapshotCursor | None, total: int, retained: int
) -> tuple[int, int, bool]:
    """``(included, gap, resync)`` for a delta read against ``cursor``.

    The one statement of the cursor arithmetic every ring-retention backend
    shares: a missing cursor or one ahead of the stream (restart) resyncs in
    full; otherwise the delta carries the newest ``included`` of the ``new``
    beats, and any overwritten remainder is a ``gap`` (which forces resync).
    """
    if cursor is None or cursor.total > total:
        return retained, 0, True
    new = total - cursor.total
    included = min(new, retained)
    gap = new - included
    return included, gap, gap > 0


def delta_from_snapshot(
    snap: BackendSnapshot, cursor: SnapshotCursor | None
) -> tuple[DeltaSnapshot, SnapshotCursor]:
    """Derive a delta from a full snapshot (the generic fallback path).

    Backends that can read incrementally override
    :meth:`Backend.snapshot_since` instead; this helper only guarantees the
    delta *contract* on top of any full :meth:`Backend.snapshot` read, so
    third-party backends are delta-correct without changes (at full-read
    cost).
    """
    included, gap, resync = delta_bounds(cursor, snap.total_beats, snap.retained)
    delta = DeltaSnapshot(
        records=snap.records[snap.retained - included :],
        total_beats=snap.total_beats,
        retained=snap.retained,
        target_min=snap.target_min,
        target_max=snap.target_max,
        default_window=snap.default_window,
        gap=gap,
        resync=resync,
    )
    return delta, SnapshotCursor(total=snap.total_beats)


@dataclass(frozen=True, slots=True)
class BackendSnapshot:
    """A consistent read of a backend's state taken at one instant.

    Attributes
    ----------
    records:
        Structured array (dtype :data:`repro.core.record.RECORD_DTYPE`) of the
        retained history in production order.
    total_beats:
        Total number of heartbeats ever registered.
    target_min, target_max:
        Published target heart-rate range; ``0.0`` for both when no target has
        been set.
    default_window:
        The producer's default rate window.
    """

    records: np.ndarray
    total_beats: int
    target_min: float
    target_max: float
    default_window: int

    def as_records(self) -> list[HeartbeatRecord]:
        """Return the retained history as :class:`HeartbeatRecord` objects."""
        return array_to_records(self.records)

    @property
    def retained(self) -> int:
        return int(self.records.shape[0])


class Backend(abc.ABC):
    """Abstract storage backend for a single heartbeat stream.

    A backend is written by exactly one producer (the instrumented
    application, possibly from several threads serialised by the owning
    :class:`~repro.core.heartbeat.Heartbeat`) and read by any number of
    observers.
    """

    #: Capacity of the retained history window.
    capacity: int

    @abc.abstractmethod
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        """Persist one heartbeat record."""

    def append_many(self, records: np.ndarray) -> None:
        """Persist a batch of heartbeat records in production order.

        ``records`` is a structured array of dtype
        :data:`repro.core.record.RECORD_DTYPE`.  Backends override this with
        a vectorized implementation (one slab write, one seqlock cycle, one
        file write); the base implementation falls back to per-record
        :meth:`append` so third-party backends stay correct without changes.
        """
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        for row in records:
            self.append(
                int(row["beat"]), float(row["timestamp"]), int(row["tag"]), int(row["thread_id"])
            )

    @abc.abstractmethod
    def set_targets(self, target_min: float, target_max: float) -> None:
        """Publish the application's target heart-rate range."""

    @abc.abstractmethod
    def set_default_window(self, window: int) -> None:
        """Publish the producer's default rate window."""

    @abc.abstractmethod
    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        """Return a consistent snapshot of the last ``n`` records (all when None)."""

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        """Return what changed since ``cursor`` plus a new cursor.

        The base implementation derives the delta from a full
        :meth:`snapshot` read, which is correct for any backend but pays
        O(history) per call.  The built-in backends override it with true
        incremental reads: ring-index arithmetic (memory), a persisted byte
        offset (file) or a seqlock read of just the unseen ring region
        (shared memory), so the cost is O(new beats) instead.
        """
        return delta_from_snapshot(self.snapshot(), cursor)

    def version(self) -> object | None:
        """Cheap change token for idle-skip polling, or ``None`` if unknown.

        Two equal non-``None`` versions guarantee :meth:`snapshot_since`
        would return an empty delta with unchanged targets, letting a fleet
        observer skip the read entirely.  The base implementation returns
        ``None`` ("cannot tell — always poll me"), which is always safe.
        """
        return None

    @abc.abstractmethod
    def close(self) -> None:
        """Release any resources held by the backend (idempotent)."""

    # ------------------------------------------------------------------ #
    # Conveniences shared by all backends
    # ------------------------------------------------------------------ #
    def empty_snapshot(self) -> BackendSnapshot:
        """A snapshot representing "no beats yet"."""
        return BackendSnapshot(
            records=np.empty(0, dtype=RECORD_DTYPE),
            total_beats=0,
            target_min=0.0,
            target_max=0.0,
            default_window=0,
        )

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
