"""Backend interface shared by all heartbeat storage implementations."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.record import RECORD_DTYPE, HeartbeatRecord, array_to_records

__all__ = ["Backend", "BackendSnapshot"]


@dataclass(frozen=True, slots=True)
class BackendSnapshot:
    """A consistent read of a backend's state taken at one instant.

    Attributes
    ----------
    records:
        Structured array (dtype :data:`repro.core.record.RECORD_DTYPE`) of the
        retained history in production order.
    total_beats:
        Total number of heartbeats ever registered.
    target_min, target_max:
        Published target heart-rate range; ``0.0`` for both when no target has
        been set.
    default_window:
        The producer's default rate window.
    """

    records: np.ndarray
    total_beats: int
    target_min: float
    target_max: float
    default_window: int

    def as_records(self) -> list[HeartbeatRecord]:
        """Return the retained history as :class:`HeartbeatRecord` objects."""
        return array_to_records(self.records)

    @property
    def retained(self) -> int:
        return int(self.records.shape[0])


class Backend(abc.ABC):
    """Abstract storage backend for a single heartbeat stream.

    A backend is written by exactly one producer (the instrumented
    application, possibly from several threads serialised by the owning
    :class:`~repro.core.heartbeat.Heartbeat`) and read by any number of
    observers.
    """

    #: Capacity of the retained history window.
    capacity: int

    @abc.abstractmethod
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        """Persist one heartbeat record."""

    def append_many(self, records: np.ndarray) -> None:
        """Persist a batch of heartbeat records in production order.

        ``records`` is a structured array of dtype
        :data:`repro.core.record.RECORD_DTYPE`.  Backends override this with
        a vectorized implementation (one slab write, one seqlock cycle, one
        file write); the base implementation falls back to per-record
        :meth:`append` so third-party backends stay correct without changes.
        """
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        for row in records:
            self.append(
                int(row["beat"]), float(row["timestamp"]), int(row["tag"]), int(row["thread_id"])
            )

    @abc.abstractmethod
    def set_targets(self, target_min: float, target_max: float) -> None:
        """Publish the application's target heart-rate range."""

    @abc.abstractmethod
    def set_default_window(self, window: int) -> None:
        """Publish the producer's default rate window."""

    @abc.abstractmethod
    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        """Return a consistent snapshot of the last ``n`` records (all when None)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release any resources held by the backend (idempotent)."""

    # ------------------------------------------------------------------ #
    # Conveniences shared by all backends
    # ------------------------------------------------------------------ #
    def empty_snapshot(self) -> BackendSnapshot:
        """A snapshot representing "no beats yet"."""
        return BackendSnapshot(
            records=np.empty(0, dtype=RECORD_DTYPE),
            total_beats=0,
            target_min=0.0,
            target_max=0.0,
            default_window=0,
        )

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
