"""Single-arena columnar heartbeat history: one slab, N streams.

Every other backend gives each stream its own object — its own numpy ring,
its own file, its own shared-memory segment (and hosts cap POSIX shm around
~512 segments).  Observing a 100k-stream fleet through per-stream objects
therefore costs 100k Python-level ``snapshot_since`` calls per poll no matter
how cheap each one is.  This module keeps the paper's "universally accessible
location such as coherent shared memory" discipline but puts the *whole
fleet* in one mmap-able slab:

* a single ``(streams, depth)`` records matrix in
  :data:`repro.core.record.RECORD_DTYPE` — stream *i*'s circular history is
  row *i*;
* a per-stream header table with one fixed 128-byte row per stream carrying
  the beat total, target range, default window and a per-row seqlock
  sequence counter (the same odd-while-writing discipline
  :mod:`repro.core.backends.shared_memory` uses per segment);
* one arena header naming the geometry.

Producers write through :class:`ArenaRowView` — a full
:class:`~repro.core.backends.base.Backend` over one row, so ``Heartbeat``,
``HeartbeatMonitor`` and the delta-cursor contract all work unchanged — and
stay lock-free with respect to every observer.  Observers get the fast path
that is the point of the layout: :meth:`Arena.snapshot_since_all` reads the
*entire fleet* — totals, targets, last timestamps, windowed rates and the
new records since a cursor vector — as a handful of vectorized numpy passes
with zero per-stream Python dispatch.

The slab is anonymous process memory for ``mem-arena://`` endpoints and a
``multiprocessing.shared_memory`` segment for ``shm-arena://``, so one
segment (not ~512) serves an arbitrarily large fleet across processes.

Slab layout (little-endian, 8-byte aligned)
-------------------------------------------
=====================  ========  =============================================
offset                 type      field
=====================  ========  =============================================
0                      header    one :data:`ARENA_HEADER_SIZE`-byte arena
                                 header (magic ``"HBARENA1"``, layout
                                 version, streams, depth, writer PID,
                                 rows-in-use publication word)
128                    table     ``streams`` row headers of
                                 :data:`ROW_HEADER_SIZE` bytes each (see
                                 ``docs/arena.md`` for the byte-level spec)
128 + streams * 128    records   ``(streams, depth)`` records of dtype
                                 :data:`~repro.core.record.RECORD_DTYPE`
=====================  ========  =============================================

>>> from repro.core.backends.arena import Arena
>>> with Arena(streams=2, depth=8) as arena:
...     row = arena.allocate("worker-0")
...     row.append(1, 0.5, 0, 0)
...     row.append(2, 1.0, 0, 0)
...     fleet = arena.snapshot_since_all()
...     (int(fleet.totals[0]), int(fleet.new[0]), bool(fleet.resync[0]))
(2, 2, True)
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.backends.base import (
    Backend,
    BackendSnapshot,
    DeltaSnapshot,
    SnapshotCursor,
    delta_bounds,
)
from repro.core.backends.shared_memory import _attach_untracked, _copy_last, _untrack_segment
from repro.core.buffer import circular_batch_slices
from repro.core.errors import BackendError, BackendFormatError, InvalidWindowError
from repro.core.record import RECORD_DTYPE

__all__ = [
    "Arena",
    "ArenaRowView",
    "ArenaFleetDelta",
    "arena_size",
    "arena_for",
    "ARENA_HEADER_SIZE",
    "ROW_HEADER_SIZE",
    "MAGIC",
]

MAGIC = 0x48424152454E4131  # "HBARENA1"
LAYOUT_VERSION = 1
ARENA_HEADER_SIZE = 128
ROW_HEADER_SIZE = 128
#: Maximum bytes of a row's UTF-8 stream name stored in the slab.
NAME_SIZE = 64

#: Default geometry applied by the endpoint layer when a URL names neither.
DEFAULT_STREAMS = 1024
DEFAULT_DEPTH = 1024

_ARENA_HEADER_DTYPE = np.dtype(
    [
        ("magic", np.int64),
        ("version", np.int64),
        ("streams", np.int64),
        ("depth", np.int64),
        ("writer_pid", np.int64),
        ("rows_in_use", np.int64),
        ("reserved", np.int64, 10),
    ]
)
assert _ARENA_HEADER_DTYPE.itemsize == ARENA_HEADER_SIZE

_ROW_HEADER_DTYPE = np.dtype(
    [
        ("total", np.int64),
        ("sequence", np.int64),
        ("default_window", np.int64),
        ("target_min", np.float64),
        ("target_max", np.float64),
        ("state", np.int64),
        ("name", f"S{NAME_SIZE}"),
        ("reserved", np.int64, 2),
    ]
)
assert _ROW_HEADER_DTYPE.itemsize == ROW_HEADER_SIZE

#: Row ``state`` values.
_ROW_FREE, _ROW_IN_USE = 0, 1


def arena_size(streams: int, depth: int) -> int:
    """Total slab size in bytes for an ``(streams, depth)`` arena."""
    return ARENA_HEADER_SIZE + streams * ROW_HEADER_SIZE + streams * depth * RECORD_DTYPE.itemsize


def _validate_geometry(streams: int, depth: int) -> tuple[int, int]:
    if streams <= 0:
        raise BackendError(f"arena streams must be positive, got {streams}")
    if depth <= 0:
        raise BackendError(f"arena depth must be positive, got {depth}")
    return int(streams), int(depth)


@dataclass(frozen=True)
class ArenaFleetDelta:
    """One consistent fleet-wide read of an arena (see ``snapshot_since_all``).

    All arrays have one entry per allocated row, in allocation order.  The
    per-row delta semantics are exactly those of
    :class:`~repro.core.backends.base.DeltaSnapshot` /
    :func:`~repro.core.backends.base.delta_bounds`: ``new[i]`` records of row
    *i* are carried in ``records[offsets[i]:offsets[i+1]]``; ``resync[i]``
    means they are the full retained history, not an increment; ``gap[i]``
    counts beats overwritten before this read.  ``cursors`` is the cursor
    vector to hand back to the next ``snapshot_since_all`` call.
    """

    totals: np.ndarray
    retained: np.ndarray
    new: np.ndarray
    gap: np.ndarray
    resync: np.ndarray
    target_min: np.ndarray
    target_max: np.ndarray
    default_window: np.ndarray
    last_timestamp: np.ndarray
    rate: np.ndarray
    cursors: np.ndarray
    records: np.ndarray
    offsets: np.ndarray

    @property
    def rows(self) -> int:
        """Number of allocated rows this read covers."""
        return int(self.totals.shape[0])

    def records_for(self, index: int) -> np.ndarray:
        """The new records of row ``index`` (production order)."""
        return self.records[int(self.offsets[index]) : int(self.offsets[index + 1])]

    def delta_for(self, index: int) -> tuple[DeltaSnapshot, SnapshotCursor]:
        """Row ``index``'s slice as a per-stream :class:`DeltaSnapshot`."""
        delta = DeltaSnapshot(
            records=self.records_for(index),
            total_beats=int(self.totals[index]),
            retained=int(self.retained[index]),
            target_min=float(self.target_min[index]),
            target_max=float(self.target_max[index]),
            default_window=int(self.default_window[index]),
            gap=int(self.gap[index]),
            resync=bool(self.resync[index]),
        )
        return delta, SnapshotCursor(total=int(self.totals[index]))


class Arena:
    """One columnar slab holding the circular history of N heartbeat streams.

    Parameters
    ----------
    streams:
        Number of stream rows the slab holds (fixed at creation).
    depth:
        Records retained per stream (each row is a ``depth``-slot ring).

    The plain constructor builds an *anonymous* in-process slab (the
    ``mem-arena://`` flavour).  :meth:`create` / :meth:`attach` build the
    ``shm-arena://`` flavour on a ``multiprocessing.shared_memory`` segment
    any process on the host can map — one segment for the whole fleet, so
    the ~512-segments-per-host POSIX ceiling no longer bounds fleet size.

    Rows are handed out by :meth:`allocate` (append-only, guarded by an
    in-process lock: allocate from one process per arena — observers in
    other processes only read).  Producers write through the returned
    :class:`ArenaRowView`; observers either treat rows as ordinary backends
    or read the whole fleet at once with :meth:`snapshot_since_all`.
    """

    def __init__(self, streams: int = DEFAULT_STREAMS, depth: int = DEFAULT_DEPTH) -> None:
        streams, depth = _validate_geometry(streams, depth)
        self._mem: bytearray | None = bytearray(arena_size(streams, depth))
        self._shm: Any = None
        self._owner = True
        self.name: str | None = None
        self._init_views(memoryview(self._mem), streams, depth)
        self._format_header()

    @classmethod
    def create(
        cls, name: str | None = None, *, streams: int = DEFAULT_STREAMS, depth: int = DEFAULT_DEPTH
    ) -> "Arena":
        """Create a shared-memory arena (the ``shm-arena://`` flavour).

        The creator owns the segment's lifetime: :meth:`close` unlinks it.
        ``name=None`` lets the OS assign a unique segment name (exposed as
        :attr:`name`).
        """
        streams, depth = _validate_geometry(streams, depth)
        self = object.__new__(cls)
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=arena_size(streams, depth)
            )
        except OSError as exc:
            raise BackendError(f"cannot create arena segment: {exc}") from exc
        self._mem = None
        self._shm = shm
        self._owner = True
        self.name = shm.name
        self._init_views(shm.buf, streams, depth)
        self._format_header()
        return self

    @classmethod
    def attach(cls, name: str) -> "Arena":
        """Attach to an existing shared-memory arena by segment name.

        Attachments never unlink the segment on :meth:`close`; only the
        creator owns its lifetime.  The mapping is read/write, so a
        cooperating producer process may append to rows the creator handed
        it (by index) — but only the creating process should :meth:`allocate`.
        """
        self = object.__new__(cls)
        try:
            shm = _attach_untracked(name)
        except (OSError, ValueError) as exc:
            raise BackendFormatError(f"cannot attach to arena segment {name!r}: {exc}") from exc
        probe = np.ndarray(shape=(), dtype=_ARENA_HEADER_DTYPE, buffer=shm.buf[:ARENA_HEADER_SIZE])
        if int(probe["magic"]) != MAGIC:
            shm.close()
            raise BackendFormatError(f"segment {name!r} is not a heartbeat arena")
        if int(probe["version"]) != LAYOUT_VERSION:
            shm.close()
            raise BackendFormatError(f"unsupported arena layout version {int(probe['version'])}")
        streams, depth = int(probe["streams"]), int(probe["depth"])
        del probe  # drop the view before any close() can be reached
        self._mem = None
        self._shm = shm
        self._owner = False
        self.name = name
        self._init_views(shm.buf, streams, depth)
        return self

    # ------------------------------------------------------------------ #
    # Construction internals
    # ------------------------------------------------------------------ #
    def _init_views(self, buf: memoryview, streams: int, depth: int) -> None:
        self.streams = streams
        self.depth = depth
        table_end = ARENA_HEADER_SIZE + streams * ROW_HEADER_SIZE
        self._header = np.ndarray(
            shape=(), dtype=_ARENA_HEADER_DTYPE, buffer=buf[:ARENA_HEADER_SIZE]
        )
        self._rows = np.ndarray(
            shape=(streams,), dtype=_ROW_HEADER_DTYPE, buffer=buf[ARENA_HEADER_SIZE:table_end]
        )
        self._records = np.ndarray(
            shape=(streams, depth),
            dtype=RECORD_DTYPE,
            buffer=buf[table_end : table_end + streams * depth * RECORD_DTYPE.itemsize],
        )
        self._alloc_lock = threading.Lock()
        self._closed = False

    def _format_header(self) -> None:
        header = self._header
        header["magic"] = MAGIC
        header["version"] = LAYOUT_VERSION
        header["streams"] = self.streams
        header["depth"] = self.depth
        header["writer_pid"] = os.getpid()
        header["rows_in_use"] = 0

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError("arena is closed")

    # ------------------------------------------------------------------ #
    # Row management
    # ------------------------------------------------------------------ #
    @property
    def rows_in_use(self) -> int:
        """Number of rows handed out so far (allocation is append-only)."""
        self._check_open()
        return int(self._header["rows_in_use"])

    @property
    def nbytes(self) -> int:
        """Total slab size in bytes."""
        return arena_size(self.streams, self.depth)

    @property
    def occupancy(self) -> float:
        """Fraction of rows allocated, in ``[0, 1]``."""
        return self.rows_in_use / self.streams

    def writer_pid(self) -> int:
        """PID of the creating process (useful for liveness checks)."""
        self._check_open()
        return int(self._header["writer_pid"])

    def allocate(self, name: str = "") -> "ArenaRowView":
        """Claim the next free row and return its writer/backend view.

        Raises :class:`~repro.core.errors.BackendError` when the arena is
        full.  Allocation is append-only (closed rows are not recycled) and
        must happen in the process that owns the arena; the in-process lock
        makes it thread-safe there.
        """
        self._check_open()
        with self._alloc_lock:
            index = int(self._header["rows_in_use"])
            if index >= self.streams:
                raise BackendError(
                    f"arena is full ({self.streams} rows allocated); "
                    "create a larger arena (?streams=N)"
                )
            rows = self._rows
            rows["total"][index] = 0
            rows["sequence"][index] = 0
            rows["default_window"][index] = 0
            rows["target_min"][index] = 0.0
            rows["target_max"][index] = 0.0
            rows["name"][index] = name.encode("utf-8", "replace")[:NAME_SIZE]
            rows["state"][index] = _ROW_IN_USE
            # Publication word last: observers scanning [0, rows_in_use)
            # never see a half-initialised row header.
            self._header["rows_in_use"] = index + 1
        return ArenaRowView(self, index)

    def row(self, index: int) -> "ArenaRowView":
        """A view of row ``index`` (which must already be allocated)."""
        self._check_open()
        if not 0 <= index < self.rows_in_use:
            raise BackendError(
                f"row {index} is not allocated (rows in use: {self.rows_in_use})"
            )
        return ArenaRowView(self, index)

    def row_name(self, index: int) -> str:
        """The stream name recorded for row ``index`` at allocation time."""
        self._check_open()
        return bytes(self._rows["name"][index]).decode("utf-8", "replace")

    def row_names(self) -> list[str]:
        """Names of all allocated rows, in allocation order."""
        count = self.rows_in_use
        raw = self._rows["name"][:count]
        return [bytes(entry).decode("utf-8", "replace") for entry in raw]

    # ------------------------------------------------------------------ #
    # The fleet fast path
    # ------------------------------------------------------------------ #
    def snapshot_since_all(
        self,
        cursors: np.ndarray | None = None,
        *,
        window: int = 0,
        include_records: bool = True,
    ) -> ArenaFleetDelta:
        """Read the whole fleet's state — and new beats — in one masked pass.

        ``cursors`` is the ``cursors`` vector returned by the previous call
        (``None`` or shorter-than-the-fleet entries mean "never read": those
        rows resync in full, exactly like a per-stream ``snapshot_since``
        with no cursor).  ``window`` is the observer's requested rate window
        (``0``: each producer's published default), resolved per row by the
        same rule :func:`repro.core.window.resolve_window` applies to single
        streams.  ``include_records=False`` skips gathering the new record
        payloads and returns columns only — the aggregator's classification
        pass needs nothing more.

        Consistency: header columns are captured under a vectorized seqlock
        check (rows whose writer raced the read are retried as a shrinking
        subset); the record gather is then validated against the captured
        sequences and any row a writer lapped mid-gather is repaired through
        the scalar per-row seqlock read.  Cost is a handful of O(rows) numpy
        passes — no per-stream Python dispatch.
        """
        self._check_open()
        if isinstance(window, bool) or not isinstance(window, int):
            raise InvalidWindowError(f"window must be an int, got {window!r}")
        if window < 0:
            raise InvalidWindowError(f"window must be >= 0, got {window}")
        requested = int(window)
        count = self.rows_in_use
        depth = self.depth

        cur = np.zeros(count, dtype=np.int64)
        explicit = np.zeros(count, dtype=bool)
        if cursors is not None:
            arr = np.asarray(cursors, dtype=np.int64).reshape(-1)
            k = min(int(arr.shape[0]), count)
            cur[:k] = arr[:k]
            explicit[:k] = True

        rows = self._rows
        ts2d = self._records["timestamp"]

        out_seq = np.zeros(count, dtype=np.int64)
        out_total = np.zeros(count, dtype=np.int64)
        out_dw = np.zeros(count, dtype=np.int64)
        out_tmin = np.zeros(count, dtype=np.float64)
        out_tmax = np.zeros(count, dtype=np.float64)
        out_last = np.full(count, np.nan, dtype=np.float64)
        out_rate = np.zeros(count, dtype=np.float64)

        pending = np.arange(count, dtype=np.int64)
        for attempt in range(256):
            if attempt:
                # Yield so writers mid-batch (possibly sharing our GIL) can
                # publish; escalate to a real sleep if they keep winning.
                time.sleep(0.0001 if attempt % 32 == 31 else 0)
            idx = pending
            # The first pass covers every row: contiguous slice copies beat
            # fancy indexing there, and when no writer raced us the whole
            # capture is adopted without a per-row scatter.
            full_pass = attempt == 0
            if full_pass:
                seq0 = rows["sequence"][:count].copy()
                totals = rows["total"][:count].copy()
                dw = rows["default_window"][:count].copy()
                tmin = rows["target_min"][:count].copy()
                tmax = rows["target_max"][:count].copy()
            else:
                seq0 = rows["sequence"][idx].copy()
                totals = rows["total"][idx].copy()
                dw = rows["default_window"][idx].copy()
                tmin = rows["target_min"][idx].copy()
                tmax = rows["target_max"][idx].copy()
            retained = np.minimum(totals, depth)
            has = retained > 0
            safe_total = np.maximum(totals, 1)
            last_ts = ts2d[idx, (safe_total - 1) % depth]
            # Effective window per row: resolve_window(requested, dw, retained)
            # with the same dw<=0 fallback reading_from_snapshot applies.
            dw_eff = np.where(dw > 0, dw, max(requested, 1))
            base = dw_eff if requested == 0 else np.minimum(requested, dw_eff)
            effective = np.minimum(base, retained)
            first_ts = ts2d[idx, (safe_total - np.maximum(effective, 1)) % depth]
            span = last_ts - first_ts
            measurable = (effective >= 2) & (span > 0)
            rate = np.where(
                measurable,
                (np.maximum(effective, 2) - 1) / np.where(span > 0, span, 1.0),
                0.0,
            )
            seq1 = rows["sequence"][:count] if full_pass else rows["sequence"][idx]
            ok = (seq0 % 2 == 0) & (seq1 == seq0)
            if full_pass and bool(ok.all()):
                out_seq, out_total, out_dw = seq0, totals, dw
                out_tmin, out_tmax = tmin, tmax
                out_last = np.where(has, last_ts, np.nan)
                out_rate = rate
                pending = idx[:0]
                break
            good = idx[ok]
            out_seq[good] = seq0[ok]
            out_total[good] = totals[ok]
            out_dw[good] = dw[ok]
            out_tmin[good] = tmin[ok]
            out_tmax[good] = tmax[ok]
            out_last[good] = np.where(has[ok], last_ts[ok], np.nan)
            out_rate[good] = rate[ok]
            pending = idx[~ok]
            if pending.size == 0:
                break
        else:  # pragma: no cover - requires a pathologically hot writer
            raise BackendError("could not obtain a consistent arena read")

        out_retained = np.minimum(out_total, depth)
        produced = out_total - cur
        behind = (~explicit) | (produced < 0)
        included = np.where(behind, out_retained, np.minimum(produced, out_retained))
        gap = np.where(behind, 0, produced - included)
        resync = behind | (gap > 0)

        offsets = np.zeros(count + 1, dtype=np.int64)
        if include_records and count:
            counts = included.astype(np.int64)
            np.cumsum(counts, out=offsets[1:])
            flat, bad = self._gather(counts, offsets, out_total, out_seq)
            if bad is not None and bad.any():
                flat, offsets = self._repair(
                    bad, cur, explicit, requested, flat, offsets,
                    out_total, out_dw, out_tmin, out_tmax, out_last, out_rate,
                )
                out_retained = np.minimum(out_total, depth)
                produced = out_total - cur
                included = np.where(behind, out_retained, np.minimum(produced, out_retained))
                gap = np.where(behind, 0, produced - included)
                resync = behind | (gap > 0)
            records = flat
        else:
            records = np.empty(0, dtype=RECORD_DTYPE)

        return ArenaFleetDelta(
            totals=out_total,
            retained=out_retained,
            new=included,
            gap=gap,
            resync=resync,
            target_min=out_tmin,
            target_max=out_tmax,
            default_window=out_dw,
            last_timestamp=out_last,
            rate=out_rate,
            cursors=out_total.copy(),
            records=records,
            offsets=offsets,
        )

    def _gather(
        self,
        counts: np.ndarray,
        offsets: np.ndarray,
        totals: np.ndarray,
        seqs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One vectorized gather of every row's newest ``counts`` records.

        Returns ``(flat, bad)`` where ``bad`` flags rows whose writer moved
        between the header capture and the gather (``None`` when the gather
        was empty) — those rows' slices in ``flat`` may be torn.
        """
        total_new = int(offsets[-1])
        if total_new == 0:
            return np.empty(0, dtype=RECORD_DTYPE), None
        count = counts.shape[0]
        reps = np.repeat(np.arange(count, dtype=np.int64), counts)
        starts = totals - counts
        positions = np.arange(total_new, dtype=np.int64) - np.repeat(offsets[:-1], counts)
        slots = (np.repeat(starts, counts) + positions) % self.depth
        flat = self._records[reps, slots]
        seq_after = self._rows["sequence"][:count]
        bad = seq_after != seqs
        return flat, bad

    def _repair(
        self,
        bad: np.ndarray,
        cur: np.ndarray,
        explicit: np.ndarray,
        requested: int,
        flat: np.ndarray,
        offsets: np.ndarray,
        out_total: np.ndarray,
        out_dw: np.ndarray,
        out_tmin: np.ndarray,
        out_tmax: np.ndarray,
        out_last: np.ndarray,
        out_rate: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-read the (rare) rows a writer lapped mid-gather, scalar-ly.

        Splits the flat gather back into per-row segments, replaces the torn
        ones with consistent per-row seqlock reads, and reassembles.  Only
        rows with an actively racing writer pay this path.
        """
        count = bad.shape[0]
        parts: list[np.ndarray] = np.split(flat, offsets[1:-1]) if count else []
        for i in np.nonzero(bad)[0]:
            i = int(i)
            row_cursor = SnapshotCursor(total=int(cur[i])) if explicit[i] else None

            def copy(
                total: int, dw: int, tmin: float, tmax: float, retained: int
            ) -> tuple[int, int, float, float, float, float, np.ndarray]:
                inc, _gap, _resync = delta_bounds(row_cursor, total, retained)
                recs = _copy_last(self._records[i], total, self.depth, inc)
                dw_eff = dw if dw > 0 else max(requested, 1)
                eff = min(dw_eff if requested == 0 else min(requested, dw_eff), retained)
                last = float(self._records["timestamp"][i, (total - 1) % self.depth]) if retained else np.nan
                rate = 0.0
                if eff >= 2:
                    first = float(self._records["timestamp"][i, (total - eff) % self.depth])
                    span = last - first
                    if span > 0:
                        rate = (eff - 1) / span
                return total, dw, tmin, tmax, last, rate, recs

            total, dw, tmin, tmax, last, rate, recs = _row_seqlock_read(self, i, copy)
            out_total[i] = total
            out_dw[i] = dw
            out_tmin[i] = tmin
            out_tmax[i] = tmax
            out_last[i] = last
            out_rate[i] = rate
            parts[i] = recs
        new_offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum([part.shape[0] for part in parts], out=new_offsets[1:])
        merged = np.concatenate(parts) if parts else np.empty(0, dtype=RECORD_DTYPE)
        return merged, new_offsets

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the slab.  The creating process also unlinks shm arenas."""
        if self._closed:
            return
        self._closed = True
        # Drop views before releasing the buffer, otherwise close() raises.
        self._header = None  # type: ignore[assignment]
        self._rows = None  # type: ignore[assignment]
        self._records = None  # type: ignore[assignment]
        if self._shm is not None:
            self._shm.close()
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    _untrack_segment(self._shm)
        self._mem = None

    def __enter__(self) -> "Arena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "shm" if self._shm is not None else "mem"
        return (
            f"Arena({kind}, name={self.name!r}, streams={self.streams}, "
            f"depth={self.depth}, in_use={0 if self._closed else self.rows_in_use})"
        )


def _row_seqlock_read(arena: Arena, index: int, copy: Callable[..., Any]) -> Any:
    """One seqlock-consistent read of arena row ``index``.

    The per-row analogue of the shared-memory segment's read scaffold:
    ``copy(total, default_window, tmin, tmax, retained)`` runs against a
    consistent header capture and is retried whenever the row's sequence
    counter moved (or was odd) around it.
    """
    rows = arena._rows
    for attempt in range(256):
        if attempt:
            time.sleep(0.0001 if attempt % 32 == 31 else 0)
        seq_before = int(rows["sequence"][index])
        if seq_before % 2 == 1:
            continue  # write in progress; retry
        total = int(rows["total"][index])
        default_window = int(rows["default_window"][index])
        tmin = float(rows["target_min"][index])
        tmax = float(rows["target_max"][index])
        retained = min(total, arena.depth)
        result = copy(total, default_window, tmin, tmax, retained)
        if int(rows["sequence"][index]) == seq_before:
            return result
    raise BackendError("could not obtain a consistent arena row read")


class ArenaRowView(Backend):
    """One arena row exposed as a full per-stream :class:`Backend`.

    Everything that speaks the Backend ABC — ``Heartbeat``, monitors, the
    aggregator's per-stream attachments, the delta-cursor contract — works
    against a row view unchanged; writes use the row's seqlock so observers
    (including :meth:`Arena.snapshot_since_all` in other processes) never
    see a torn record.  Closing a row view is a no-op on the slab: the
    arena owns the storage.
    """

    __slots__ = ("_arena", "index", "capacity", "_closed")

    def __init__(self, arena: Arena, index: int) -> None:
        self._arena = arena
        self.index = int(index)
        self.capacity = arena.depth
        self._closed = False

    @property
    def name(self) -> str:
        """The stream name recorded at allocation time."""
        return self._arena.row_name(self.index)

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError("arena row view is closed")
        self._arena._check_open()

    # ------------------------------------------------------------------ #
    # Backend interface — writer side
    # ------------------------------------------------------------------ #
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        self._check_open()
        rows = self._arena._rows
        i = self.index
        total = int(rows["total"][i])
        slot = total % self.capacity
        rows["sequence"][i] = int(rows["sequence"][i]) + 1  # odd: write in progress
        self._arena._records[i, slot] = (beat, timestamp, tag, thread_id)
        rows["total"][i] = total + 1
        rows["sequence"][i] = int(rows["sequence"][i]) + 1  # even: write published

    def append_many(self, records: np.ndarray) -> None:
        """Publish a whole batch under a single seqlock cycle (cf. shm)."""
        self._check_open()
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        n = int(records.shape[0])
        if n == 0:
            return
        rows = self._arena._rows
        i = self.index
        total = int(rows["total"][i])
        placement = circular_batch_slices(total, self.capacity, n)
        row_records = self._arena._records[i]
        rows["sequence"][i] = int(rows["sequence"][i]) + 1  # odd: write in progress
        for destination, source in placement:
            row_records[destination] = records[source]
        rows["total"][i] = total + n
        rows["sequence"][i] = int(rows["sequence"][i]) + 1  # even: write published

    def set_targets(self, target_min: float, target_max: float) -> None:
        self._check_open()
        rows = self._arena._rows
        i = self.index
        rows["sequence"][i] = int(rows["sequence"][i]) + 1
        rows["target_min"][i] = float(target_min)
        rows["target_max"][i] = float(target_max)
        rows["sequence"][i] = int(rows["sequence"][i]) + 1

    def set_default_window(self, window: int) -> None:
        self._check_open()
        rows = self._arena._rows
        i = self.index
        rows["sequence"][i] = int(rows["sequence"][i]) + 1
        rows["default_window"][i] = int(window)
        rows["sequence"][i] = int(rows["sequence"][i]) + 1

    # ------------------------------------------------------------------ #
    # Backend interface — reader side
    # ------------------------------------------------------------------ #
    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        self._check_open()

        def copy(
            total: int, default_window: int, tmin: float, tmax: float, retained: int
        ) -> BackendSnapshot:
            records = _copy_last(self._arena._records[self.index], total, self.capacity, retained)
            if n is not None and n < records.shape[0]:
                records = records[records.shape[0] - n :]
            return BackendSnapshot(
                records=records,
                total_beats=total,
                target_min=tmin,
                target_max=tmax,
                default_window=default_window,
            )

        return _row_seqlock_read(self._arena, self.index, copy)

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        """Seqlock-consistent delta of only this row's unseen ring region."""
        self._check_open()

        def copy(
            total: int, default_window: int, tmin: float, tmax: float, retained: int
        ) -> tuple[DeltaSnapshot, SnapshotCursor]:
            included, gap, resync = delta_bounds(cursor, total, retained)
            records = _copy_last(self._arena._records[self.index], total, self.capacity, included)
            delta = DeltaSnapshot(
                records=records,
                total_beats=total,
                retained=retained,
                target_min=tmin,
                target_max=tmax,
                default_window=default_window,
                gap=gap,
                resync=resync,
            )
            return delta, SnapshotCursor(total=total)

        return _row_seqlock_read(self._arena, self.index, copy)

    def version(self) -> tuple[int, int]:
        """Cheap change token: ``(total, sequence)``, same contract as shm."""
        self._check_open()
        rows = self._arena._rows
        return (int(rows["total"][self.index]), int(rows["sequence"][self.index]))

    def close(self) -> None:
        """Mark this view closed.  The slab (and the row's history) remain."""
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaRowView(arena={self._arena.name!r}, index={self.index})"


# --------------------------------------------------------------------- #
# Process-level arena registry (the endpoint layer's get-or-create)
# --------------------------------------------------------------------- #
_REGISTRY: dict[tuple[str, str], Arena] = {}
_REGISTRY_LOCK = threading.Lock()


def arena_for(
    kind: str, name: str, streams: int | None = None, depth: int | None = None
) -> Arena:
    """Get-or-create the process-shared arena behind an endpoint URL.

    ``kind`` is ``"mem"`` or ``"shm"``.  Producers, observers and sessions
    resolving the same URL in one process share one :class:`Arena` (and for
    ``shm`` one mapping), mirroring how ``mem://`` streams share the process
    registry.  The first resolver fixes the geometry; later callers passing
    conflicting explicit ``streams``/``depth`` get a
    :class:`~repro.core.errors.BackendError`.  Registry arenas live for the
    process lifetime (``shm`` segments are unlinked by their creator's exit
    hooks / resource tracker); close an arena you constructed directly when
    you need deterministic teardown.
    """
    if kind not in ("mem", "shm"):
        raise BackendError(f"unknown arena kind {kind!r}")
    key = (kind, name)
    with _REGISTRY_LOCK:
        arena = _REGISTRY.get(key)
        if arena is not None and not arena._closed:
            for label, want, have in (
                ("streams", streams, arena.streams),
                ("depth", depth, arena.depth),
            ):
                if want is not None and int(want) != have:
                    raise BackendError(
                        f"arena {name!r} already open with {label}={have}, requested {want}"
                    )
            return arena
        use_streams = int(streams) if streams is not None else DEFAULT_STREAMS
        use_depth = int(depth) if depth is not None else DEFAULT_DEPTH
        if kind == "mem":
            arena = Arena(streams=use_streams, depth=use_depth)
        else:
            try:
                arena = Arena.attach(name)
            except BackendFormatError:
                arena = Arena.create(name or None, streams=use_streams, depth=use_depth)
        _REGISTRY[key] = arena
        return arena


def _close_registry_arenas() -> None:  # pragma: no cover - interpreter teardown
    """Release registry-owned slabs at exit (creators unlink their segments)."""
    with _REGISTRY_LOCK:
        arenas = list(_REGISTRY.values())
        _REGISTRY.clear()
    for arena in arenas:
        try:
            arena.close()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass


atexit.register(_close_registry_arenas)


if TYPE_CHECKING:  # pragma: no cover - typing aid only
    _: Backend = ArenaRowView(Arena(1, 1), 0)
