"""In-process heartbeat storage."""

from __future__ import annotations

from repro.core.backends.base import (
    Backend,
    BackendSnapshot,
    DeltaSnapshot,
    SnapshotCursor,
    delta_bounds,
)
from repro.core.buffer import CircularBuffer

__all__ = ["MemoryBackend"]


class MemoryBackend(Backend):
    """Heartbeat storage private to the current process.

    This is the default backend: it has the lowest overhead and is sufficient
    whenever the observer lives in the same process as the producer (the
    "self-optimising application" configuration of the paper's Figure 1a, and
    all simulated-machine experiments).
    """

    __slots__ = (
        "capacity", "_buffer", "_target_min", "_target_max", "_default_window", "_meta_version",
    )

    def __init__(
        self,
        capacity: int,
        *,
        storage: "np.ndarray | None" = None,
        total: int = 0,
    ) -> None:
        """``storage``/``total`` adopt pre-populated record storage (see
        :class:`~repro.core.buffer.CircularBuffer`); the fleet benchmark uses
        this to share one deep synthetic history across thousands of streams."""
        self._buffer = CircularBuffer(capacity, storage=storage, total=total)
        self.capacity = self._buffer.capacity
        self._target_min = 0.0
        self._target_max = 0.0
        self._default_window = 0
        self._meta_version = 0

    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        self._buffer.append_raw(beat, timestamp, tag, thread_id)

    def append_many(self, records) -> None:
        self._buffer.push_many(records)

    def set_targets(self, target_min: float, target_max: float) -> None:
        self._target_min = float(target_min)
        self._target_max = float(target_max)
        self._meta_version += 1

    def set_default_window(self, window: int) -> None:
        self._default_window = int(window)
        self._meta_version += 1

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        return BackendSnapshot(
            records=self._buffer.last_array(n),
            total_beats=self._buffer.total,
            target_min=self._target_min,
            target_max=self._target_max,
            default_window=self._default_window,
        )

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        """O(new beats) delta via ring-index arithmetic; copies only new slots.

        Observers read lock-free while the producer keeps appending, so the
        whole delta — bounds *and* record slice — is derived from a single
        capture of the append counter; a write landing in between cannot
        shift the slice under the computed bounds (which would silently drop
        unseen beats).  If the producer wraps into the copied region during
        the copy itself the read retries, and under pathological contention
        the delta falls back to ``resync`` so the consumer replaces rather
        than appends — degraded to a full refresh, never silent loss.
        """
        buffer = self._buffer
        capacity = self.capacity
        for _ in range(64):
            total = buffer.total
            retained = min(total, capacity)
            included, gap, resync = delta_bounds(cursor, total, retained)
            if included == capacity:
                # The delta carries the whole ring anyway; publishing it as a
                # resync lets the consumer replace instead of concat-and-trim
                # — and means one copy suffices (no consistency window exists
                # for a full-ring copy racing a live writer).
                resync = True
            records = buffer.last_array_at(total, included)
            if resync:
                break  # consumer replaces state anyway; one copy is enough
            if buffer.total - total < capacity - included or included == 0:
                break  # no append reached the copied region: consistent
        else:
            # Pathological contention: every retry raced the writer.  Publish
            # the newest capture as a full-history resync — replay length
            # stays equal to the retained window, and the consumer replaces
            # rather than appends, so the worst case is a degraded refresh.
            total = buffer.total
            retained = min(total, capacity)
            included = retained
            gap = max(total - cursor.total - included, 0)
            records = buffer.last_array_at(total, included)
            resync = True
        delta = DeltaSnapshot(
            records=records,
            total_beats=total,
            retained=retained,
            target_min=self._target_min,
            target_max=self._target_max,
            default_window=self._default_window,
            gap=gap,
            resync=resync,
        )
        return delta, SnapshotCursor(total=total)

    def version(self) -> tuple[int, int]:
        return (self._buffer.total, self._meta_version)

    def close(self) -> None:
        # Nothing to release; kept for interface symmetry.
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryBackend(capacity={self.capacity}, total={self._buffer.total})"
