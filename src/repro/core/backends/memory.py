"""In-process heartbeat storage."""

from __future__ import annotations

from repro.core.backends.base import Backend, BackendSnapshot
from repro.core.buffer import CircularBuffer

__all__ = ["MemoryBackend"]


class MemoryBackend(Backend):
    """Heartbeat storage private to the current process.

    This is the default backend: it has the lowest overhead and is sufficient
    whenever the observer lives in the same process as the producer (the
    "self-optimising application" configuration of the paper's Figure 1a, and
    all simulated-machine experiments).
    """

    __slots__ = ("capacity", "_buffer", "_target_min", "_target_max", "_default_window")

    def __init__(self, capacity: int) -> None:
        self._buffer = CircularBuffer(capacity)
        self.capacity = self._buffer.capacity
        self._target_min = 0.0
        self._target_max = 0.0
        self._default_window = 0

    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        self._buffer.append_raw(beat, timestamp, tag, thread_id)

    def append_many(self, records) -> None:
        self._buffer.push_many(records)

    def set_targets(self, target_min: float, target_max: float) -> None:
        self._target_min = float(target_min)
        self._target_max = float(target_max)

    def set_default_window(self, window: int) -> None:
        self._default_window = int(window)

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        return BackendSnapshot(
            records=self._buffer.last_array(n),
            total_beats=self._buffer.total,
            target_min=self._target_min,
            target_max=self._target_max,
            default_window=self._default_window,
        )

    def close(self) -> None:
        # Nothing to release; kept for interface symmetry.
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryBackend(capacity={self.capacity}, total={self._buffer.total})"
