"""Storage backends for heartbeat history.

A backend owns the heartbeat history buffer and the published target rates,
and defines how (and whether) external observers can read them:

* :class:`MemoryBackend` — private in-process storage; the fastest option and
  the right choice when the application observes itself.
* :class:`FileBackend` — one log file per heartbeat, mirroring the paper's
  reference implementation ("a new entry containing a timestamp, tag and
  thread ID is written into a file").  Any process able to read the file can
  observe the application.
* :class:`SharedMemoryBackend` — a ``multiprocessing.shared_memory`` segment
  with a fixed binary layout (header + circular record array), the Python
  analogue of the memory layout the paper proposes for hardware observers.
* :class:`Arena` / :class:`ArenaRowView` — one columnar slab (anonymous or
  shared-memory) holding N streams as rows of a single records matrix, so a
  fleet observer reads *all* of them in one vectorized pass
  (:meth:`Arena.snapshot_since_all`) while each row still speaks the full
  per-stream :class:`Backend` interface.

All backends expose the same :class:`Backend` interface so
:class:`repro.core.heartbeat.Heartbeat` is backend-agnostic.  Every backend
also answers :meth:`Backend.snapshot_since` — a cursored delta read keyed on
the monotonically increasing beat sequence — so observers can poll at a cost
proportional to *new* beats instead of the whole retained history.
"""

from repro.core.backends.arena import Arena, ArenaFleetDelta, ArenaRowView
from repro.core.backends.base import (
    Backend,
    BackendSnapshot,
    DeltaSnapshot,
    SnapshotCursor,
)
from repro.core.backends.file import FileBackend
from repro.core.backends.memory import MemoryBackend
from repro.core.backends.shared_memory import SharedMemoryBackend

__all__ = [
    "Backend",
    "BackendSnapshot",
    "DeltaSnapshot",
    "SnapshotCursor",
    "MemoryBackend",
    "FileBackend",
    "SharedMemoryBackend",
    "Arena",
    "ArenaRowView",
    "ArenaFleetDelta",
]
