"""Capability-based stream protocols: the one contract every wiring speaks.

Four PRs of growth produced several ways to hand an observer a heartbeat
stream: ``Backend`` objects, ``SharedMemoryReader``\\ s, the collector's
per-stream views, monitor ``snapshot_source``/``delta_source`` properties and
bare ``(snapshot, delta, probe)`` callable triples.  They all answer the same
three questions — *what is the state now* (``snapshot``), *what changed since
my cursor* (``snapshot_since``) and *did anything change at all*
(``version``) — they just spell them differently.

This module names that contract once:

* :class:`StreamSource` — the read side.  ``snapshot()`` is the only
  required capability; ``snapshot_since`` (cursored deltas), ``version``
  (cheap change probe) and ``close`` (detach) are optional and *discovered*,
  never ``isinstance``-checked, so any object that grew the methods gets the
  incremental fast paths for free.
* :class:`StreamSink` — the write side: what a producer needs to publish
  beats and goals.  Every :class:`~repro.core.backends.base.Backend`
  satisfies it.
* :func:`capabilities_of` — the single discovery routine.  It accepts a
  source object, a ``Heartbeat`` (unwrapping its backend), a
  ``HeartbeatMonitor`` (adopting its attachment), or a bare zero-argument
  snapshot callable, and returns the normalized
  :class:`SourceCapabilities` bundle every attacher
  (:class:`~repro.core.monitor.HeartbeatMonitor`,
  :class:`~repro.core.aggregator.HeartbeatAggregator`,
  :class:`~repro.session.TelemetrySession`) consumes.
* :class:`BoundSource` — the inverse adapter: packages loose callables back
  into an object satisfying :class:`StreamSource`, which is how log-file
  observation (a path, not an object) joins the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.backends.base import BackendSnapshot, DeltaSnapshot, SnapshotCursor

__all__ = [
    "StreamSource",
    "StreamSink",
    "DeltaSource",
    "ProbeSource",
    "SourceCapabilities",
    "BoundSource",
    "capabilities_of",
]

#: Cursored delta provider (the optional incremental-read capability).
DeltaSource = Callable[
    [SnapshotCursor | None], "tuple[DeltaSnapshot, SnapshotCursor]"
]

#: Cheap change-token provider (the optional idle-skip capability).
ProbeSource = Callable[[], object]


@runtime_checkable
class StreamSource(Protocol):
    """The read side of a heartbeat stream: anything with ``snapshot()``.

    ``snapshot_since`` / ``version`` / ``close`` are optional capabilities on
    top of this minimum; use :func:`capabilities_of` to discover them rather
    than testing types.
    """

    def snapshot(self) -> BackendSnapshot:  # pragma: no cover - protocol stub
        ...


@runtime_checkable
class StreamSink(Protocol):
    """The write side of a heartbeat stream: where a producer publishes.

    Every storage backend satisfies it (``mem://``, ``file://``, ``shm://``
    and ``tcp://`` endpoints all open into one); so can anything else that
    wants to receive beats — a test double, a metrics bridge, a fan-out tee.
    """

    def append(
        self, beat: int, timestamp: float, tag: int, thread_id: int
    ) -> None:  # pragma: no cover - protocol stub
        ...

    def append_many(self, records: np.ndarray) -> None:  # pragma: no cover
        ...

    def set_targets(
        self, target_min: float, target_max: float
    ) -> None:  # pragma: no cover - protocol stub
        ...

    def set_default_window(self, window: int) -> None:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover - protocol stub
        ...


@dataclass(frozen=True, slots=True)
class SourceCapabilities:
    """The normalized capability bundle of one stream source.

    ``snapshot`` is always present; the rest are ``None`` when the source
    does not offer the capability.  ``close`` is *reported*, not exercised —
    whether detaching the consumer should also release the source is an
    ownership decision the attacher makes (``own=True`` on the attach
    surfaces).
    """

    snapshot: Callable[[], BackendSnapshot]
    delta: DeltaSource | None = None
    probe: ProbeSource | None = None
    close: Callable[[], None] | None = None


class BoundSource:
    """Loose ``(snapshot, delta, probe, close)`` callables as one object.

    The adapter that brings callable-shaped attachments (log-file observers,
    lambdas in tests) into the :class:`StreamSource` protocol, so every
    consumer can be written against objects only.
    """

    __slots__ = ("_snapshot", "_delta", "_probe", "_close")

    def __init__(
        self,
        snapshot: Callable[[], BackendSnapshot],
        delta: DeltaSource | None = None,
        probe: ProbeSource | None = None,
        close: Callable[[], None] | None = None,
    ) -> None:
        self._snapshot = snapshot
        self._delta = delta
        self._probe = probe
        self._close = close

    def snapshot(self) -> BackendSnapshot:
        return self._snapshot()

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        if self._delta is None:
            from repro.core.backends.base import delta_from_snapshot

            return delta_from_snapshot(self._snapshot(), cursor)
        return self._delta(cursor)

    def version(self) -> object | None:
        return self._probe() if self._probe is not None else None

    def close(self) -> None:
        if self._close is not None:
            self._close()

    def capabilities(self) -> SourceCapabilities:
        """This adapter's exact capabilities (no fallback synthesis)."""
        return SourceCapabilities(
            snapshot=self._snapshot,
            delta=self._delta,
            probe=self._probe,
            close=self._close,
        )


def capabilities_of(obj: object) -> SourceCapabilities:
    """Discover what stream capabilities ``obj`` offers.

    Accepted shapes, probed in order:

    * a :class:`BoundSource` (its exact capabilities are adopted);
    * anything exposing monitor-style ``snapshot_source`` / ``delta_source``
      / ``probe_source`` properties (a ``HeartbeatMonitor`` attachment);
    * anything with ``snapshot`` (a ``Backend``, a ``SharedMemoryReader``, a
      collector per-stream view, ...) — ``snapshot_since`` / ``version`` /
      ``close`` ride along when present.  An object's own ``snapshot``
      always wins over any ``backend`` it wraps, so locking wrappers are
      never bypassed;
    * anything with a ``backend`` attribute that is itself a source (a
      ``Heartbeat`` — the backend's capabilities are adopted);
    * a bare zero-argument callable, treated as a snapshot provider with no
      optional capabilities.

    Raises ``TypeError`` for anything else.  Capabilities are discovered by
    attribute, never by ``isinstance``: a third-party object that grew
    ``snapshot_since`` yesterday gets incremental polling today.
    """
    if isinstance(obj, BoundSource):
        return obj.capabilities()
    if callable(getattr(obj, "stream_ids", None)):
        # A collector-like object is a *set* of streams, and its
        # snapshot/snapshot_source surface takes a stream id — accepting it
        # here would wire a source whose every read fails.  Reject loudly.
        raise TypeError(
            f"{type(obj).__name__} is collector-like (it has stream_ids); "
            "attach it with attach_collector() / TelemetrySession.fleet(), "
            "or pick one stream via its source(stream_id) view"
        )
    monitor_snapshot = getattr(obj, "snapshot_source", None)
    if monitor_snapshot is not None and callable(monitor_snapshot):
        return SourceCapabilities(
            snapshot=monitor_snapshot,
            delta=getattr(obj, "delta_source", None),
            probe=getattr(obj, "probe_source", None),
            close=getattr(obj, "close", None),
        )
    # The object's own snapshot wins over any `backend` attribute it holds:
    # a wrapper like the collector's per-stream view serialises access to
    # its inner backend, and unwrapping would bypass that lock.
    snapshot = getattr(obj, "snapshot", None)
    if snapshot is not None and callable(snapshot):
        close = getattr(obj, "close", None)
        return SourceCapabilities(
            snapshot=snapshot,
            delta=getattr(obj, "snapshot_since", None),
            probe=getattr(obj, "version", None),
            close=close if callable(close) else None,
        )
    backend = getattr(obj, "backend", None)
    if backend is not None and callable(getattr(backend, "snapshot", None)):
        return capabilities_of(backend)
    if callable(obj):
        return SourceCapabilities(snapshot=obj)  # type: ignore[arg-type]
    raise TypeError(
        f"{type(obj).__name__} is not a stream source: expected snapshot()/"
        "snapshot_source, a Heartbeat, or a zero-argument snapshot callable"
    )
