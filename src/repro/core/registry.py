"""Process-level registry of heartbeat streams.

The paper distinguishes *global* (per-application) heartbeats from *local*
(per-thread) heartbeats: "each thread should have its own private heartbeat
history buffer and each application should have a single shared history
buffer".  The registry implements that split for one process:

* exactly one global :class:`~repro.core.heartbeat.Heartbeat`, shared and
  thread-safe;
* one local :class:`Heartbeat` per thread, created lazily on first use and
  accessible only from its owning thread (reads of other threads' local
  buffers are refused, mirroring the paper's access rule).

The functional API in :mod:`repro.core.api` routes its ``local`` flag through
a module-level :class:`HeartbeatRegistry`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from repro.core.errors import RegistryError
from repro.core.heartbeat import Heartbeat

__all__ = ["HeartbeatRegistry"]


class HeartbeatRegistry:
    """Holds the global heartbeat and the per-thread local heartbeats."""

    def __init__(self, factory: Callable[..., Heartbeat] | None = None) -> None:
        self._factory = factory if factory is not None else Heartbeat
        self._lock = threading.Lock()
        self._global: Heartbeat | None = None
        self._locals: dict[int, Heartbeat] = {}
        self._default_kwargs: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #
    def initialize(self, window: int = 0, **kwargs: object) -> Heartbeat:
        """Create the global heartbeat (idempotent only if not yet created)."""
        with self._lock:
            if self._global is not None:
                raise RegistryError("global heartbeat already initialized")
            # Local heartbeats inherit the global configuration, except the
            # backend: a backend instance is one stream's storage and sharing
            # it would interleave two streams into one buffer.
            self._default_kwargs = {k: v for k, v in kwargs.items() if k != "backend"}
            self._global = self._factory(window, name="global", **kwargs)
            return self._global

    def initialize_local(self, window: int = 0, **kwargs: object) -> Heartbeat:
        """Create the calling thread's local heartbeat."""
        tid = threading.get_ident()
        with self._lock:
            if tid in self._locals:
                raise RegistryError(f"local heartbeat already initialized for thread {tid}")
            merged = {**self._default_kwargs, **kwargs}
            merged.setdefault("thread_safe", False)
            hb = self._factory(window, name=f"local-{tid}", **merged)
            self._locals[tid] = hb
            return hb

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, local: bool = False) -> Heartbeat:
        """Return the global heartbeat, or the calling thread's local one."""
        if local:
            tid = threading.get_ident()
            hb = self._locals.get(tid)
            if hb is None:
                raise RegistryError(
                    f"no local heartbeat initialized for thread {tid}; "
                    "call initialize_local() first"
                )
            return hb
        if self._global is None:
            raise RegistryError("no global heartbeat initialized; call initialize() first")
        return self._global

    @property
    def has_global(self) -> bool:
        return self._global is not None

    def has_local(self) -> bool:
        """True when the calling thread has a local heartbeat."""
        return threading.get_ident() in self._locals

    def iter_locals(self) -> Iterator[tuple[int, Heartbeat]]:
        """Iterate ``(thread_id, heartbeat)`` pairs (snapshot, unordered)."""
        with self._lock:
            return iter(list(self._locals.items()))

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def finalize(self) -> None:
        """Finalise and forget every registered heartbeat."""
        with self._lock:
            if self._global is not None:
                self._global.finalize()
                self._global = None
            for hb in self._locals.values():
                hb.finalize()
            self._locals.clear()
            self._default_kwargs = {}

    def finalize_local(self) -> None:
        """Finalise and forget the calling thread's local heartbeat."""
        tid = threading.get_ident()
        with self._lock:
            hb = self._locals.pop(tid, None)
        if hb is None:
            raise RegistryError(f"no local heartbeat initialized for thread {tid}")
        hb.finalize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatRegistry(global={self._global is not None}, "
            f"locals={len(self._locals)})"
        )
