"""C-style functional API matching the paper's Table 1 verbatim.

Applications that want their instrumentation to read exactly like the paper
(and like the original C reference implementation) can use these free
functions.  They operate on a module-level :class:`HeartbeatRegistry` so the
whole process shares one global heartbeat plus one local heartbeat per
thread, selected by the ``local`` flag each function accepts — just as every
function in Table 1 takes a ``local[bool]`` argument.

Example
-------
>>> from repro.core import api as hb
>>> hb.HB_initialize(window=20)
>>> for _ in range(100):
...     ...  # do one unit of work
...     hb.HB_heartbeat()
>>> rate = hb.HB_current_rate()
>>> hb.HB_finalize()

The object-oriented API (:class:`repro.core.heartbeat.Heartbeat`) is the
primary interface for new code; this module is a faithful facade over it.
"""

from __future__ import annotations

import os
import threading
import warnings

from repro.core.heartbeat import Heartbeat
from repro.core.record import HeartbeatRecord
from repro.core.registry import HeartbeatRegistry

__all__ = [
    "HB_initialize",
    "HB_heartbeat",
    "HB_heartbeat_n",
    "HB_current_rate",
    "HB_set_target_rate",
    "HB_get_target_min",
    "HB_get_target_max",
    "HB_get_history",
    "HB_global_rate",
    "HB_finalize",
    "HB_is_initialized",
    "get_registry",
    "reset_registry",
]

_registry = HeartbeatRegistry()
_registry_lock = threading.Lock()


def get_registry() -> HeartbeatRegistry:
    """Return the process-wide registry backing the functional API."""
    return _registry


def reset_registry() -> None:
    """Finalise every registered heartbeat and start from a clean slate.

    Primarily used by the test-suite and by long-running hosts that embed
    several instrumented phases in one process.
    """
    global _registry
    with _registry_lock:
        _registry.finalize()
        _registry = HeartbeatRegistry()


def HB_initialize(
    window: int = 0,
    local: bool = False,
    remote: str | None = None,
    endpoint: object | None = None,
    **kwargs: object,
) -> Heartbeat:
    """Initialise the heartbeat runtime (paper: ``HB_initialize``).

    ``window`` is the default number of heartbeats used to compute the
    average heart rate.  With ``local=True`` a per-thread heartbeat is
    created for the calling thread instead of the application-global one.
    Extra keyword arguments (``clock``, ``backend``, ``history``) are passed
    to :class:`~repro.core.heartbeat.Heartbeat`.

    ``endpoint`` names where the stream publishes, as a telemetry endpoint
    URL (see :mod:`repro.endpoints`): ``tcp://host:port`` ships batched
    heartbeats to a :class:`repro.net.collector.HeartbeatCollector`,
    registered as ``"global-<pid>"`` (or ``"local-<pid>-<tid>"``) unless the
    URL carries ``?stream=`` or a ``stream=`` keyword is passed;
    ``file://``/``shm://`` endpoints publish for same-host cross-process
    observers.  For every cross-process endpoint, beats are stamped with the
    host-wide monotonic clock (``WallClock(rebase=False)``) unless a
    ``clock`` is supplied, so external observers compute liveness ages
    against the producer's time base.

    ``remote="host:port"`` is the deprecated facade spelling of
    ``endpoint="tcp://host:port"`` and delegates to it.
    """
    if remote is not None:
        if endpoint is not None:
            raise ValueError("pass either endpoint= or remote=, not both")
        warnings.warn(
            "HB_initialize(remote='host:port') is a deprecated facade; "
            "pass endpoint='tcp://host:port' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        endpoint = f"tcp://{remote}"
    if endpoint is not None:
        if "backend" in kwargs:
            raise ValueError("pass either endpoint= or backend=, not both")
        from dataclasses import replace

        from repro.clock import WallClock
        from repro.endpoints import Endpoint, MemEndpoint, TcpEndpoint

        ep = Endpoint.parse(endpoint)  # type: ignore[arg-type]
        kwargs = dict(kwargs)
        if isinstance(ep, TcpEndpoint):
            if "stream" in kwargs and ep.stream is not None:
                raise ValueError(
                    "pass the stream name in the URL (?stream=) or as "
                    "stream=, not both"
                )
            if ep.stream is None:
                if local:
                    stream = f"local-{os.getpid()}-{threading.get_ident()}"
                else:
                    stream = f"global-{os.getpid()}"
                ep = replace(ep, stream=str(kwargs.pop("stream", stream)))
        elif "stream" in kwargs:
            raise ValueError(
                "stream= applies only to tcp:// endpoints; file/shm/mem "
                "endpoints are named in the URL itself"
            )
        # Heartbeat opens the endpoint itself (one layer owns URL → backend,
        # including mem:// history/window sizing).  The registry rejects
        # conflicting registrations *before* construction, and Heartbeat
        # validates its arguments before opening, so a rejected stream never
        # leaves an opened backend behind.
        kwargs["backend"] = ep
        if not isinstance(ep, MemEndpoint):
            kwargs.setdefault("clock", WallClock(rebase=False))
    if local:
        return _registry.initialize_local(window, **kwargs)
    return _registry.initialize(window, **kwargs)


def HB_heartbeat(tag: int = 0, local: bool = False) -> int:
    """Register a heartbeat to indicate progress (paper: ``HB_heartbeat``)."""
    return _registry.get(local).heartbeat(tag)


def HB_heartbeat_n(n: int, tag: int = 0, local: bool = False) -> int:
    """Register ``n`` heartbeats in one batched call.

    The batched counterpart of :func:`HB_heartbeat`: one lock acquisition and
    one vectorized buffer write ingest the whole batch, so instrumenting "one
    beat per work item" stays affordable even for very fine-grained items.
    Returns the sequence number of the first beat in the batch.
    """
    return _registry.get(local).heartbeat_batch(n, tag)


def HB_current_rate(window: int = 0, local: bool = False) -> float:
    """Average heart rate over the last ``window`` beats (paper: ``HB_current_rate``).

    ``window=0`` uses the default window given to :func:`HB_initialize`.
    """
    return _registry.get(local).current_rate(window)


def HB_set_target_rate(target_min: float, target_max: float, local: bool = False) -> None:
    """Publish the desired heart-rate range (paper: ``HB_set_target_rate``)."""
    _registry.get(local).set_target_rate(target_min, target_max)


def HB_get_target_min(local: bool = False) -> float:
    """Minimum target heart rate (paper: ``HB_get_target_min``)."""
    return _registry.get(local).target_min


def HB_get_target_max(local: bool = False) -> float:
    """Maximum target heart rate (paper: ``HB_get_target_max``)."""
    return _registry.get(local).target_max


def HB_get_history(n: int | None = None, local: bool = False) -> list[HeartbeatRecord]:
    """Timestamp, tag and thread ID of the last ``n`` beats (paper: ``HB_get_history``)."""
    return _registry.get(local).get_history(n)


def HB_global_rate(local: bool = False) -> float:
    """Whole-execution average heart rate (the metric of the paper's Table 2)."""
    return _registry.get(local).global_heart_rate()


def HB_is_initialized(local: bool = False) -> bool:
    """True when the requested heartbeat stream has been initialised."""
    if local:
        return _registry.has_local()
    return _registry.has_global


def HB_finalize(local: bool = False) -> None:
    """Finalise the heartbeat runtime.

    With ``local=True`` only the calling thread's local heartbeat is
    finalised; otherwise the global heartbeat *and* all local heartbeats are
    finalised (end-of-application semantics).
    """
    if local:
        _registry.finalize_local()
    else:
        _registry.finalize()
