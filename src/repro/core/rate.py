"""Heart-rate computation.

A *heart rate* is the average number of heartbeats per second over a window
of the most recent heartbeats.  Given the timestamps ``t_0 .. t_{w-1}`` of the
last ``w`` beats the windowed rate is::

    rate = (w - 1) / (t_{w-1} - t_0)

i.e. the number of inter-beat intervals divided by the time they span, which
matches the intuitive reading "beats per second over the last ``w`` beats".
A window of one beat (or a zero-length span) has an undefined instantaneous
rate; those cases return ``0.0`` so that observers polling a freshly started
application see "no measurable progress yet" rather than an exception — the
same behaviour an external observer reading a file with a single entry would
get from the paper's reference implementation.

The module also provides global (whole-history) rates and moving-average
series used to regenerate the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import InvalidWindowError

__all__ = [
    "windowed_rate",
    "global_rate",
    "instantaneous_rate",
    "moving_rate_series",
    "RateStatistics",
    "rate_statistics",
]


def windowed_rate(timestamps: Sequence[float] | np.ndarray) -> float:
    """Return the average heart rate over the given beat timestamps.

    ``timestamps`` must be sorted in non-decreasing order (production order).
    Fewer than two timestamps, or a zero time span, yield ``0.0``.
    """
    ts = np.asarray(timestamps, dtype=np.float64)
    if ts.ndim != 1:
        raise ValueError(f"timestamps must be one-dimensional, got shape {ts.shape}")
    if ts.size < 2:
        return 0.0
    span = float(ts[-1] - ts[0])
    if span < 0:
        raise ValueError("timestamps are not sorted in non-decreasing order")
    if span == 0.0:
        return 0.0
    return (ts.size - 1) / span


def global_rate(first_timestamp: float, last_timestamp: float, total_beats: int) -> float:
    """Return the whole-execution average heart rate.

    This is the metric reported in the paper's Table 2: the number of beats
    produced over the full run divided by the elapsed time between the first
    and last beat.
    """
    if total_beats < 2:
        return 0.0
    span = last_timestamp - first_timestamp
    if span < 0:
        raise ValueError("last_timestamp precedes first_timestamp")
    if span == 0.0:
        return 0.0
    return (total_beats - 1) / span


def instantaneous_rate(previous_timestamp: float, current_timestamp: float) -> float:
    """Return the instantaneous rate implied by a single inter-beat interval."""
    interval = current_timestamp - previous_timestamp
    if interval < 0:
        raise ValueError("current_timestamp precedes previous_timestamp")
    if interval == 0.0:
        return 0.0
    return 1.0 / interval


def moving_rate_series(
    timestamps: Sequence[float] | np.ndarray, window: int
) -> np.ndarray:
    """Return the moving-average heart rate at every beat.

    Element ``i`` of the result is the windowed rate computed over beats
    ``max(0, i - window + 1) .. i`` — exactly the series plotted in the
    paper's Figures 2, 3, 5–8 ("a moving average of heart rate ... using a
    20 beat window").  Beats with fewer than two timestamps in their window
    report ``0.0``.
    """
    if isinstance(window, bool) or not isinstance(window, (int, np.integer)):
        raise InvalidWindowError(f"window must be an int, got {window!r}")
    if window < 1:
        raise InvalidWindowError(f"window must be >= 1, got {window}")
    ts = np.asarray(timestamps, dtype=np.float64)
    if ts.ndim != 1:
        raise ValueError(f"timestamps must be one-dimensional, got shape {ts.shape}")
    n = ts.size
    out = np.zeros(n, dtype=np.float64)
    if n < 2:
        return out
    starts = np.maximum(0, np.arange(n) - (window - 1))
    spans = ts - ts[starts]
    counts = np.arange(n) - starts  # number of intervals in each window
    valid = (counts >= 1) & (spans > 0)
    out[valid] = counts[valid] / spans[valid]
    return out


@dataclass(frozen=True, slots=True)
class RateStatistics:
    """Summary statistics of a heart-rate series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float

    def within(self, low: float, high: float) -> bool:
        """Return True when the mean rate lies inside ``[low, high]``."""
        return low <= self.mean <= high


def rate_statistics(rates: Sequence[float] | np.ndarray) -> RateStatistics:
    """Summarise a series of heart-rate samples (ignores leading zeros).

    Leading zeros correspond to the warm-up beats for which no windowed rate
    exists yet; including them would bias every experiment's mean downwards.
    """
    arr = np.asarray(rates, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"rates must be one-dimensional, got shape {arr.shape}")
    nonzero = np.nonzero(arr)[0]
    trimmed = arr[nonzero[0] :] if nonzero.size else arr[:0]
    if trimmed.size == 0:
        return RateStatistics(count=0, mean=0.0, minimum=0.0, maximum=0.0, std=0.0)
    return RateStatistics(
        count=int(trimmed.size),
        mean=float(np.mean(trimmed)),
        minimum=float(np.min(trimmed)),
        maximum=float(np.max(trimmed)),
        std=float(np.std(trimmed)),
    )
