"""The :class:`Heartbeat` object — the paper's Table 1 API in object form.

A :class:`Heartbeat` owns one heartbeat stream: a history buffer, a default
rate window, and a published target heart-rate range.  Applications call
:meth:`Heartbeat.heartbeat` at significant points; the application itself or
an external observer reads progress back through :meth:`current_rate`,
:meth:`get_history` and the target accessors.

The mapping to the paper's functions is:

==========================  =======================================
Paper (Table 1)             This class
==========================  =======================================
``HB_initialize``           ``Heartbeat(window=..., ...)``
``HB_heartbeat``            :meth:`heartbeat`
``HB_heartbeat_n``          :meth:`heartbeat_batch`
``HB_current_rate``         :meth:`current_rate`
``HB_set_target_rate``      :meth:`set_target_rate`
``HB_get_target_min``       :meth:`target_min` (property)
``HB_get_target_max``       :meth:`target_max` (property)
``HB_get_history``          :meth:`get_history`
==========================  =======================================

A thin C-style functional facade over this class lives in
:mod:`repro.core.api` for code that wants to read exactly like the paper.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.clock import Clock, WallClock
from repro.core.backends.base import Backend
from repro.core.backends.memory import MemoryBackend
from repro.core.errors import (
    HeartbeatClosedError,
    InvalidTargetError,
    InvalidWindowError,
)
from repro.core.rate import global_rate, windowed_rate
from repro.core.record import RECORD_DTYPE, HeartbeatRecord
from repro.core.window import MAX_WINDOW, resolve_window, validate_default_window

__all__ = ["Heartbeat"]


class Heartbeat:
    """A single heartbeat stream (global per application, or per thread).

    Parameters
    ----------
    window:
        Default number of heartbeats used to compute the average heart rate
        when a rate query passes ``window=0``.  ``0`` selects the library
        default (:data:`repro.core.window.DEFAULT_WINDOW`).
    name:
        Optional human-readable name, used by the process-level registry and
        by file/shared-memory observers.
    clock:
        Time source used to stamp beats; defaults to :class:`WallClock`.
    backend:
        Storage backend; defaults to an in-process :class:`MemoryBackend`
        whose capacity is ``max(history, window)``.  May also be a telemetry
        endpoint URL string or parsed :class:`~repro.endpoints.Endpoint`
        (``mem://``, ``file:///path``, ``shm://name?depth=65536``,
        ``tcp://host:port``), opened through
        :func:`repro.endpoints.open_backend` with this heartbeat's ``name``
        as the default ``tcp://`` stream name.
    history:
        Number of beats retained for history queries when this constructor
        sizes in-process storage itself: the default memory backend, and a
        ``mem://`` endpoint URL without an explicit ``?capacity=``.  Ignored
        when a backend *object* (or any other endpoint scheme, which sizes
        storage via URL parameters) is supplied.
    thread_safe:
        When True (default) beat registration is serialised with a lock, which
        is required for the application-global heartbeat shared by several
        threads ("a mutex is used to guarantee mutual exclusion and ordering
        when multiple threads attempt to register a global heartbeat at the
        same time").  Per-thread local heartbeats may pass False to shave the
        locking overhead.
    """

    def __init__(
        self,
        window: int = 0,
        *,
        name: str = "heartbeat",
        clock: Clock | None = None,
        backend: "Backend | str | object | None" = None,
        history: int = 2048,
        thread_safe: bool = True,
    ) -> None:
        self.name = str(name)
        self._clock = clock if clock is not None else WallClock()
        self._window = validate_default_window(window)
        if history <= 0:
            raise InvalidWindowError(f"history must be positive, got {history}")
        capacity = min(max(int(history), self._window), MAX_WINDOW)
        if backend is not None and not isinstance(backend, Backend):
            # Endpoint URL (or parsed Endpoint): open through the front door.
            # Anything else non-Backend is trusted as a duck-typed sink.
            from dataclasses import replace

            from repro.endpoints import Endpoint, MemEndpoint, open_backend

            if isinstance(backend, (str, Endpoint)):
                ep = Endpoint.parse(backend)
                if isinstance(ep, MemEndpoint) and ep.capacity is None:
                    # A mem:// URL without ?capacity= sizes its history
                    # exactly like the default backend would.
                    ep = replace(ep, capacity=capacity)
                # A default-named stream must not impose "heartbeat" as the
                # wire stream id (every process would collide at the
                # collector); the network backend's per-process default
                # applies instead.
                stream = self.name if self.name != "heartbeat" else None
                backend = open_backend(ep, stream=stream)
        self._backend = backend if backend is not None else MemoryBackend(capacity)  # type: ignore[assignment]
        self._backend.set_default_window(self._window)
        self._lock: threading.Lock | _NullLock = (
            threading.Lock() if thread_safe else _NullLock()
        )
        self._count = 0
        self._first_timestamp: float | None = None
        self._last_timestamp: float | None = None
        self._target_min = 0.0
        self._target_max = 0.0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Producer API
    # ------------------------------------------------------------------ #
    def heartbeat(self, tag: int = 0, *, thread_id: int | None = None) -> int:
        """Register one heartbeat and return its sequence number.

        The beat is stamped with the current clock time and the caller's
        thread identifier (overridable with ``thread_id``, which simulated
        processes use to stamp their own identity).
        """
        if self._closed:
            raise HeartbeatClosedError(f"heartbeat {self.name!r} is finalized")
        tid = threading.get_ident() if thread_id is None else int(thread_id)
        with self._lock:
            now = self._clock.now()
            beat = self._count
            self._backend.append(beat, now, int(tag), tid)
            self._count += 1
            if self._first_timestamp is None:
                self._first_timestamp = now
            self._last_timestamp = now
            return beat

    def heartbeat_batch(
        self,
        n: int,
        tag: int | Sequence[int] | np.ndarray = 0,
        *,
        thread_id: int | None = None,
    ) -> int:
        """Register ``n`` heartbeats at once; return the first sequence number.

        The batched ingestion path: one lock acquisition, one clock read and
        one vectorized backend write cover the whole batch, so the amortized
        per-beat cost is a small fraction of :meth:`heartbeat`'s — the paper's
        one-beat-per-25 000-options amortization without losing the beat
        count.  The batch says "``n`` units of work finished since the last
        beat", so the records' timestamps are spread linearly across the
        interval from the previous beat to now (ending exactly at now); rate
        windows that fall inside a single batch therefore still measure the
        true throughput instead of a zero span.  The first-ever batch has no
        preceding beat and stamps every record with the current time.

        ``tag`` may be a scalar (stamped on every record) or a length-``n``
        sequence of per-record tags.  ``heartbeat_batch(1)`` is equivalent to
        :meth:`heartbeat` including its return value; ``n == 0`` is a no-op
        that returns the sequence number the next beat will receive.
        Negative ``n`` raises ``ValueError``.
        """
        if self._closed:
            raise HeartbeatClosedError(f"heartbeat {self.name!r} is finalized")
        if isinstance(n, bool) or not isinstance(n, (int, np.integer)):
            raise ValueError(f"n must be an int, got {n!r}")
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        tid = threading.get_ident() if thread_id is None else int(thread_id)
        with self._lock:
            if n == 0:
                return self._count
            now = self._clock.now()
            first = self._count
            n = int(n)
            records = np.empty(n, dtype=RECORD_DTYPE)
            records["beat"] = np.arange(first, first + n, dtype=np.int64)
            previous = self._last_timestamp
            if previous is None or previous >= now:
                records["timestamp"] = now
            else:
                step = (now - previous) / n
                timestamps = previous + step * np.arange(1, n + 1)
                timestamps[-1] = now  # exact, despite float rounding
                records["timestamp"] = timestamps
            records["tag"] = tag  # scalar broadcast or per-record array
            records["thread_id"] = tid
            self._backend.append_many(records)
            self._count += int(n)
            if self._first_timestamp is None:
                self._first_timestamp = now
            self._last_timestamp = now
            return first

    def set_target_rate(self, target_min: float, target_max: float) -> None:
        """Publish the heart-rate range this application wants to maintain."""
        tmin = float(target_min)
        tmax = float(target_max)
        if tmin < 0 or tmax < 0:
            raise InvalidTargetError(
                f"target rates must be non-negative, got [{tmin}, {tmax}]"
            )
        if tmin > tmax:
            raise InvalidTargetError(
                f"target minimum {tmin} exceeds target maximum {tmax}"
            )
        with self._lock:
            self._target_min = tmin
            self._target_max = tmax
            self._backend.set_targets(tmin, tmax)

    def finalize(self) -> None:
        """Finalise the heartbeat stream and release backend resources.

        Mirrors the finalisation call the paper's instrumented PARSEC
        benchmarks perform; subsequent :meth:`heartbeat` calls raise
        :class:`HeartbeatClosedError`.  Idempotent.
        """
        if not self._closed:
            self._closed = True
            self._backend.close()

    close = finalize

    def __enter__(self) -> "Heartbeat":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finalize()

    # ------------------------------------------------------------------ #
    # Observation API (application or external observer in-process)
    # ------------------------------------------------------------------ #
    def current_rate(self, window: int = 0) -> float:
        """Average heart rate (beats/second) over the last ``window`` beats.

        ``window=0`` uses the default window registered at construction time.
        Windows larger than the default are silently clipped to it.  Returns
        ``0.0`` until at least two heartbeats have been registered.
        """
        with self._lock:
            available = min(self._count, self._backend.capacity)
            effective = resolve_window(window, self._window, available)
            if effective < 2:
                return 0.0
            snap = self._backend.snapshot(effective)
        return windowed_rate(snap.records["timestamp"])

    def global_heart_rate(self) -> float:
        """Whole-execution average heart rate (the Table 2 metric)."""
        with self._lock:
            if self._count < 2 or self._first_timestamp is None or self._last_timestamp is None:
                return 0.0
            return global_rate(self._first_timestamp, self._last_timestamp, self._count)

    def get_history(self, n: int | None = None) -> list[HeartbeatRecord]:
        """Return the last ``n`` heartbeats in production order.

        ``None`` (or a value larger than the retained history) returns the
        full retained history; the paper allows implementations to bound
        ``n`` and this implementation bounds it by the backend capacity.
        """
        if n is not None and n < 0:
            raise InvalidWindowError(f"n must be >= 0, got {n}")
        with self._lock:
            snap = self._backend.snapshot(n)
        return snap.as_records()

    def get_history_array(self, n: int | None = None) -> np.ndarray:
        """Structured-array variant of :meth:`get_history` (zero-copy friendly)."""
        if n is not None and n < 0:
            raise InvalidWindowError(f"n must be >= 0, got {n}")
        with self._lock:
            snap = self._backend.snapshot(n)
        return snap.records

    def rate_series(self, window: int = 0) -> np.ndarray:
        """Moving-average heart rate at every retained beat (figure helper)."""
        from repro.core.rate import moving_rate_series  # local import to avoid cycle in docs

        effective = self._window if window == 0 else window
        ts = self.get_history_array()["timestamp"]
        return moving_rate_series(ts, effective)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def target_min(self) -> float:
        """Minimum target heart rate set by :meth:`set_target_rate` (0 if unset)."""
        return self._target_min

    @property
    def target_max(self) -> float:
        """Maximum target heart rate set by :meth:`set_target_rate` (0 if unset)."""
        return self._target_max

    @property
    def window(self) -> int:
        """Default rate window."""
        return self._window

    @property
    def count(self) -> int:
        """Total number of heartbeats registered so far."""
        return self._count

    @property
    def backend(self) -> Backend:
        """The storage backend (exposed for observers and tests)."""
        return self._backend

    @property
    def clock(self) -> Clock:
        """The time source stamping this stream's beats."""
        return self._clock

    @property
    def closed(self) -> bool:
        return self._closed

    def last_timestamp(self) -> float | None:
        """Timestamp of the most recent beat (``None`` before the first beat)."""
        return self._last_timestamp

    def intervals(self, n: int | None = None) -> np.ndarray:
        """Inter-beat intervals (seconds) over the last ``n`` beats."""
        ts = self.get_history_array(n)["timestamp"]
        return np.diff(ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Heartbeat(name={self.name!r}, count={self._count}, window={self._window}, "
            f"target=[{self._target_min}, {self._target_max}])"
        )


class _NullLock:
    """No-op lock used when thread safety is explicitly disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None
