"""Fixed-capacity circular history buffer for heartbeat records.

The paper recommends storing heartbeats "efficiently ... in a circular
buffer.  When the buffer fills, old heartbeats are simply dropped"
(Section 3).  :class:`CircularBuffer` implements that policy on top of a numpy
structured array so the shared-memory backend can expose the very same layout
to external observers without copying.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import InvalidWindowError
from repro.core.record import RECORD_DTYPE, HeartbeatRecord, array_to_records

__all__ = ["CircularBuffer", "circular_batch_slices"]


def circular_batch_slices(
    total: int, capacity: int, n: int
) -> list[tuple[slice, slice]]:
    """Placement of an ``n``-record batch into a circular array of ``capacity``.

    Returns ``(destination, source)`` slice pairs — one pair, or two when the
    batch wraps around the end of the storage — that place the last
    ``min(n, capacity)`` records of the batch at the slots they would occupy
    had every record been appended individually after ``total`` prior
    appends.  Shared by :meth:`CircularBuffer.push_many` and the
    shared-memory backend's batched seqlock write so the nontrivial index
    math lives in exactly one place.
    """
    keep = min(n, capacity)
    skip = n - keep
    start = (total + skip) % capacity
    first = min(keep, capacity - start)
    pairs = [(slice(start, start + first), slice(skip, skip + first))]
    if keep > first:
        pairs.append((slice(0, keep - first), slice(skip + first, n)))
    return pairs


class CircularBuffer:
    """A bounded FIFO of :class:`HeartbeatRecord` backed by a numpy array.

    Parameters
    ----------
    capacity:
        Maximum number of records retained.  Must be a positive integer.
    storage:
        Optional pre-allocated structured array of dtype
        :data:`repro.core.record.RECORD_DTYPE` and length ``capacity``; used by
        the shared-memory backend to place the buffer inside a shared segment.
        When omitted a private array is allocated.
    total:
        Number of records ``storage`` already holds (in append order).  Lets
        a buffer adopt pre-populated storage — e.g. the fleet benchmark
        sharing one deep synthetic history across thousands of streams —
        without replaying every append.  Requires ``storage``.

    Notes
    -----
    The buffer only appends; records are never mutated after insertion.  The
    total number of beats ever pushed is available as :attr:`total`, which is
    what windowed heart-rate computations use for sequence numbering even
    after old records have been evicted.
    """

    __slots__ = ("_capacity", "_data", "_total")

    def __init__(
        self, capacity: int, *, storage: np.ndarray | None = None, total: int = 0
    ) -> None:
        if not isinstance(capacity, (int, np.integer)) or isinstance(capacity, bool):
            raise InvalidWindowError(f"capacity must be an int, got {capacity!r}")
        if capacity <= 0:
            raise InvalidWindowError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        if storage is None:
            if total != 0:
                raise ValueError("total requires pre-populated storage")
            storage = np.zeros(self._capacity, dtype=RECORD_DTYPE)
        else:
            if storage.dtype != RECORD_DTYPE:
                raise ValueError(
                    f"storage dtype must be {RECORD_DTYPE}, got {storage.dtype}"
                )
            if len(storage) != self._capacity:
                raise ValueError(
                    f"storage length {len(storage)} does not match capacity {self._capacity}"
                )
            if total < 0:
                raise ValueError(f"total must be >= 0, got {total}")
        self._data = storage
        self._total = int(total)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Maximum number of records retained."""
        return self._capacity

    @property
    def total(self) -> int:
        """Total number of records ever appended (monotonically increasing)."""
        return self._total

    def __len__(self) -> int:
        """Number of records currently retained (``<= capacity``)."""
        return min(self._total, self._capacity)

    def __bool__(self) -> bool:
        return self._total > 0

    @property
    def is_full(self) -> bool:
        return self._total >= self._capacity

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(self, record: HeartbeatRecord) -> None:
        """Append ``record``, evicting the oldest record when full."""
        slot = self._total % self._capacity
        self._data[slot] = (record.beat, record.timestamp, record.tag, record.thread_id)
        self._total += 1

    def append_raw(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        """Append a record from raw fields without building a dataclass.

        The hot path of :meth:`repro.core.heartbeat.Heartbeat.heartbeat` uses
        this to avoid per-beat object allocation.
        """
        slot = self._total % self._capacity
        self._data[slot] = (beat, timestamp, tag, thread_id)
        self._total += 1

    def push_many(self, records: np.ndarray) -> None:
        """Append a batch of records with at most two slab writes.

        ``records`` must be a structured array of dtype
        :data:`repro.core.record.RECORD_DTYPE` in production order.  The
        result is identical to appending each record individually — including
        eviction of the oldest records — but the copy is vectorized: the
        batch lands as one contiguous slice assignment, or two when it wraps
        around the end of the circular storage.  Batches larger than the
        capacity keep only their last ``capacity`` records, placed at the
        slots they would have occupied had every record been appended.
        """
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        n = int(records.shape[0])
        if n == 0:
            return
        for destination, source in circular_batch_slices(self._total, self._capacity, n):
            self._data[destination] = records[source]
        self._total += n

    def clear(self) -> None:
        """Drop all retained records and reset the total counter."""
        self._total = 0

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def last(self, n: int | None = None) -> list[HeartbeatRecord]:
        """Return the last ``n`` records in production order (oldest first).

        ``n`` defaults to all retained records.  Requests larger than the
        retained history are clipped, mirroring the API's window-clipping
        rule.
        """
        return array_to_records(self.last_array(n))

    def last_array(self, n: int | None = None) -> np.ndarray:
        """Return the last ``n`` records as a structured array copy."""
        held = len(self)
        if n is None:
            n = held
        if n < 0:
            raise InvalidWindowError(f"n must be >= 0, got {n}")
        return self.last_array_at(self._total, min(n, held))

    def last_array_at(self, total: int, n: int) -> np.ndarray:
        """Copy the last ``n`` records *as of* ``total`` appends.

        Anchoring the slice at a caller-captured ``total`` (instead of the
        live counter) lets a lock-free reader racing a producer compute
        ``n`` and the slice from one consistent point; the caller checks
        afterwards whether the producer wrapped into the copied region.
        """
        if n == 0:
            return np.empty(0, dtype=RECORD_DTYPE)
        end = total % self._capacity
        if total <= self._capacity:
            # Linear layout: valid records live in [0, total).
            return self._data[total - n : total].copy()
        # Wrapped layout: the logical sequence ends at `end`.
        start = (end - n) % self._capacity
        if start < end:
            return self._data[start:end].copy()
        return np.concatenate((self._data[start:], self._data[:end]))

    def latest(self) -> HeartbeatRecord:
        """Return the most recent record.

        Raises ``IndexError`` when the buffer is empty.
        """
        if self._total == 0:
            raise IndexError("heartbeat buffer is empty")
        slot = (self._total - 1) % self._capacity
        row = self._data[slot]
        return HeartbeatRecord(
            beat=int(row["beat"]),
            timestamp=float(row["timestamp"]),
            tag=int(row["tag"]),
            thread_id=int(row["thread_id"]),
        )

    def timestamps(self, n: int | None = None) -> np.ndarray:
        """Return the timestamps of the last ``n`` records as ``float64``."""
        return self.last_array(n)["timestamp"]

    def __iter__(self) -> Iterator[HeartbeatRecord]:
        return iter(self.last())

    def snapshot(self) -> Sequence[HeartbeatRecord]:
        """Alias of :meth:`last` with no arguments (full retained history)."""
        return self.last()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircularBuffer(capacity={self._capacity}, retained={len(self)}, "
            f"total={self._total})"
        )
