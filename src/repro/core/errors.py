"""Exception hierarchy for the heartbeats core package.

Every error raised by :mod:`repro.core` derives from :class:`HeartbeatError`
so callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the specific failure mode.
"""

from __future__ import annotations

__all__ = [
    "HeartbeatError",
    "HeartbeatStateError",
    "HeartbeatClosedError",
    "InvalidWindowError",
    "InvalidTargetError",
    "BackendError",
    "BackendFormatError",
    "ProtocolError",
    "MonitorAttachError",
    "RegistryError",
]


class HeartbeatError(Exception):
    """Base class for all errors raised by the heartbeats framework."""


class HeartbeatStateError(HeartbeatError):
    """An operation was attempted in an invalid state.

    For example requesting a heart rate before any heartbeat has been
    registered, or re-initialising an already initialised functional-API
    slot.
    """


class HeartbeatClosedError(HeartbeatStateError):
    """The heartbeat instance has been finalised and cannot accept beats."""


class InvalidWindowError(HeartbeatError, ValueError):
    """A window size was not a positive integer (or zero where allowed)."""


class InvalidTargetError(HeartbeatError, ValueError):
    """A target heart-rate range was malformed (negative or min > max)."""


class BackendError(HeartbeatError):
    """A storage backend failed to persist or load heartbeat data."""


class BackendFormatError(BackendError):
    """A backend found data that does not match the expected layout.

    Raised when attaching to a shared-memory segment or file whose header
    magic/version does not match this implementation.
    """


class ProtocolError(BackendFormatError):
    """A networked heartbeat byte stream violated the wire protocol.

    Raised while encoding or decoding telemetry frames: bad magic, an
    unsupported version, a corrupt length prefix or a failed CRC check.  A
    collector responds by dropping the offending connection, never by dying.
    """


class MonitorAttachError(HeartbeatError):
    """An external observer could not attach to the requested heartbeat."""


class RegistryError(HeartbeatError):
    """A named heartbeat registration conflict or missing registration."""
