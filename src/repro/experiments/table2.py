"""Experiment E1 — Table 2: Heartbeats in the PARSEC benchmark suite.

The paper instruments the ten buildable PARSEC 1.0 benchmarks, runs them on
the eight-core test platform with the native inputs, and reports where the
heartbeat was inserted and the average heart rate each benchmark achieved.
This experiment reproduces the table on the simulated reference machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ExperimentResult, register_experiment
from repro.workloads.suite import run_table2

__all__ = ["Table2Config", "run", "report"]


@dataclass(frozen=True, slots=True)
class Table2Config:
    """Configuration of the Table-2 reproduction."""

    #: Cores allocated to each benchmark (the paper's platform has eight).
    cores: int = 8
    #: Beats simulated per benchmark; ``None`` uses each workload's default.
    beats_per_workload: int | None = None
    #: Workload seed (all workloads are deterministic given the seed).
    seed: int = 0


def run(config: Table2Config = Table2Config()) -> ExperimentResult:
    """Run the suite and build the reproduced Table 2."""
    rows = run_table2(
        cores=config.cores,
        beats_per_workload=config.beats_per_workload,
        seed=config.seed,
    )
    result = ExperimentResult(
        name="table2",
        description="Heartbeats in the PARSEC benchmark suite (paper Table 2)",
        headers=(
            "Benchmark",
            "Heartbeat location",
            "Paper heart rate",
            "Measured heart rate",
            "Relative error",
        ),
        rows=[
            (
                r.benchmark,
                r.heartbeat_location,
                r.paper_heart_rate,
                round(r.measured_heart_rate, 2),
                f"{r.relative_error * 100.0:.1f}%",
            )
            for r in rows
        ],
    )
    result.notes.append(
        "per-beat cost models are calibrated to the paper's Table-2 rates on the "
        "8-core reference machine; the experiment verifies the end-to-end "
        "instrumentation, simulation and rate computation reproduce them"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    """Render the reproduced table as text."""
    return (result or run()).to_text()


@register_experiment("table2")
def _default() -> ExperimentResult:
    return run()
