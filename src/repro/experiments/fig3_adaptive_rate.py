"""Experiment E3 — Figure 3: heart rate of the internally adaptive encoder.

The paper launches x264 with demanding Main-profile parameters (8.8 beat/s on
the eight-core testbed), lets the Heartbeat-enabled encoder check its own
heart rate every 40 frames, and shows it gradually trading quality for speed
until it sustains its 30 beat/s goal (settling a little above 35 beat/s).
This experiment reproduces that trajectory with the block encoder and its
preset ladder on the calibrated simulated platform.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.traces import TraceSet
from repro.experiments.adaptive_runner import AdaptiveRunConfig, run_encoder
from repro.experiments.base import ExperimentResult, register_experiment

__all__ = ["run", "report", "AdaptiveRunConfig"]


def run(config: AdaptiveRunConfig = AdaptiveRunConfig()) -> ExperimentResult:
    """Run the adaptive encoder and extract the Figure-3 series."""
    output = run_encoder(config, adaptive=True)
    rates = output.heart_rates()
    levels = output.levels()
    traces = TraceSet(title="Figure 3: heart rate of adaptive x264")
    traces.add("heart_rate", rates)
    traces.add("level", levels.astype(float))
    traces.add("performance_goal", np.full(len(rates), config.target_min))
    # The first window of beats is warm-up: the intra frame and the first few
    # inter frames are cheap (few references exist yet), so their windowed
    # rate says nothing about the demanding configuration's sustained speed.
    warmup = config.rate_window
    start_rate = float(np.mean(rates[warmup : warmup + 20])) if len(rates) > warmup + 20 else 0.0
    final_rate = float(np.mean(rates[-50:]))
    post_warmup = rates[warmup:]
    hits = np.nonzero(post_warmup >= config.target_min)[0]
    first_at_goal = int(hits[0]) + warmup if hits.size else -1
    fraction_met = (
        float(np.mean(rates[first_at_goal:] >= config.target_min * 0.95))
        if first_at_goal >= 0
        else 0.0
    )
    result = ExperimentResult(
        name="fig3",
        description="Adaptive encoder reaches its 30 beat/s goal (paper Figure 3)",
        headers=("Quantity", "Paper", "Measured"),
        rows=[
            ("initial heart rate (beat/s)", 8.8, round(start_rate, 2)),
            ("performance goal (beat/s)", 30.0, config.target_min),
            ("final heart rate (beat/s)", ">= 30 (settles ~35)", round(final_rate, 2)),
            ("first beat meeting the goal", "~400", first_at_goal),
            ("fraction of beats >= goal after first crossing", "~1.0", round(fraction_met, 3)),
            ("final preset-ladder level", "diamond-search end of ladder", int(levels[-1])),
        ],
        traces=traces,
    )
    result.notes.append(
        f"platform capacity calibrated to {output.work_rate:.0f} work units/s so the "
        f"demanding preset runs at {config.calibration_rate} beat/s, as in the paper"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig3")
def _default() -> ExperimentResult:
    return run()
