"""Experiment E6 — Figure 6: streamcluster under the external scheduler.

The paper registers one heartbeat per 5 000 streamed points (streamcluster
sustains just over 0.75 beat/s on eight cores), starts the benchmark on one
core and asks the scheduler to hold the narrow 0.50–0.55 beat/s window.  The
scheduler reaches the window by roughly the twenty-second heartbeat and keeps
the application inside it for the rest of the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control import TargetWindow
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.scheduler_runner import SchedulerRunConfig, run_scheduled_workload
from repro.workloads.streamcluster import StreamclusterWorkload

__all__ = ["Fig6Config", "run", "report"]


@dataclass(frozen=True, slots=True)
class Fig6Config:
    """Configuration of the Figure-6 reproduction."""

    beats: int = 90
    target_min: float = 0.50
    target_max: float = 0.55
    cores: int = 8
    rate_window: int = 10
    seed: int = 0


def run(config: Fig6Config = Fig6Config()) -> ExperimentResult:
    workload = StreamclusterWorkload.figure6(seed=config.seed)
    sched_config = SchedulerRunConfig(
        target_min=config.target_min,
        target_max=config.target_max,
        beats=config.beats,
        cores=config.cores,
        rate_window=config.rate_window,
        decision_interval=3,
    )
    output = run_scheduled_workload(
        workload, sched_config, title="Figure 6: streamcluster with an external scheduler"
    )
    target = TargetWindow(config.target_min, config.target_max)
    rates = output.traces["heart_rate"].values
    in_window = np.nonzero((rates >= config.target_min) & (rates <= config.target_max))[0]
    first_in_window = int(in_window[0]) if in_window.size else -1
    result = ExperimentResult(
        name="fig6",
        description="streamcluster scheduled into a 0.50-0.55 beat/s window (paper Figure 6)",
        headers=("Quantity", "Paper", "Measured"),
        rows=[
            ("first beat inside the window", "~22", first_in_window),
            (
                "fraction of beats inside the window after reaching it",
                "most",
                round(output.fraction_in_window(target, skip=max(first_in_window, 0) + 5), 3),
            ),
            ("mean steady-state rate (beat/s)", "0.50-0.55", round(float(np.mean(rates[first_in_window:])), 3) if first_in_window >= 0 else 0.0),
            ("maximum cores used", "<= 8", int(np.max(output.traces["cores"].values))),
            ("scheduler decisions taken", "n/a", len(output.scheduler.decisions)),
        ],
        traces=output.traces,
    )
    result.notes.append(
        "the Figure-6 configuration registers a heartbeat every 5000 points rather "
        "than Table 2's 200000, matching the paper's scheduler experiment"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig6")
def _default() -> ExperimentResult:
    return run()
