"""Experiment E9 — heartbeat-registration overhead (paper Section 5.1).

The paper reports that the framework's overhead is negligible for eight of
the ten PARSEC benchmarks, that registering a heartbeat after *every* option
in blackscholes adds an order of magnitude of slow-down (fixed by beating
every 25 000 options), and that facesim's per-frame heartbeat costs less than
5%.  This experiment measures the same three quantities in wall-clock time
with the real kernels, plus the raw per-call latency of each storage backend.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass

from repro.core.backends import FileBackend, MemoryBackend, SharedMemoryBackend
from repro.core.heartbeat import Heartbeat
from repro.experiments.base import ExperimentResult, register_experiment
from repro.workloads.blackscholes import BlackscholesWorkload
from repro.workloads.facesim import FacesimWorkload

__all__ = ["OverheadConfig", "run", "report", "measure_backend_latency"]


@dataclass(frozen=True, slots=True)
class OverheadConfig:
    """Configuration of the overhead study (sizes keep wall time modest)."""

    #: Batches of 25 000 options priced for the blackscholes comparison.
    blackscholes_batches: int = 6
    #: Frames simulated for the facesim comparison.
    facesim_frames: int = 20
    #: Heartbeat calls timed per backend for the latency table.
    backend_calls: int = 20_000
    seed: int = 0


def _time_blackscholes(config: OverheadConfig, beats_per_batch: int) -> float:
    """Wall time to price the batches with ``beats_per_batch`` heartbeats each.

    ``beats_per_batch == 0`` runs without any heartbeat instrumentation.  The
    instrumented runs use the file backend because that is what the paper's
    reference implementation does ("a new entry ... is written into a file"),
    and the file write is precisely what makes a beat per option expensive.
    Write-through mode reproduces the reference implementation's one-write-
    per-beat behaviour; the buffered default would amortize the syscall away
    and understate the Table 2 slowdown this experiment reproduces (the
    buffered win is measured separately in ``bench_overhead.py``).
    """
    workload = BlackscholesWorkload(seed=config.seed)
    heartbeat = None
    if beats_per_batch:
        path = os.path.join(tempfile.mkdtemp(prefix="hb-blackscholes-"), "heartbeat.log")
        heartbeat = Heartbeat(window=20, backend=FileBackend(path, buffered=False))
    start = time.perf_counter()
    for batch in range(config.blackscholes_batches):
        workload.execute_beat(batch)
        if heartbeat is not None:
            for _ in range(beats_per_batch):
                heartbeat.heartbeat(tag=batch)
    elapsed = time.perf_counter() - start
    if heartbeat is not None:
        heartbeat.finalize()
    return elapsed


def _time_facesim(config: OverheadConfig, instrumented: bool) -> float:
    workload = FacesimWorkload(seed=config.seed)
    heartbeat = Heartbeat(window=20) if instrumented else None
    start = time.perf_counter()
    for frame in range(config.facesim_frames):
        workload.execute_beat(frame)
        if heartbeat is not None:
            heartbeat.heartbeat(tag=frame)
    return time.perf_counter() - start


def measure_backend_latency(calls: int = 20_000) -> dict[str, float]:
    """Mean per-call latency (microseconds) of ``Heartbeat.heartbeat`` per backend."""
    results: dict[str, float] = {}
    # Memory backend.
    hb = Heartbeat(window=20, backend=MemoryBackend(4096))
    start = time.perf_counter()
    for i in range(calls):
        hb.heartbeat(tag=i)
    results["memory"] = (time.perf_counter() - start) / calls * 1e6
    # File backend — write-through, like the paper's one-write-per-beat
    # reference implementation (the buffered default would amortize the
    # syscall this row exists to measure).
    path = os.path.join(tempfile.mkdtemp(prefix="hb-overhead-"), "heartbeat.log")
    hb_file = Heartbeat(window=20, backend=FileBackend(path, buffered=False))
    start = time.perf_counter()
    for i in range(calls):
        hb_file.heartbeat(tag=i)
    results["file"] = (time.perf_counter() - start) / calls * 1e6
    hb_file.finalize()
    # Shared-memory backend.
    shm = SharedMemoryBackend(capacity=4096)
    hb_shm = Heartbeat(window=20, backend=shm)
    start = time.perf_counter()
    for i in range(calls):
        hb_shm.heartbeat(tag=i)
    results["shared_memory"] = (time.perf_counter() - start) / calls * 1e6
    hb_shm.finalize()
    return results


def run(config: OverheadConfig = OverheadConfig()) -> ExperimentResult:
    baseline = _time_blackscholes(config, beats_per_batch=0)
    per_batch = _time_blackscholes(config, beats_per_batch=1)
    per_option = _time_blackscholes(config, beats_per_batch=25_000)
    facesim_plain = _time_facesim(config, instrumented=False)
    facesim_hb = _time_facesim(config, instrumented=True)
    latency = measure_backend_latency(config.backend_calls)
    rows = [
        (
            "blackscholes, heartbeat per 25000 options (slowdown)",
            "negligible",
            round(per_batch / baseline, 3),
        ),
        (
            "blackscholes, heartbeat per option (slowdown)",
            "order of magnitude",
            round(per_option / baseline, 2),
        ),
        (
            "facesim, heartbeat per frame (overhead)",
            "< 5%",
            f"{(facesim_hb / facesim_plain - 1.0) * 100.0:.2f}%",
        ),
        ("memory backend latency (us/beat)", "n/a", round(latency["memory"], 2)),
        ("file backend latency (us/beat)", "n/a", round(latency["file"], 2)),
        ("shared-memory backend latency (us/beat)", "n/a", round(latency["shared_memory"], 2)),
    ]
    result = ExperimentResult(
        name="overhead",
        description="Heartbeat API overhead (paper Section 5.1)",
        headers=("Quantity", "Paper", "Measured"),
        rows=rows,
    )
    result.notes.append(
        "wall-clock measurement with the real kernels; absolute slowdowns depend on "
        "the host, but the per-option configuration must be dramatically worse than "
        "the per-25000 configuration while facesim's per-frame beat stays cheap"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("overhead")
def _default() -> ExperimentResult:
    return run()
