"""Experiment E8 — Figure 8: heartbeats for fault tolerance.

The paper initialises the adaptive encoder with a parameter set that achieves
30 beat/s on the healthy eight-core testbed, then simulates core failures at
frames 160, 320 and 480.  Three traces are compared:

* **Healthy** — the unmodified encoder with no failures (stays above 30);
* **Unhealthy** — the unmodified encoder with the failures (falls below
  25 beat/s);
* **Adaptive** — the Heartbeat-enabled encoder with the failures, which
  detects the rate drops and sheds quality to stay above its target.

The encoder never learns which cores failed — it only observes its own heart
rate, which is the paper's point about the generality of the approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.traces import TraceSet
from repro.experiments.adaptive_runner import AdaptiveRunConfig, calibrate_work_rate, run_encoder
from repro.experiments.base import ExperimentResult, register_experiment
from repro.faults.injector import FailureEvent, FaultInjector

__all__ = ["Fig8Config", "run", "report"]


@dataclass(frozen=True, slots=True)
class Fig8Config:
    """Configuration of the Figure-8 reproduction."""

    frames: int = 600
    #: Beats at which one core fails (the paper uses 160, 320 and 480).
    failure_beats: tuple[int, ...] = (160, 320, 480)
    total_cores: int = 8
    target_min: float = 30.0
    #: Preset-ladder level that achieves ~30+ beat/s on the healthy machine;
    #: used as the initial (and, for the non-adaptive runs, only) level.
    initial_level: int = 5
    frame_size: int = 48
    check_interval: int = 40
    rate_window: int = 20
    seed: int = 1


def _run_config(config: Fig8Config) -> AdaptiveRunConfig:
    return AdaptiveRunConfig(
        frames=config.frames,
        frame_width=config.frame_size,
        frame_height=config.frame_size,
        target_min=config.target_min,
        check_interval=config.check_interval,
        rate_window=config.rate_window,
        initial_level=config.initial_level,
        seed=config.seed,
        # The healthy machine should give the initial preset a comfortable
        # margin above the 30 beat/s goal, as in the paper's healthy trace.
        calibration_rate=36.0,
    )


def _injector(config: Fig8Config) -> FaultInjector:
    return FaultInjector(
        [FailureEvent(beat=b, cores=1) for b in config.failure_beats],
        total_cores=config.total_cores,
    )


def run(config: Fig8Config = Fig8Config()) -> ExperimentResult:
    run_config = _run_config(config)
    work_rate = calibrate_work_rate(run_config)
    healthy = run_encoder(run_config, adaptive=False, work_rate=work_rate)
    unhealthy = run_encoder(
        run_config, adaptive=False, work_rate=work_rate, injector=_injector(config)
    )
    adaptive = run_encoder(
        run_config, adaptive=True, work_rate=work_rate, injector=_injector(config)
    )
    traces = TraceSet(title="Figure 8: fault tolerance with the adaptive encoder")
    traces.add("healthy", healthy.heart_rates())
    traces.add("unhealthy", unhealthy.heart_rates())
    traces.add("adaptive", adaptive.heart_rates())
    traces.add("adaptive_level", adaptive.levels().astype(float))
    last_failure = max(config.failure_beats)
    tail = slice(last_failure + config.rate_window, None)
    warm = slice(config.rate_window, None)
    rows = [
        (
            "healthy mean rate (beat/s)",
            "> 30",
            round(float(np.mean(healthy.heart_rates()[warm])), 2),
        ),
        (
            "unhealthy rate after all failures (beat/s)",
            "< 25",
            round(float(np.mean(unhealthy.heart_rates()[tail])), 2),
        ),
        (
            "adaptive rate after all failures (beat/s)",
            ">= 30",
            round(float(np.mean(adaptive.heart_rates()[tail])), 2),
        ),
        (
            "adaptive quality levels shed",
            "algorithm changes only",
            int(adaptive.levels()[-1] - adaptive.levels()[0]),
        ),
        (
            "fraction of post-failure beats >= goal (adaptive)",
            "~1.0",
            round(float(np.mean(adaptive.heart_rates()[tail] >= config.target_min * 0.95)), 3),
        ),
    ]
    result = ExperimentResult(
        name="fig8",
        description="Adaptive encoder rides through simulated core failures (paper Figure 8)",
        headers=("Quantity", "Paper", "Measured"),
        rows=rows,
        traces=traces,
    )
    result.notes.append(
        "core failures are applied by scaling the simulated platform capacity to "
        "healthy_cores/total_cores at the scheduled beats; the encoder observes only "
        "its heart rate"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig8")
def _default() -> ExperimentResult:
    return run()
