"""Shared runner for the adaptive-encoder experiments (Figures 3, 4 and 8).

All three figures drive the same machinery: a synthetic video source, a
:class:`~repro.encoder.AdaptiveEncoder` (or its non-adaptive baseline)
registering one heartbeat per frame on a simulated clock, and a platform
capacity (``work_rate``) calibrated so the paper's demanding configuration
achieves the paper's 8.8 beat/s on the healthy eight-core machine.  The
fault-tolerance experiment additionally scales the capacity down when the
:class:`~repro.faults.FaultInjector`'s schedule fires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat
from repro.encoder.adaptive import AdaptiveEncoder, AdaptiveFrameRecord
from repro.encoder.encoder import BlockEncoder
from repro.encoder.frames import SceneCut, SyntheticVideoSource
from repro.encoder.settings import preset
from repro.faults.injector import FaultInjector

__all__ = ["AdaptiveRunConfig", "AdaptiveRunOutput", "calibrate_work_rate", "run_encoder"]

#: Heart rate the paper's unmodified x264 achieves with the demanding
#: parameters on the eight-core testbed (Section 5.2).
PAPER_BASELINE_RATE = 8.8


@dataclass(frozen=True, slots=True)
class AdaptiveRunConfig:
    """Configuration shared by the encoder-driven experiments.

    The defaults use a 48x48 synthetic video and 450 frames (the paper's
    traces cover roughly 600 frames of real video); both are configurable and
    neither changes the shape of the results.
    """

    frames: int = 450
    frame_width: int = 48
    frame_height: int = 48
    block_size: int = 8
    target_min: float = 30.0
    target_max: float = math.inf
    check_interval: int = 40
    rate_window: int = 40
    initial_level: int = 0
    seed: int = 1
    #: Heart rate the initial preset should achieve at full capacity; used to
    #: calibrate the simulated platform capacity.
    calibration_rate: float = PAPER_BASELINE_RATE
    #: Scene phases of the synthetic video (defaults to the encoder source's
    #: Figure-2-like profile).
    scene_cuts: tuple[SceneCut, ...] | None = None


@dataclass(slots=True)
class AdaptiveRunOutput:
    """Per-frame records plus the calibration used to produce them."""

    records: list[AdaptiveFrameRecord]
    work_rate: float
    config: AdaptiveRunConfig
    capacity_fractions: list[float] = field(default_factory=list)

    def heart_rates(self) -> np.ndarray:
        return np.array([r.heart_rate for r in self.records], dtype=np.float64)

    def psnrs(self) -> np.ndarray:
        return np.array([r.psnr for r in self.records], dtype=np.float64)

    def levels(self) -> np.ndarray:
        return np.array([r.level for r in self.records], dtype=np.int64)


def _make_source(config: AdaptiveRunConfig) -> SyntheticVideoSource:
    kwargs: dict[str, object] = {"seed": config.seed}
    if config.scene_cuts is not None:
        kwargs["scene_cuts"] = config.scene_cuts
    return SyntheticVideoSource(config.frame_width, config.frame_height, **kwargs)


def calibrate_work_rate(
    config: AdaptiveRunConfig, *, calibration_level: int | None = None, frames: int = 8
) -> float:
    """Platform capacity (work units per second) for the experiment.

    Encodes a few frames with the calibration preset to measure its
    steady-state work per frame, then returns the capacity that makes that
    preset run at ``config.calibration_rate`` beats per second — the paper's
    8.8 beat/s for the demanding configuration.
    """
    level = config.initial_level if calibration_level is None else calibration_level
    source = _make_source(config)
    encoder = BlockEncoder(
        config.frame_width,
        config.frame_height,
        block_size=config.block_size,
        settings=preset(level),
    )
    works = [encoder.encode_frame(source.frame(i)).work for i in range(max(frames, 3))]
    steady = float(np.mean(works[-2:]))
    return steady * config.calibration_rate


def run_encoder(
    config: AdaptiveRunConfig,
    *,
    adaptive: bool = True,
    work_rate: float | None = None,
    injector: FaultInjector | None = None,
) -> AdaptiveRunOutput:
    """Run the (adaptive or baseline) encoder for ``config.frames`` frames.

    ``injector``, when given, scales the platform capacity by its
    :meth:`~repro.faults.FaultInjector.capacity_fraction` before each frame —
    the encoder only ever observes the resulting drop in heart rate.
    """
    base_rate = work_rate if work_rate is not None else calibrate_work_rate(config)
    clock = SimulatedClock()
    heartbeat = Heartbeat(
        window=config.rate_window, clock=clock, history=max(2048, config.frames + 16)
    )
    encoder = AdaptiveEncoder(
        _make_source(config),
        heartbeat,
        target_min=config.target_min,
        target_max=config.target_max,
        check_interval=config.check_interval,
        initial_level=config.initial_level,
        work_rate=base_rate,
        adaptive=adaptive,
        block_size=config.block_size,
    )
    output = AdaptiveRunOutput(records=[], work_rate=base_rate, config=config)
    for i in range(config.frames):
        fraction = injector.capacity_fraction(i) if injector is not None else 1.0
        output.capacity_fractions.append(fraction)
        encoder.set_work_rate(max(base_rate * fraction, 1e-9))
        output.records.append(encoder.encode_next())
    return output
