"""Command-line runner regenerating every table and figure.

``repro-experiments`` (installed as a console script) runs any subset of the
experiments and prints their tables; ``--output`` additionally appends the
text to a file, which is how ``EXPERIMENTS.md``'s measured columns were
produced.

Examples
--------
Run everything::

    repro-experiments all

Run only the scheduler figures::

    repro-experiments fig5 fig6 fig7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

# Importing the experiment modules populates the registry.
from repro.experiments import (  # noqa: F401  (imported for registration side effects)
    fig2_x264_phases,
    fig3_adaptive_rate,
    fig4_adaptive_psnr,
    fig5_bodytrack_scheduler,
    fig6_streamcluster_scheduler,
    fig7_x264_scheduler,
    fig8_fault_tolerance,
    overhead,
    table2,
)
from repro.experiments.base import EXPERIMENTS, ExperimentResult

__all__ = ["main", "run_experiments", "available_experiments"]


def available_experiments() -> list[str]:
    """Names of every registered experiment, in registration order."""
    return list(EXPERIMENTS)


def run_experiments(names: Sequence[str]) -> list[ExperimentResult]:
    """Run the named experiments (``["all"]`` runs every one) and return results."""
    selected = available_experiments() if list(names) == ["all"] else list(names)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; available: {available_experiments()}"
        )
    return [EXPERIMENTS[name]() for name in selected]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the Application Heartbeats paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"experiment names (default: all). Available: {', '.join(available_experiments())}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="also append the report text to this file"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    names = args.experiments or ["all"]
    chunks: list[str] = []
    start = time.perf_counter()
    try:
        results = run_experiments(names)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for result in results:
        text = result.to_text()
        chunks.append(text)
        print(text)
        print()
    elapsed = time.perf_counter() - start
    footer = f"ran {len(results)} experiment(s) in {elapsed:.1f}s"
    print(footer)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n" + footer + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - direct execution
    raise SystemExit(main())
