"""Shared experiment result container and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.tables import render_rows
from repro.analysis.traces import TraceSet

__all__ = ["ExperimentResult", "EXPERIMENTS", "register_experiment"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    name:
        Experiment identifier (``"table2"``, ``"fig5"``, ...).
    description:
        One-line description including the paper reference.
    headers, rows:
        Tabular output (the rows the paper's table reports, or summary rows
        for figure experiments).
    traces:
        Beat-indexed series for figure experiments (heart rate, cores, PSNR
        difference, ...).
    notes:
        Free-form remarks recorded during the run (calibration values,
        substitutions, ...).
    """

    name: str
    description: str
    headers: Sequence[str] = ()
    rows: list[Sequence[object]] = field(default_factory=list)
    traces: TraceSet | None = None
    notes: list[str] = field(default_factory=list)

    def to_text(self, *, precision: int = 2) -> str:
        """Render the result (title, table, notes) as plain text."""
        parts = [f"== {self.name}: {self.description}"]
        if self.rows:
            parts.append(render_rows(self.headers, self.rows, precision=precision))
        if self.traces is not None:
            parts.append(
                "traces: "
                + ", ".join(f"{t.name}[{len(t)}]" for t in self.traces)
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


#: Registry of experiment run functions, keyed by experiment name.  Each
#: entry is a zero-argument callable returning an :class:`ExperimentResult`
#: with default configuration (the CLI runner uses it).
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {}


def register_experiment(name: str) -> Callable[[Callable[[], ExperimentResult]], Callable[[], ExperimentResult]]:
    """Decorator registering a default-config experiment runner."""

    def decorator(fn: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        EXPERIMENTS[name] = fn
        return fn

    return decorator
