"""Experiment E5 — Figure 5: bodytrack under the external scheduler.

The paper starts bodytrack (which sustains over 4 beat/s on all eight cores)
on a single core and lets the external scheduler keep its heart rate between
2.5 and 3.5 beat/s.  The scheduler quickly grows the allocation to about
seven cores, briefly needs the eighth when the rate dips near beat 102, and
reclaims cores after the computational load drops sharply around beat 141 —
eventually the application meets its goal on a single core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.scheduler_runner import SchedulerRunConfig, run_scheduled_workload
from repro.workloads.bodytrack import BodytrackWorkload

__all__ = ["Fig5Config", "run", "report"]


@dataclass(frozen=True, slots=True)
class Fig5Config:
    """Configuration of the Figure-5 reproduction."""

    beats: int = 260
    target_min: float = 2.5
    target_max: float = 3.5
    cores: int = 8
    load_drop_beat: int = 141
    seed: int = 0


def run(config: Fig5Config = Fig5Config()) -> ExperimentResult:
    workload = BodytrackWorkload.figure5(seed=config.seed, load_drop_beat=config.load_drop_beat)
    sched_config = SchedulerRunConfig(
        target_min=config.target_min,
        target_max=config.target_max,
        beats=config.beats,
        cores=config.cores,
    )
    output = run_scheduled_workload(
        workload, sched_config, title="Figure 5: bodytrack with an external scheduler"
    )
    cores = output.traces["cores"].values
    rates = output.traces["heart_rate"].values
    warmup = sched_config.rate_window
    # Steady state starts once the scheduler has finished its initial ramp-up
    # from one core (the paper's trace likewise begins well below the window).
    steady_start = 3 * warmup
    before_drop = slice(steady_start, config.load_drop_beat)
    after_drop = slice(config.load_drop_beat + warmup, None)
    result = ExperimentResult(
        name="fig5",
        description="bodytrack scheduled into a 2.5-3.5 beat/s window (paper Figure 5)",
        headers=("Quantity", "Paper", "Measured"),
        rows=[
            ("cores needed before the load drop", "7-8", round(float(np.max(cores[before_drop])), 1)),
            ("cores needed at the end of the run", 1, int(cores[-1])),
            (
                "fraction of beats inside the window (steady state, pre-drop)",
                "most",
                round(
                    float(
                        np.mean(
                            (rates[before_drop] >= config.target_min)
                            & (rates[before_drop] <= config.target_max)
                        )
                    ),
                    3,
                ),
            ),
            ("mean rate before the load drop (beat/s)", "2.5-3.5", round(float(np.mean(rates[before_drop])), 2)),
            ("mean rate after the load drop (beat/s)", "2.5-3.5", round(float(np.mean(rates[after_drop])), 2)),
            ("scheduler decisions taken", "n/a", len(output.scheduler.decisions)),
        ],
        traces=output.traces,
    )
    result.notes.append(
        "the load drop at beat "
        f"{config.load_drop_beat} reproduces the paper's sudden decrease in "
        "computational load, after which the scheduler reclaims cores"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig5")
def _default() -> ExperimentResult:
    return run()
