"""Experiment E2 — Figure 2: heart rate of the x264 PARSEC benchmark.

The paper plots a 20-beat moving average of x264's heart rate on the native
input and observes three distinct performance regions: roughly 12–14 beat/s
for the first ~100 frames, 23–29 beat/s between frames ~100 and ~330, then
back to 12–14 beat/s.  This experiment runs the phase-structured x264
workload on the simulated eight-core machine and reports the same series and
the per-phase rate bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.traces import TraceSet
from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat
from repro.core.rate import moving_rate_series
from repro.experiments.base import ExperimentResult, register_experiment
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.workloads.x264 import X264Workload

__all__ = ["Fig2Config", "run", "report"]


@dataclass(frozen=True, slots=True)
class Fig2Config:
    """Configuration of the Figure-2 reproduction."""

    #: Frames encoded (the paper's trace covers a bit over 500 frames).
    beats: int = 530
    #: Moving-average window (the paper uses 20 beats).
    window: int = 20
    #: Cores allocated to the benchmark.
    cores: int = 8
    seed: int = 0


#: The phase boundaries of the paper's trace and the rate band of each phase.
PAPER_PHASES = (
    (0, 100, (12.0, 14.0)),
    (100, 330, (23.0, 29.0)),
    (330, 530, (12.0, 14.0)),
)


def run(config: Fig2Config = Fig2Config()) -> ExperimentResult:
    """Run the phase-structured x264 workload and extract the rate trace."""
    workload = X264Workload.figure2(seed=config.seed)
    clock = SimulatedClock()
    machine = SimulatedMachine(config.cores)
    heartbeat = Heartbeat(window=config.window, clock=clock, history=config.beats + 16)
    process = SimulatedProcess(workload, heartbeat, machine, cores=config.cores)
    engine = ExecutionEngine(clock)
    engine.run(process, config.beats)
    timestamps = heartbeat.get_history_array()["timestamp"]
    rates = moving_rate_series(timestamps, config.window)
    traces = TraceSet(title="Figure 2: x264 heart rate, native-like input")
    traces.add("heart_rate", rates)
    rows = []
    for start, stop, (band_low, band_high) in PAPER_PHASES:
        stop = min(stop, config.beats)
        if stop <= start:
            continue
        section = rates[start + config.window : stop]  # skip window warm-up inside the phase
        measured = float(np.mean(section)) if section.size else 0.0
        rows.append(
            (
                f"frames {start}-{stop}",
                f"{band_low:.0f}-{band_high:.0f}",
                round(measured, 2),
                band_low * 0.8 <= measured <= band_high * 1.2,
            )
        )
    result = ExperimentResult(
        name="fig2",
        description="x264 heart rate phases on the native-like input (paper Figure 2)",
        headers=("Phase", "Paper band (beat/s)", "Measured mean", "Within 20% of band"),
        rows=rows,
        traces=traces,
    )
    result.notes.append(
        "the three-phase shape (hard opening, easy middle, hard tail) is the "
        "reproduction target; absolute rates track Table 2's 11.32 beat/s average"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig2")
def _default() -> ExperimentResult:
    return run()
