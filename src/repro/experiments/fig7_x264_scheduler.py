"""Experiment E7 — Figure 7: x264 under the external scheduler.

The paper runs x264 with easier parameters (it can exceed 40 beat/s on eight
cores), starts it on one core and asks the scheduler to hold 30–35 beat/s.
The scheduler keeps the encoder inside the window using four to six cores and
absorbs two brief performance spikes above 45 beat/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control import TargetWindow
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.scheduler_runner import SchedulerRunConfig, run_scheduled_workload
from repro.workloads.x264 import RatePhase, X264Workload

__all__ = ["Fig7Config", "run", "report"]


@dataclass(frozen=True, slots=True)
class Fig7Config:
    """Configuration of the Figure-7 reproduction."""

    beats: int = 600
    target_min: float = 30.0
    target_max: float = 35.0
    cores: int = 8
    seed: int = 0


#: Two brief easy sections reproduce the paper's transient spikes above
#: 45 beat/s (the scheduler reacts and pulls the rate back into the window).
SPIKE_PHASES = (
    RatePhase(start_beat=0, cost_multiplier=1.0),
    RatePhase(start_beat=200, cost_multiplier=0.5),
    RatePhase(start_beat=230, cost_multiplier=1.0),
    RatePhase(start_beat=430, cost_multiplier=0.5),
    RatePhase(start_beat=460, cost_multiplier=1.0),
)


def run(config: Fig7Config = Fig7Config()) -> ExperimentResult:
    workload = X264Workload.figure7(seed=config.seed, phases=SPIKE_PHASES)
    sched_config = SchedulerRunConfig(
        target_min=config.target_min,
        target_max=config.target_max,
        beats=config.beats,
        cores=config.cores,
    )
    output = run_scheduled_workload(
        workload, sched_config, title="Figure 7: x264 with an external scheduler"
    )
    target = TargetWindow(config.target_min, config.target_max)
    rates = output.traces["heart_rate"].values
    cores = output.traces["cores"].values
    warmup = sched_config.rate_window * 2
    steady_cores = cores[warmup:]
    result = ExperimentResult(
        name="fig7",
        description="x264 scheduled into a 30-35 beat/s window (paper Figure 7)",
        headers=("Quantity", "Paper", "Measured"),
        rows=[
            ("typical cores in steady state", "4-6", f"{int(np.percentile(steady_cores, 25))}-{int(np.percentile(steady_cores, 75))}"),
            (
                "fraction of beats inside the window (steady state)",
                "most",
                round(output.fraction_in_window(target, skip=warmup), 3),
            ),
            ("peak rate during spikes (beat/s)", "> 45", round(float(np.max(rates)), 1)),
            ("mean steady-state rate (beat/s)", "30-35", round(float(np.mean(rates[warmup:])), 2)),
            ("scheduler decisions taken", "n/a", len(output.scheduler.decisions)),
        ],
        traces=output.traces,
    )
    result.notes.append(
        "the input's two easy sections reproduce the paper's brief spikes above "
        "45 beat/s that the scheduler then absorbs"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig7")
def _default() -> ExperimentResult:
    return run()
