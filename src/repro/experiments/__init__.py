"""Regeneration harness: one module per table/figure of the paper.

Every experiment module exposes

* a ``Config`` dataclass with the paper's parameters as defaults (scaled-down
  frame counts are noted where used),
* ``run(config) -> ExperimentResult`` producing the table rows and/or
  beat-indexed traces the corresponding figure plots, and
* ``report(result) -> str`` rendering them as text.

``repro-experiments`` (see :mod:`repro.experiments.runner`) runs any subset
from the command line; the benchmark harness under ``benchmarks/`` calls the
same ``run`` functions so the numbers in EXPERIMENTS.md and the benchmark
output come from identical code paths.
"""

from repro.experiments.base import ExperimentResult, EXPERIMENTS, register_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "register_experiment"]
