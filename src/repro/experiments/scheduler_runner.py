"""Shared runner for the external-scheduler experiments (Figures 5, 6, 7).

Each figure runs one Heartbeat-enabled PARSEC workload under the external
scheduler: the application starts on a single core, publishes its target
heart-rate window, and the scheduler — observing nothing but the heartbeat
stream — adds and removes cores to keep the rate inside the window with the
minimum number of cores.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.analysis.traces import TraceSet
from repro.clock import SimulatedClock
from repro.control import TargetWindow
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.scheduler.allocator import CoreAllocator
from repro.scheduler.external import ExternalScheduler
from repro.scheduler.policies import AllocationPolicy
from repro.sim.engine import ExecutionEngine, RunResult
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.workloads.base import Workload

__all__ = ["SchedulerRunConfig", "SchedulerRunOutput", "run_scheduled_workload"]


@dataclass(frozen=True, slots=True)
class SchedulerRunConfig:
    """Configuration of one external-scheduler run."""

    target_min: float
    target_max: float
    beats: int
    cores: int = 8
    start_cores: int = 1
    rate_window: int = 20
    decision_interval: int = 5
    seed: int = 0


@dataclass(slots=True)
class SchedulerRunOutput:
    """Traces plus bookkeeping from one scheduler run."""

    run: RunResult
    traces: TraceSet
    scheduler: ExternalScheduler
    heartbeat: Heartbeat

    def fraction_in_window(self, target: TargetWindow, *, skip: int) -> float:
        rates = self.traces["heart_rate"].values[skip:]
        if rates.size == 0:
            return 0.0
        inside = np.count_nonzero((rates >= target.minimum) & (rates <= target.maximum))
        return inside / rates.size


def run_scheduled_workload(
    workload: Workload,
    config: SchedulerRunConfig,
    *,
    policy: AllocationPolicy | None = None,
    title: str = "external scheduler run",
) -> SchedulerRunOutput:
    """Run ``workload`` under the external scheduler and collect the traces."""
    clock = SimulatedClock()
    machine = SimulatedMachine(config.cores)
    heartbeat = Heartbeat(
        window=config.rate_window, clock=clock, history=max(2048, config.beats + 16)
    )
    # The application publishes its goal; the scheduler reads it back through
    # the monitor rather than being configured out of band.
    heartbeat.set_target_rate(config.target_min, config.target_max)
    process = SimulatedProcess(workload, heartbeat, machine, cores=config.start_cores)
    engine = ExecutionEngine(clock)
    monitor = HeartbeatMonitor.attach(heartbeat, window=config.rate_window)
    allocator = CoreAllocator(machine, process, max_cores=config.cores)
    with warnings.catch_warnings():
        # This runner *is* the blessed facade path for the figure
        # experiments; the deprecation aims at new external callers.
        warnings.simplefilter("ignore", DeprecationWarning)
        scheduler = ExternalScheduler(
            monitor,
            allocator,
            decision_interval=config.decision_interval,
            rate_window=config.rate_window,
            policy=policy,
        )
    scheduler.attach(engine)
    run_result = engine.run(process, config.beats, rate_window=config.rate_window)
    traces = TraceSet(title=title)
    traces.add("heart_rate", run_result.heart_rates())
    traces.add("cores", run_result.cores().astype(float))
    traces.add("target_min", np.full(run_result.beats, config.target_min))
    traces.add("target_max", np.full(run_result.beats, config.target_max))
    return SchedulerRunOutput(
        run=run_result, traces=traces, scheduler=scheduler, heartbeat=heartbeat
    )
