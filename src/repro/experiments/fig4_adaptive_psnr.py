"""Experiment E4 — Figure 4: image-quality cost of adaptation.

The paper compares the PSNR of the adaptive encoder's frames with the
unmodified encoder's frames on the same video: "In the worst case, the
adaptive version of x264 can lose as much as one dB of PSNR, but the average
loss is closer to 0.5 dB."  This experiment encodes the same synthetic
sequence twice — once adaptively, once with the demanding settings held fixed
— and reports the per-frame PSNR difference.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.traces import TraceSet
from repro.encoder.quality import psnr_series_difference
from repro.experiments.adaptive_runner import AdaptiveRunConfig, calibrate_work_rate, run_encoder
from repro.experiments.base import ExperimentResult, register_experiment

__all__ = ["run", "report", "AdaptiveRunConfig"]


def run(config: AdaptiveRunConfig = AdaptiveRunConfig()) -> ExperimentResult:
    """Run adaptive and baseline encoders on the same frames; compare PSNR."""
    work_rate = calibrate_work_rate(config)
    adaptive = run_encoder(config, adaptive=True, work_rate=work_rate)
    baseline = run_encoder(config, adaptive=False, work_rate=work_rate)
    diff = psnr_series_difference(adaptive.psnrs(), baseline.psnrs())
    traces = TraceSet(title="Figure 4: PSNR difference, adaptive minus unmodified")
    traces.add("psnr_difference", diff)
    traces.add("adaptive_psnr", adaptive.psnrs())
    traces.add("baseline_psnr", baseline.psnrs())
    # Quality only diverges once the adaptive encoder has moved off the
    # baseline settings; report the post-adaptation section like the paper's
    # figure (which shows the loss growing as the encoder speeds up).
    levels = adaptive.levels()
    changed = np.nonzero(levels != levels[0])[0]
    start = int(changed[0]) if changed.size else 0
    section = diff[start:] if diff[start:].size else diff
    mean_loss = float(np.mean(section))
    worst_loss = float(np.min(section))
    result = ExperimentResult(
        name="fig4",
        description="PSNR cost of adaptation (paper Figure 4)",
        headers=("Quantity", "Paper", "Measured"),
        rows=[
            ("mean PSNR difference after adaptation (dB)", "about -0.5", round(mean_loss, 3)),
            ("worst-case PSNR difference (dB)", "about -1.0", round(worst_loss, 3)),
            ("adaptive mean PSNR (dB)", "n/a", round(float(np.mean(adaptive.psnrs())), 2)),
            ("baseline mean PSNR (dB)", "n/a", round(float(np.mean(baseline.psnrs())), 2)),
            ("first adapted frame", "~40", start),
        ],
        traces=traces,
    )
    result.notes.append(
        "quality is measured against the source frames of the same synthetic video "
        "for both encoders; the adaptive encoder may only lose quality relative to "
        "the fixed demanding configuration"
    )
    return result


def report(result: ExperimentResult | None = None) -> str:
    return (result or run()).to_text()


@register_experiment("fig4")
def _default() -> ExperimentResult:
    return run()
