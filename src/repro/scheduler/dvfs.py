"""Heartbeat-driven frequency (DVFS) governor.

The paper's Section 2.1 envisions hardware "where decisions about dynamic
frequency and voltage scaling are driven by the performance measurements and
target heart rate mechanisms of the Heartbeats framework": run the core just
fast enough to meet the application's published goal and no faster, saving
energy whenever there is headroom.  :class:`DVFSGovernor` implements that
observer against the simulated machine — it is the frequency-domain analogue
of the core-allocation scheduler and composes with the same execution engine.

.. deprecated::
    This class is now a facade over the unified adaptation runtime: a
    :class:`repro.adapt.ControlLoop` (exposed as :attr:`loop`) binds the
    monitor to a :class:`~repro.control.step.StepController` and a
    :class:`repro.adapt.FrequencyActuator` over the discrete ladder.  New
    code should compose those directly — see the README's migration table.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.adapt.actuator import FrequencyActuator
from repro.adapt.loop import ControlLoop
from repro.control import DecisionSpacer, StepController, TargetWindow
from repro.core.monitor import HeartbeatMonitor
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess

__all__ = ["DVFSDecisionRecord", "DVFSGovernor"]

_DEPRECATION = (
    "DVFSGovernor is a deprecated facade: compose repro.adapt.ControlLoop "
    "with a FrequencyActuator instead (see the README 'Adaptation runtime' section)"
)


@dataclass(frozen=True, slots=True)
class DVFSDecisionRecord:
    """One governor observation/decision (legacy record shape).

    Superseded by :class:`repro.adapt.DecisionTrace`; kept so existing
    energy-proxy analyses read unchanged.
    """

    beat: int
    observed_rate: float
    frequency_before: float
    frequency_after: float

    @property
    def changed(self) -> bool:
        return self.frequency_after != self.frequency_before


class DVFSGovernor:
    """Adjusts the machine-wide frequency to hold the target heart rate.

    Parameters
    ----------
    monitor:
        Read-only view of the application's heartbeat stream.
    machine:
        The simulated machine whose frequency is governed.
    target:
        Target heart-rate window; ``None`` reads the range the application
        published via ``HB_set_target_rate``.
    frequencies:
        The discrete frequency ladder (fractions of nominal), lowest first.
        Defaults to the P-state-like ladder 0.4 .. 1.0.
    decision_interval:
        Beats between governor decisions.
    rate_window:
        Window used for the rate query (0 = the application's default).
    """

    def __init__(
        self,
        monitor: HeartbeatMonitor,
        machine: SimulatedMachine,
        *,
        target: TargetWindow | None = None,
        frequencies: tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        decision_interval: int = 5,
        rate_window: int = 0,
    ) -> None:
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        if not frequencies or any(f <= 0 for f in frequencies):
            raise ValueError("frequencies must be a non-empty tuple of positive values")
        if decision_interval < 1:
            raise ValueError(f"decision_interval must be >= 1, got {decision_interval}")
        self.monitor = monitor
        self.machine = machine
        if target is None:
            tmin, tmax = monitor.target_range()
            if tmax <= 0:
                raise ValueError(
                    "the application has not published a target heart-rate range; "
                    "pass target= explicitly"
                )
            target = TargetWindow(tmin, tmax)
        self.target = target
        #: Starts at nominal frequency and applies it to the machine, exactly
        #: like the pre-facade governor did.
        self.actuator = FrequencyActuator(machine, frequencies, apply_initial=True)
        self.frequencies = self.actuator.frequencies
        self.rate_window = int(rate_window)
        #: The unified adaptation loop doing the actual work.
        self.loop = ControlLoop(
            monitor,
            StepController(target),
            self.actuator,
            name="dvfs-governor",
            decision_interval=decision_interval,
            rate_window=rate_window,
        )
        self.decisions: list[DVFSDecisionRecord] = []

    @property
    def spacer(self) -> DecisionSpacer:
        """The loop's decision spacer (legacy accessor)."""
        return self.loop.spacer

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def current_frequency(self) -> float:
        return self.actuator.frequency

    def mean_frequency(self) -> float:
        """Average frequency over all decisions taken (energy proxy)."""
        if not self.decisions:
            return self.current_frequency
        return sum(d.frequency_after for d in self.decisions) / len(self.decisions)

    # ------------------------------------------------------------------ #
    # Decision step
    # ------------------------------------------------------------------ #
    def observe_and_act(self, beat_index: int) -> DVFSDecisionRecord | None:
        """Poll the monitor and, if due, step the frequency up or down."""
        trace = self.loop.step(beat_index)
        if trace is None:
            return None
        record = DVFSDecisionRecord(
            beat=trace.beat,
            observed_rate=trace.observed_rate,
            frequency_before=trace.before,
            frequency_after=trace.after,
        )
        self.decisions.append(record)
        return record

    def attach(self, engine: ExecutionEngine, process: SimulatedProcess) -> None:
        """Register the governor as an after-beat hook for ``process``."""

        def hook(beat_index: int, current: SimulatedProcess, _engine: ExecutionEngine) -> None:
            if current is process:
                self.observe_and_act(beat_index)

        engine.add_after_beat(hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DVFSGovernor(frequency={self.current_frequency}, "
            f"target=[{self.target.minimum}, {self.target.maximum}], "
            f"decisions={len(self.decisions)})"
        )
