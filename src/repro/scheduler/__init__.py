"""Heartbeat-driven external scheduler (paper Section 5.3, Figures 5–7).

The scheduler is the external observer of the paper's Figure 1(b): it reads
an application's heart rate and published target range through a
:class:`~repro.core.monitor.HeartbeatMonitor` and adjusts the number of cores
allocated to the application so the rate stays inside the target window while
using as few cores as possible.
"""

from repro.scheduler.allocator import AllocationChange, CoreAllocator
from repro.scheduler.dvfs import DVFSDecisionRecord, DVFSGovernor
from repro.scheduler.external import ExternalScheduler, SchedulerDecisionRecord
from repro.scheduler.policies import (
    AllocationPolicy,
    MinimizeCoresPolicy,
    ProportionalPolicy,
)

__all__ = [
    "CoreAllocator",
    "AllocationChange",
    "ExternalScheduler",
    "SchedulerDecisionRecord",
    "DVFSGovernor",
    "DVFSDecisionRecord",
    "AllocationPolicy",
    "MinimizeCoresPolicy",
    "ProportionalPolicy",
]
