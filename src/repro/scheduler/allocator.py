"""Core-allocation bookkeeping used by the external scheduler."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess

__all__ = ["AllocationChange", "CoreAllocator"]


@dataclass(frozen=True, slots=True)
class AllocationChange:
    """Record of one allocation adjustment."""

    beat: int
    previous_cores: int
    new_cores: int

    @property
    def delta(self) -> int:
        return self.new_cores - self.previous_cores


class CoreAllocator:
    """Applies bounded core-count changes to a simulated process.

    The allocator clamps requests to ``[min_cores, machine cores]`` and keeps
    the history of changes so experiments can plot the core trace alongside
    the heart-rate trace (the twin axes of Figures 5–7).
    """

    def __init__(
        self,
        machine: SimulatedMachine,
        process: SimulatedProcess,
        *,
        min_cores: int = 1,
        max_cores: int | None = None,
    ) -> None:
        if min_cores < 1:
            raise ValueError(f"min_cores must be >= 1, got {min_cores}")
        self.machine = machine
        self.process = process
        self.min_cores = int(min_cores)
        self.max_cores = int(max_cores) if max_cores is not None else machine.num_cores
        if self.max_cores < self.min_cores:
            raise ValueError("max_cores must be >= min_cores")
        self.history: list[AllocationChange] = []

    @property
    def current_cores(self) -> int:
        return self.process.allocated_cores

    def set_cores(self, cores: int, *, beat: int = -1) -> int:
        """Set the allocation to ``cores`` (clamped); returns the granted count."""
        clamped = max(self.min_cores, min(int(cores), self.max_cores))
        previous = self.current_cores
        if clamped != previous:
            self.process.set_cores(clamped)
            self.history.append(
                AllocationChange(beat=beat, previous_cores=previous, new_cores=clamped)
            )
        return clamped

    def adjust(self, delta: int, *, beat: int = -1) -> int:
        """Apply a signed change to the allocation; returns the new count."""
        return self.set_cores(self.current_cores + int(delta), beat=beat)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoreAllocator(current={self.current_cores}, "
            f"bounds=[{self.min_cores}, {self.max_cores}], changes={len(self.history)})"
        )
