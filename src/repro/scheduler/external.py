"""The external scheduler.

:class:`ExternalScheduler` reproduces the observer of the paper's Section
5.3: it polls the application's heart rate through a
:class:`~repro.core.monitor.HeartbeatMonitor` (never through any private
interface) and adjusts the core allocation so the rate stays inside the
target window the application published with ``HB_set_target_rate``.

The scheduler is deliberately ignorant of what the application computes — its
entire view of the world is the heartbeat stream, which is the paper's whole
point: "the decisions the scheduler makes are based directly on the
application's performance instead of being based on priority or some other
indirect measure."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control import DecisionSpacer, TargetWindow
from repro.core.monitor import HeartbeatMonitor
from repro.scheduler.allocator import CoreAllocator
from repro.scheduler.policies import AllocationPolicy, MinimizeCoresPolicy
from repro.sim.engine import ExecutionEngine
from repro.sim.process import SimulatedProcess

__all__ = ["SchedulerDecisionRecord", "ExternalScheduler"]


@dataclass(frozen=True, slots=True)
class SchedulerDecisionRecord:
    """One scheduler observation/decision."""

    beat: int
    observed_rate: float
    cores_before: int
    cores_after: int

    @property
    def changed(self) -> bool:
        return self.cores_after != self.cores_before


class ExternalScheduler:
    """Observe-decide-act loop over a heartbeat monitor and a core allocator.

    Parameters
    ----------
    monitor:
        Read-only view of the application's heartbeat stream.
    allocator:
        Actuator that applies core-count changes.
    target:
        Target heart-rate window.  ``None`` reads the window the application
        itself published via ``HB_set_target_rate`` (the paper's flow).
    decision_interval:
        Beats between scheduler decisions; a new allocation is given this
        long to show up in the windowed rate before being judged again.
    rate_window:
        Window (in beats) for the scheduler's rate query; 0 uses the
        application's default window.
    policy:
        Allocation policy; defaults to the paper's one-core-at-a-time
        :class:`MinimizeCoresPolicy`.
    """

    def __init__(
        self,
        monitor: HeartbeatMonitor,
        allocator: CoreAllocator,
        *,
        target: TargetWindow | None = None,
        decision_interval: int = 5,
        rate_window: int = 0,
        policy: AllocationPolicy | None = None,
    ) -> None:
        if decision_interval < 1:
            raise ValueError(f"decision_interval must be >= 1, got {decision_interval}")
        self.monitor = monitor
        self.allocator = allocator
        if target is None:
            tmin, tmax = monitor.target_range()
            if tmax <= 0:
                raise ValueError(
                    "the application has not published a target heart-rate range; "
                    "pass target= explicitly"
                )
            target = TargetWindow(tmin, tmax)
        self.target = target
        self.policy = policy if policy is not None else MinimizeCoresPolicy(target)
        self.spacer = DecisionSpacer(decision_interval)
        self.rate_window = int(rate_window)
        self.decisions: list[SchedulerDecisionRecord] = []
        self._last_change_beat: int | None = None

    # ------------------------------------------------------------------ #
    # Decision step
    # ------------------------------------------------------------------ #
    def observe_and_act(self, beat_index: int) -> SchedulerDecisionRecord | None:
        """Poll the monitor and, if due, adjust the allocation.

        Returns the decision record when a decision was taken, else ``None``.
        """
        if not self.spacer.should_decide(beat_index):
            return None
        rate = self.monitor.current_rate(self._effective_window(beat_index))
        before = self.allocator.current_cores
        requested = self.policy.next_cores(rate, before)
        after = self.allocator.set_cores(requested, beat=beat_index)
        if after != before:
            self._last_change_beat = beat_index
        record = SchedulerDecisionRecord(
            beat=beat_index, observed_rate=rate, cores_before=before, cores_after=after
        )
        self.decisions.append(record)
        return record

    def _effective_window(self, beat_index: int) -> int | None:
        """Rate window restricted to beats produced since the last change.

        Judging a fresh allocation on a window that still contains beats from
        the previous allocation makes the scheduler chase its own transient
        and oscillate; restricting the window to post-change beats lets it
        react quickly right after a change and judge steady state fairly.
        """
        window = self.rate_window or None
        if self._last_change_beat is None:
            return window
        since_change = beat_index - self._last_change_beat
        if since_change < 2:
            since_change = 2
        if window is None:
            return since_change
        return min(window, since_change)

    # ------------------------------------------------------------------ #
    # Engine integration
    # ------------------------------------------------------------------ #
    def attach(self, engine: ExecutionEngine) -> None:
        """Register the scheduler as an after-beat hook of ``engine``.

        The scheduler then observes the application exactly once per
        heartbeat, mirroring an OS daemon that wakes up on heartbeat arrival.
        """

        def hook(beat_index: int, process: SimulatedProcess, _engine: ExecutionEngine) -> None:
            if process is self.allocator.process:
                self.observe_and_act(beat_index)

        engine.add_after_beat(hook)

    def reset(self) -> None:
        """Forget decision history and controller state."""
        self.decisions.clear()
        self.policy.reset()
        self.spacer.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalScheduler(target=[{self.target.minimum}, {self.target.maximum}], "
            f"decisions={len(self.decisions)})"
        )
