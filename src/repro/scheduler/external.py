"""The external scheduler.

:class:`ExternalScheduler` reproduces the observer of the paper's Section
5.3: it polls the application's heart rate through a
:class:`~repro.core.monitor.HeartbeatMonitor` (never through any private
interface) and adjusts the core allocation so the rate stays inside the
target window the application published with ``HB_set_target_rate``.

The scheduler is deliberately ignorant of what the application computes — its
entire view of the world is the heartbeat stream, which is the paper's whole
point: "the decisions the scheduler makes are based directly on the
application's performance instead of being based on priority or some other
indirect measure."

.. deprecated::
    This class is now a facade over the unified adaptation runtime: it wires
    its monitor, policy and allocator into a
    :class:`repro.adapt.ControlLoop` (exposed as :attr:`loop`) with a
    :class:`repro.adapt.CoreActuator`, and only converts the loop's uniform
    :class:`~repro.adapt.DecisionTrace` records into the legacy
    :class:`SchedulerDecisionRecord` shape.  New code should compose a
    ``ControlLoop`` directly — see the README's migration table.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.adapt.actuator import CoreActuator
from repro.adapt.loop import ControlLoop
from repro.control import ControlDecision, Controller, DecisionSpacer, TargetWindow
from repro.core.monitor import HeartbeatMonitor
from repro.scheduler.allocator import CoreAllocator
from repro.scheduler.policies import AllocationPolicy, MinimizeCoresPolicy
from repro.sim.engine import ExecutionEngine
from repro.sim.process import SimulatedProcess

__all__ = ["SchedulerDecisionRecord", "ExternalScheduler"]

_DEPRECATION = (
    "ExternalScheduler is a deprecated facade: compose repro.adapt.ControlLoop "
    "with a CoreActuator instead (see the README 'Adaptation runtime' section)"
)


@dataclass(frozen=True, slots=True)
class SchedulerDecisionRecord:
    """One scheduler observation/decision (legacy record shape).

    Superseded by :class:`repro.adapt.DecisionTrace`; kept so existing
    experiment figures and analyses read unchanged.
    """

    beat: int
    observed_rate: float
    cores_before: int
    cores_after: int

    @property
    def changed(self) -> bool:
        return self.cores_after != self.cores_before


class _PolicyController(Controller):
    """Adapts an :class:`AllocationPolicy` to the :class:`Controller` surface.

    Policies speak in absolute core counts given the current allocation, so
    the adapter reads the allocator and emits an absolute-value decision the
    :class:`~repro.adapt.CoreActuator` applies verbatim.
    """

    def __init__(self, target: TargetWindow, policy: AllocationPolicy, allocator: CoreAllocator) -> None:
        super().__init__(target)
        self.policy = policy
        self._allocator = allocator

    def _decide(self, rate: float) -> ControlDecision:
        requested = self.policy.next_cores(rate, self._allocator.current_cores)
        return ControlDecision(value=float(requested))

    def reset(self) -> None:
        self.policy.reset()


class ExternalScheduler:
    """Observe-decide-act loop over a heartbeat monitor and a core allocator.

    Parameters
    ----------
    monitor:
        Read-only view of the application's heartbeat stream.
    allocator:
        Actuator that applies core-count changes.
    target:
        Target heart-rate window.  ``None`` reads the window the application
        itself published via ``HB_set_target_rate`` (the paper's flow).
    decision_interval:
        Beats between scheduler decisions; a new allocation is given this
        long to show up in the windowed rate before being judged again.
    rate_window:
        Window (in beats) for the scheduler's rate query; 0 uses the
        application's default window.
    policy:
        Allocation policy; defaults to the paper's one-core-at-a-time
        :class:`MinimizeCoresPolicy`.
    """

    def __init__(
        self,
        monitor: HeartbeatMonitor,
        allocator: CoreAllocator,
        *,
        target: TargetWindow | None = None,
        decision_interval: int = 5,
        rate_window: int = 0,
        policy: AllocationPolicy | None = None,
    ) -> None:
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        if decision_interval < 1:
            raise ValueError(f"decision_interval must be >= 1, got {decision_interval}")
        self.monitor = monitor
        self.allocator = allocator
        if target is None:
            tmin, tmax = monitor.target_range()
            if tmax <= 0:
                raise ValueError(
                    "the application has not published a target heart-rate range; "
                    "pass target= explicitly"
                )
            target = TargetWindow(tmin, tmax)
        self.target = target
        self.policy = policy if policy is not None else MinimizeCoresPolicy(target)
        self.rate_window = int(rate_window)
        #: The unified adaptation loop doing the actual work.
        self.loop = ControlLoop(
            monitor,
            _PolicyController(target, self.policy, allocator),
            CoreActuator(allocator),
            name="external-scheduler",
            decision_interval=decision_interval,
            rate_window=rate_window,
            settle_after_change=True,
        )
        self.decisions: list[SchedulerDecisionRecord] = []

    @property
    def spacer(self) -> DecisionSpacer:
        """The loop's decision spacer (legacy accessor)."""
        return self.loop.spacer

    # ------------------------------------------------------------------ #
    # Decision step
    # ------------------------------------------------------------------ #
    def observe_and_act(self, beat_index: int) -> SchedulerDecisionRecord | None:
        """Poll the monitor and, if due, adjust the allocation.

        Returns the decision record when a decision was taken, else ``None``.
        """
        trace = self.loop.step(beat_index)
        if trace is None:
            return None
        record = SchedulerDecisionRecord(
            beat=trace.beat,
            observed_rate=trace.observed_rate,
            cores_before=int(trace.before),
            cores_after=int(trace.after),
        )
        self.decisions.append(record)
        return record

    @property
    def _last_change_beat(self) -> int | None:
        # Legacy private surface, proxied onto the loop (tests poke it).
        return self.loop._last_change_beat

    @_last_change_beat.setter
    def _last_change_beat(self, beat: int | None) -> None:
        self.loop._last_change_beat = beat

    def _effective_window(self, beat_index: int) -> int | None:
        """Rate window restricted to beats produced since the last change."""
        return self.loop._effective_window(beat_index)

    # ------------------------------------------------------------------ #
    # Engine integration
    # ------------------------------------------------------------------ #
    def attach(self, engine: ExecutionEngine) -> None:
        """Register the scheduler as an after-beat hook of ``engine``.

        The scheduler then observes the application exactly once per
        heartbeat, mirroring an OS daemon that wakes up on heartbeat arrival.
        """

        def hook(beat_index: int, process: SimulatedProcess, _engine: ExecutionEngine) -> None:
            if process is self.allocator.process:
                self.observe_and_act(beat_index)

        engine.add_after_beat(hook)

    def reset(self) -> None:
        """Forget decision history and controller state."""
        self.decisions.clear()
        self.loop.traces.clear()
        self.policy.reset()
        self.spacer.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalScheduler(target=[{self.target.minimum}, {self.target.maximum}], "
            f"decisions={len(self.decisions)})"
        )
