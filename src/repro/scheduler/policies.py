"""Allocation policies mapping controller output to core counts."""

from __future__ import annotations

import abc
import math

from repro.control import (
    Controller,
    PIDController,
    ProportionalStepController,
    StepController,
    TargetWindow,
)

__all__ = ["AllocationPolicy", "MinimizeCoresPolicy", "ProportionalPolicy"]


class AllocationPolicy(abc.ABC):
    """Turns an observed heart rate into a new core count."""

    @abc.abstractmethod
    def next_cores(self, rate: float, current_cores: int) -> int:
        """Return the core count to use next."""

    def reset(self) -> None:
        return None


class MinimizeCoresPolicy(AllocationPolicy):
    """The paper's policy: one core at a time, towards the target window.

    Below the window the policy adds a core; above it the policy removes one;
    inside it the allocation is left alone.  Because cores are only ever added
    when the application is too slow, the policy naturally uses "the minimum
    number of cores necessary to meet the application's needs".
    """

    def __init__(self, target: TargetWindow, *, step: int = 1) -> None:
        self.target = target
        self._controller: Controller = StepController(target, step=step)

    def next_cores(self, rate: float, current_cores: int) -> int:
        decision = self._controller.decide(rate)
        return current_cores + (decision.delta or 0)

    def reset(self) -> None:
        self._controller.reset()


class ProportionalPolicy(AllocationPolicy):
    """Step size proportional to the rate error (ablation alternative).

    With ``use_pid=True`` the policy instead runs a PI controller that
    produces an absolute core count.
    """

    def __init__(
        self,
        target: TargetWindow,
        *,
        gain: float = 1.0,
        max_step: int = 4,
        use_pid: bool = False,
        max_cores: int = 64,
    ) -> None:
        self.target = target
        self.use_pid = bool(use_pid)
        if use_pid:
            self._controller: Controller = PIDController(
                target, kp=2.0, ki=0.5, base_output=1.0, maximum_output=float(max_cores)
            )
        else:
            self._controller = ProportionalStepController(target, gain=gain, max_step=max_step)

    def next_cores(self, rate: float, current_cores: int) -> int:
        decision = self._controller.decide(rate)
        if decision.value is not None:
            return int(math.ceil(decision.value))
        return current_cores + (decision.delta or 0)

    def reset(self) -> None:
        self._controller.reset()
