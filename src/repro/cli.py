"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Every subcommand speaks **telemetry endpoint URLs** (see
:mod:`repro.endpoints`) as positional arguments — the same strings the
library APIs accept::

    repro collect tcp://0.0.0.0:7717
    repro watch tcp://127.0.0.1:0 shm://svc file:///var/log/enc.hblog
    repro adapt --spec fleet.toml tcp://127.0.0.1:7717

``collect``
    Run a :class:`repro.net.collector.HeartbeatCollector` and periodically
    print a one-line fleet summary.  Defaults to ``tcp://127.0.0.1:0`` (an
    ephemeral port) and prints the actual endpoint on startup
    (machine-readable via ``--port-file``, written atomically), so scripted
    producers can discover the port.

``watch``
    Render a live fleet table over any mix of endpoints: ``tcp://`` runs a
    collector and watches whatever producers dial in, ``shm://`` and
    ``file://`` attach local streams, so one table can mix remote and
    same-host streams.  With ``--serve`` the same fleet is also published
    as a live HTTP/SSE dashboard (:mod:`repro.obs.serve`) with a
    ``/metrics`` scrape endpoint.

``scenario``
    Run a chaos drill (:mod:`repro.scenario`): real subprocess producers
    and collectors, a scripted timeline of partitions/kills/churn, and
    invariant checks that must survive it.  ``repro scenario list`` shows
    the built-in presets; ``repro scenario run NAME --report out.jsonl``
    executes one and exits non-zero when an invariant is violated.

``adapt``
    Drive a declarative :class:`repro.adapt.AdaptSpec` over the observed
    streams.  Endpoints come from the spec's own ``[engine] attach`` list
    plus any positional arguments.  Spec loops bind to the built-in advisory
    ``log`` actuator, so the command shows the decisions the controllers
    *would* take against the live fleet — the dry run an operator does
    before wiring real knobs to the engine in code.

The legacy ``--bind`` / ``--listen`` / ``--shm`` / ``--file`` flags remain
as deprecated facades over the positional URLs.  All commands are bounded by
``--duration`` (handy for tests and demos) and exit cleanly on Ctrl-C.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import warnings
from typing import Callable, Sequence

from repro._version import __version__
from repro.adapt.engine import AdaptationEngine, EngineTick
from repro.adapt.spec import AdaptSpec, SpecError
from repro.clock import WallClock
from repro.core.aggregator import FleetSample, HeartbeatAggregator
from repro.core.errors import HeartbeatError
from repro.endpoints import (
    Endpoint,
    EndpointError,
    FileEndpoint,
    MemArenaEndpoint,
    MemEndpoint,
    ShmArenaEndpoint,
    ShmEndpoint,
    TcpEndpoint,
    open_collector,
)
from repro.net.collector import HeartbeatCollector
from repro.net.protocol import parse_address

__all__ = ["main"]

_ENDPOINT_HELP = (
    "telemetry endpoint URL: tcp://host:port (collector; port 0 for ephemeral), "
    "shm://segment, shm-arena://name (whole columnar fleet slab), "
    "file:///path/to/log.hblog (repeatable)"
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heartbeat telemetry tools (Application Heartbeats reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="run a TCP heartbeat collector")
    collect.add_argument(
        "endpoint",
        nargs="?",
        default=None,
        metavar="ENDPOINT",
        help="tcp:// endpoint to bind (default tcp://127.0.0.1:0 — an ephemeral port)",
    )
    collect.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help="deprecated facade for the positional tcp:// endpoint",
    )
    collect.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening (atomic, for scripts)",
    )
    collect.add_argument(
        "--interval", type=float, default=2.0, help="seconds between summary lines"
    )
    collect.add_argument(
        "--duration", type=float, default=None, help="stop after this many seconds"
    )
    collect.add_argument(
        "--liveness", type=float, default=5.0, help="seconds without a beat before 'stalled'"
    )
    collect.add_argument(
        "--quiet", action="store_true", help="no periodic summaries, just collect"
    )
    collect.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print a one-line registry stats summary (conns, streams, relay "
        "frames/dupes, errors) every N seconds; independent of --quiet",
    )
    collect.add_argument(
        "--arena",
        default=None,
        metavar="URL",
        help="back registered streams with one columnar arena slab "
        "(mem-arena://name?streams=N&depth=D, or shm-arena:// to let other "
        "processes observe the slab) instead of per-stream buffers",
    )

    watch = sub.add_parser("watch", help="live fleet table from any mix of endpoints")
    watch.add_argument(
        "endpoints", nargs="*", default=[], metavar="ENDPOINT", help=_ENDPOINT_HELP
    )
    watch.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="deprecated facade for a positional tcp:// endpoint",
    )
    watch.add_argument(
        "--shm",
        action="append",
        default=[],
        metavar="SEGMENT",
        help="deprecated facade for a positional shm:// endpoint (repeatable)",
    )
    watch.add_argument(
        "--file",
        action="append",
        default=[],
        metavar="PATH",
        help="deprecated facade for a positional file:// endpoint (repeatable)",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, help="seconds between table refreshes"
    )
    watch.add_argument(
        "--duration", type=float, default=None, help="stop after this many seconds"
    )
    watch.add_argument(
        "--liveness", type=float, default=5.0, help="seconds without a beat before 'stalled'"
    )
    watch.add_argument("--window", type=int, default=0, help="rate window (0: producer default)")
    watch.add_argument("--once", action="store_true", help="print one table and exit")
    watch.add_argument(
        "--serve",
        action="store_true",
        help="also serve the live dashboard over HTTP (SSE /events, scrape /metrics)",
    )
    watch.add_argument(
        "--port",
        type=int,
        default=0,
        help="dashboard port for --serve (default 0: an ephemeral port)",
    )

    adapt = sub.add_parser(
        "adapt",
        help="drive a declarative adaptation spec over observed streams (advisory actuators)",
    )
    adapt.add_argument(
        "endpoints",
        nargs="*",
        default=[],
        metavar="ENDPOINT",
        help=_ENDPOINT_HELP + "; extends the spec's own [engine] attach list",
    )
    adapt.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="adaptation spec file (.toml on Python 3.11+, or JSON)",
    )
    adapt.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="deprecated facade for a positional tcp:// endpoint",
    )
    adapt.add_argument(
        "--shm",
        action="append",
        default=[],
        metavar="SEGMENT",
        help="deprecated facade for a positional shm:// endpoint (repeatable)",
    )
    adapt.add_argument(
        "--file",
        action="append",
        default=[],
        metavar="PATH",
        help="deprecated facade for a positional file:// endpoint (repeatable)",
    )
    adapt.add_argument(
        "--interval",
        type=float,
        default=None,
        help="seconds between engine ticks (default: the spec's engine.interval)",
    )
    adapt.add_argument(
        "--duration", type=float, default=None, help="stop after this many seconds"
    )
    adapt.add_argument("--once", action="store_true", help="run one tick and exit")

    scenario = sub.add_parser(
        "scenario",
        help="run chaos drills against real producer/collector topologies",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_run = scenario_sub.add_parser(
        "run", help="execute one scenario; exits non-zero on invariant violation"
    )
    scenario_run.add_argument(
        "scenario",
        metavar="SCENARIO",
        help="preset name (see 'repro scenario list') or a .toml/.json spec file",
    )
    scenario_run.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a JSONL evidence trail (events, samples, verdicts) to PATH",
    )
    scenario_run.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="keep journals/port files under DIR instead of a self-cleaning tempdir",
    )
    scenario_run.add_argument(
        "--serve",
        action="store_true",
        help="publish the run's fleet as a live HTTP/SSE dashboard while it runs",
    )
    scenario_run.add_argument(
        "--port",
        type=int,
        default=0,
        help="dashboard port for --serve (default 0: an ephemeral port)",
    )
    scenario_sub.add_parser("list", help="list the built-in scenario presets")

    tune = sub.add_parser(
        "tune",
        help="search controller gains for a spec's tune=true rules against simulated fleets",
    )
    tune.add_argument(
        "--spec",
        required=True,
        metavar="SPEC",
        help="baseline spec: a preset name ('scheduler') or a .toml/.json spec file",
    )
    tune.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="write the tuned, round-trip-validated AdaptSpec TOML here",
    )
    tune.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="write a JSONL tuning flight log (one event per evaluation/generation)",
    )
    tune.add_argument(
        "--strategy",
        choices=["cmaes", "random"],
        default="cmaes",
        help="search strategy (default: cmaes with IPOP restarts)",
    )
    tune.add_argument(
        "--budget", type=int, default=64, help="objective evaluations to spend (default 64)"
    )
    tune.add_argument(
        "--popsize", type=int, default=None, help="population per generation (default: auto)"
    )
    tune.add_argument(
        "--streams", type=int, default=16, help="simulated streams per evaluation (default 16)"
    )
    tune.add_argument(
        "--ticks", type=int, default=30, help="adaptation ticks per evaluation (default 30)"
    )
    tune.add_argument(
        "--beats-per-tick", type=int, default=4, help="simulated beats per tick (default 4)"
    )
    tune.add_argument(
        "--profile",
        choices=["steady", "step-load", "churn", "skewed"],
        default="steady",
        help="workload profile the evaluation fleet replays (default steady)",
    )
    tune.add_argument("--seed", type=int, default=0, help="tuning seed (default 0)")
    tune.add_argument(
        "--workers",
        type=int,
        default=0,
        help="evaluation worker processes (0: evaluate inline, default)",
    )
    return parser


def _emit(line: str, *, stream=None) -> None:
    print(line, file=stream if stream is not None else sys.stdout, flush=True)


def _deprecated_flag(flag: str, url: str) -> str:
    message = (
        f"{flag} is a deprecated facade; pass the endpoint URL {url!r} "
        "as a positional argument instead"
    )
    # Both channels on purpose: the warning for programmatic callers and
    # test filters, the stderr line for CLI users (whose default warning
    # filter hides DeprecationWarning raised outside __main__).
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    _emit(f"note: {message}", stream=sys.stderr)
    return url


def _gather_endpoints(args: argparse.Namespace) -> list[Endpoint]:
    """Positional endpoint URLs plus the legacy-flag shims, parsed and merged."""
    urls: list[str | Endpoint] = list(args.endpoints)
    if args.listen is not None:
        host, port = parse_address(args.listen)
        urls.append(_deprecated_flag("--listen", str(TcpEndpoint(host=host, port=port))))
    for segment in args.shm:
        urls.append(_deprecated_flag("--shm", str(ShmEndpoint(name=segment))))
    for path in args.file:
        urls.append(_deprecated_flag("--file", str(FileEndpoint(path=path))))
    return [Endpoint.parse(url) for url in urls]


def _attach_endpoints(
    aggregator: HeartbeatAggregator,
    endpoints: Sequence[Endpoint],
    *,
    attach_collector: Callable[[HeartbeatCollector], list[str]],
    collectors: list[HeartbeatCollector],
) -> int:
    """Wire every endpoint; returns 0 or the exit code of the first failure.

    Bound collectors are appended to the caller-owned ``collectors`` list
    *as they bind*, so the caller's ``finally`` closes every one of them even
    when a later endpoint raises out of this function (e.g. an unbindable
    second ``tcp://`` address).
    """
    for ep in endpoints:
        if isinstance(ep, TcpEndpoint):
            collector = open_collector(ep)
            collectors.append(collector)
            _emit(f"collector listening on {collector.endpoint}")
            _emit(f"producers dial {collector.endpoint_url}")
            attach_collector(collector)
        elif isinstance(ep, (MemEndpoint, MemArenaEndpoint)):
            _emit(
                f"cannot observe {ep}: {ep.scheme}:// endpoints are process-local",
                stream=sys.stderr,
            )
            return 2
        elif isinstance(ep, ShmArenaEndpoint):
            try:
                aggregator.attach_endpoint(ep)
            except HeartbeatError as exc:
                _emit(
                    f"cannot attach arena slab {ep.name!r}: {exc}",
                    stream=sys.stderr,
                )
                return 1
        elif isinstance(ep, ShmEndpoint):
            try:
                aggregator.attach_endpoint(ep)
            except HeartbeatError as exc:
                _emit(
                    f"cannot attach shared-memory segment {ep.name!r}: {exc}",
                    stream=sys.stderr,
                )
                return 1
        else:
            assert isinstance(ep, FileEndpoint)
            try:
                aggregator.attach_endpoint(ep)
            except HeartbeatError as exc:
                _emit(f"cannot attach heartbeat log {ep.path!r}: {exc}", stream=sys.stderr)
                return 1
    return 0


def _fmt_age(age: float | None) -> str:
    return f"{age:6.1f}" if age is not None else "     -"


def _fleet_table(sample: FleetSample) -> str:
    lines = [f"{'stream':<24} {'beats':>9} {'rate':>10} {'target':>17} {'age(s)':>6} status"]
    for name, reading in sample:
        target = f"[{reading.target_min:.1f}, {reading.target_max:.1f}]"
        lines.append(
            f"{name:<24} {reading.total_beats:>9d} {reading.rate:>10.2f} "
            f"{target:>17} {_fmt_age(reading.age)} {reading.status.value}"
        )
    for name, error in sample.errors.items():
        lines.append(f"{name:<24} {'-':>9} {'-':>10} {'-':>17} {'-':>6} error: {error}")
    summary = sample.summary()
    lines.append(
        f"-- {summary.streams} streams, {summary.measurable} measurable | "
        f"mean {summary.mean:.2f} p50 {summary.percentiles[50.0]:.2f} "
        f"p90 {summary.percentiles[90.0]:.2f} p99 {summary.percentiles[99.0]:.2f} | "
        f"{summary.lagging} lagging, {summary.stalled} stalled"
    )
    return "\n".join(lines)


def _run_loop(duration: float | None, interval: float, tick) -> bool:
    """Call ``tick()`` every ``interval`` seconds until duration/Ctrl-C.

    Returns ``True`` when the loop ended on Ctrl-C (so callers can label
    their final summary line) and ``False`` when the duration ran out.
    """
    deadline = None if duration is None else time.monotonic() + duration
    try:
        while True:
            tick()
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                time.sleep(min(interval, remaining))
            else:
                time.sleep(interval)
    except KeyboardInterrupt:
        return True


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically (temp file + rename).

    Watchers polling the path can never read a partially-written file: the
    rename makes the fully-flushed content appear in one step.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(f"{port}\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _stats_line(collector: HeartbeatCollector) -> str:
    """One-line registry summary for ``collect --stats-interval``.

    Reads the same counters :meth:`HeartbeatCollector.stats` exposes (now
    views over the collector's metrics registry), plus the upstream relay
    counters when the collector runs in edge mode.
    """
    stats = collector.stats()
    parts = [
        f"conns={stats['open_connections']}/{stats['connections_accepted']}",
        f"streams={stats['streams']}",
        f"frames={stats['frames']}",
        f"records={stats['records']}",
        f"relay_frames={stats['relay_frames']}",
        f"relay_dupes={stats['relay_duplicates']}",
        f"protocol_errors={stats['protocol_errors']}",
    ]
    relay = collector.relay_stats()
    if relay:
        parts.append(f"relay_sent={relay['frames_sent']}")
        parts.append(f"relay_send_errors={relay['send_errors']}")
    return "stats: " + " ".join(parts)


def _collect_endpoint(args: argparse.Namespace) -> Endpoint:
    if args.endpoint is not None:
        if args.bind is not None:
            raise EndpointError("pass the tcp:// endpoint or --bind, not both")
        return Endpoint.parse(args.endpoint)
    if args.bind is not None:
        host, port = parse_address(args.bind)
        return Endpoint.parse(
            _deprecated_flag("--bind", str(TcpEndpoint(host=host, port=port)))
        )
    return TcpEndpoint(host="127.0.0.1", port=0)


def _cmd_collect(args: argparse.Namespace) -> int:
    endpoint = _collect_endpoint(args)
    if not isinstance(endpoint, TcpEndpoint):
        _emit(f"collect: collectors bind tcp:// endpoints, not {endpoint}", stream=sys.stderr)
        return 2
    try:
        collector = open_collector(endpoint, arena=args.arena)
    except OSError as exc:
        # The traceback would bury the one fact that matters (address in
        # use / unresolvable host); say it in one line and exit non-zero.
        _emit(f"collect: cannot bind {endpoint}: {exc}", stream=sys.stderr)
        return 1
    except HeartbeatError as exc:
        _emit(f"collect: cannot open arena {args.arena!r}: {exc}", stream=sys.stderr)
        return 1
    try:
        with collector:
            _emit(f"collector listening on {collector.endpoint}")
            _emit(f"producers dial {collector.endpoint_url}")
            if collector.arena is not None:
                arena = collector.arena
                _emit(
                    f"arena slab: {args.arena} "
                    f"({arena.streams} rows x {arena.depth} records, "
                    f"{arena.nbytes / 1e6:.1f} MB)"
                )
            if collector.is_edge:
                up_host, up_port = collector.upstream_address or ("", 0)
                _emit(f"forwarding upstream to {up_host}:{up_port}")
            if args.port_file:
                _write_port_file(args.port_file, collector.port)
            aggregator = HeartbeatAggregator(
                clock=WallClock(rebase=False), liveness_timeout=args.liveness
            )
            aggregator.attach_collector(collector)

            # The summary and the stats line tick on independent cadences;
            # one loop runs at the faster of the two and each tick emits
            # whichever lines are due (time.sleep never wakes early, so a
            # due deadline is always reached).
            now = time.monotonic()
            next_summary = now
            next_stats = None if args.stats_interval is None else now + args.stats_interval

            def tick() -> None:
                nonlocal next_summary, next_stats
                now = time.monotonic()
                if not args.quiet and now >= next_summary:
                    summary = aggregator.summary()
                    stats = collector.stats()
                    _emit(
                        f"streams={summary.streams} beats={stats['records']} "
                        f"mean={summary.mean:.2f} p99={summary.percentiles[99.0]:.2f} "
                        f"lagging={summary.lagging} stalled={summary.stalled} "
                        f"protocol_errors={stats['protocol_errors']}"
                    )
                    next_summary = now + args.interval
                if next_stats is not None and now >= next_stats:
                    _emit(_stats_line(collector))
                    next_stats = now + args.stats_interval

            loop_interval = (
                args.interval
                if args.stats_interval is None
                else min(args.interval, args.stats_interval)
            )
            _run_loop(args.duration, loop_interval, tick)
            aggregator.close()
    finally:
        # Never leave a stale port file: scripts poll it for discovery.
        if args.port_file:
            try:
                os.unlink(args.port_file)
            except OSError:
                pass
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    endpoints = _gather_endpoints(args)
    if not endpoints:
        _emit(
            "watch: nothing to watch — pass endpoint URLs (tcp://, shm://, file://)",
            stream=sys.stderr,
        )
        return 2
    aggregator = HeartbeatAggregator(
        clock=WallClock(rebase=False), window=args.window, liveness_timeout=args.liveness
    )
    collectors: list[HeartbeatCollector] = []
    server = None
    try:
        rc = _attach_endpoints(
            aggregator,
            endpoints,
            attach_collector=aggregator.attach_collector,
            collectors=collectors,
        )
        if rc:
            return rc
        if args.serve:
            # Deferred import: the dashboard pulls in the adaptation layer,
            # which plain table watching does not need.
            from repro.obs.serve import TelemetryServer

            server = TelemetryServer(
                aggregator,
                collectors=collectors,
                port=args.port,
                interval=args.interval,
            )
            _emit(f"dashboard at {server.url} (SSE /events, scrape /metrics)")

        def tick() -> None:
            _emit(_fleet_table(aggregator.poll()))

        if args.once:
            tick()
        else:
            interrupted = _run_loop(args.duration, args.interval, tick)
            summary = aggregator.summary()
            _emit(
                f"-- watch {'interrupted' if interrupted else 'done'}: "
                f"{summary.streams} streams, mean {summary.mean:.2f} "
                f"p99 {summary.percentiles[99.0]:.2f}, "
                f"{summary.lagging} lagging, {summary.stalled} stalled"
            )
    finally:
        if server is not None:
            server.close()
        aggregator.close()
        for collector in collectors:
            collector.close()
    return 0


def _tick_line(tick: EngineTick, engine: AdaptationEngine) -> str:
    """One engine tick as a summary line (the adapt command's heartbeat)."""
    parts = [
        f"tick={tick.index}",
        f"streams={len(tick.sample)}",
        f"loops={len(engine.loops)}",
        f"decisions={tick.decisions}",
        f"changed={tick.changes}",
        f"lagging={len(engine.lagging(tick.sample))}",
    ]
    if tick.attached:
        parts.append(f"attached={','.join(tick.attached)}")
    if tick.detached:
        parts.append(f"detached={','.join(tick.detached)}")
    if tick.sample.errors:
        parts.append(f"errors={len(tick.sample.errors)}")
    if tick.errors:
        parts.append(f"loop_errors={len(tick.errors)}")
    return " ".join(parts)


def _loop_table(engine: AdaptationEngine) -> str:
    """Final per-loop report: knob values and last observations."""
    lines = [f"{'loop':<24} {'value':>9} {'target':>17} {'rate':>10} {'decisions':>9}"]
    for name, loop in sorted(engine.loops.items()):
        trace = loop.last_trace
        rate = f"{trace.observed_rate:10.2f}" if trace is not None else f"{'-':>10}"
        target = f"[{loop.target.minimum:.1f}, {loop.target.maximum:.1f}]"
        lines.append(
            f"{name:<24} {loop.actuator.current():>9.2f} {target:>17} {rate} {len(loop.traces):>9d}"
        )
    return "\n".join(lines)


def _cmd_adapt(args: argparse.Namespace) -> int:
    try:
        spec = AdaptSpec.from_file(args.spec)
    except (OSError, SpecError) as exc:
        _emit(f"cannot load adaptation spec {args.spec!r}: {exc}", stream=sys.stderr)
        return 2
    endpoints = [*spec.attach, *_gather_endpoints(args)]
    if not endpoints:
        _emit(
            "adapt: nothing to adapt — pass endpoint URLs (tcp://, shm://, file://) "
            "or add [engine] attach to the spec",
            stream=sys.stderr,
        )
        return 2
    engine = spec.build_engine(clock=WallClock(rebase=False))
    aggregator = engine.aggregator
    collectors: list[HeartbeatCollector] = []
    try:
        rc = _attach_endpoints(
            aggregator,
            endpoints,
            attach_collector=engine.attach_collector,
            collectors=collectors,
        )
        if rc:
            return rc
        _emit(
            f"adaptation engine: {len(spec.loops)} loop rule(s), advisory actuators "
            f"(decisions are logged, not applied)"
        )

        def tick() -> None:
            _emit(_tick_line(engine.tick(), engine))

        if args.once:
            tick()
        else:
            interval = args.interval if args.interval is not None else spec.interval
            _run_loop(args.duration, interval, tick)
        if engine.loops:
            _emit(_loop_table(engine))
    finally:
        engine.close(close_aggregator=True)
        for collector in collectors:
            collector.close()
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    # Deferred import: the scenario harness pulls in the chaos proxy and
    # subprocess machinery that collect/watch/adapt never need.
    from repro.scenario import PRESETS, ScenarioError, ScenarioRunner, ScenarioSpec

    if args.scenario_command == "list":
        for name in sorted(PRESETS):
            spec = ScenarioSpec.preset(name)
            _emit(f"{name:<16} {spec.description}")
        return 0
    assert args.scenario_command == "run"
    try:
        if args.scenario in PRESETS:
            spec = ScenarioSpec.preset(args.scenario)
        else:
            spec = ScenarioSpec.from_file(args.scenario)
    except OSError as exc:
        _emit(f"scenario: cannot load {args.scenario!r}: {exc}", stream=sys.stderr)
        return 2
    except ScenarioError as exc:
        _emit(f"scenario: invalid spec {args.scenario!r}: {exc}", stream=sys.stderr)
        return 2
    _emit(
        f"scenario {spec.name}: {spec.fleet.producers} producers x "
        f"{spec.fleet.beats} beats, topology={spec.topology}"
        f"{', proxied' if spec.proxy else ''}{', journaled' if spec.journal else ''}"
    )
    try:
        result = ScenarioRunner(
            spec,
            report_path=args.report,
            workdir=args.workdir,
            serve=args.serve,
            serve_port=args.port,
        ).run()
    except ScenarioError as exc:
        _emit(f"scenario: {exc}", stream=sys.stderr)
        return 1
    for inv in result.invariants:
        _emit(f"  {'PASS' if inv.passed else 'FAIL'} {inv.kind}: {inv.detail}")
    verdict = "passed" if result.passed else "FAILED"
    _emit(f"scenario {spec.name} {verdict} in {result.duration:.1f}s")
    if args.report:
        _emit(f"report: {args.report}")
    return 0 if result.passed else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    # Deferred import: the tuning subsystem pulls in the simulated plant and
    # the optimizer, which no observation command needs.
    from repro.tune import (
        EvaluationConfig,
        FlightLog,
        PRESET_SPECS,
        Tuner,
        write_tuned_spec,
    )
    from repro.tune.space import TuneError

    try:
        if args.spec in PRESET_SPECS:
            spec = PRESET_SPECS[args.spec]()
        else:
            spec = AdaptSpec.from_file(args.spec)
    except OSError as exc:
        _emit(f"tune: cannot load spec {args.spec!r}: {exc}", stream=sys.stderr)
        return 2
    except SpecError as exc:
        _emit(f"tune: invalid spec {args.spec!r}: {exc}", stream=sys.stderr)
        return 2
    config = EvaluationConfig(
        streams=args.streams,
        ticks=args.ticks,
        beats_per_tick=args.beats_per_tick,
        profile=args.profile,
    )
    log = FlightLog(args.log) if args.log else None
    try:
        tuner = Tuner(
            spec,
            config=config,
            strategy=args.strategy,
            budget=args.budget,
            popsize=args.popsize,
            workers=args.workers,
            seed=args.seed,
            flight_log=log,
        )
        _emit(
            f"tuning {len(tuner.space.params)} parameter(s) "
            f"[{', '.join(tuner.space.names)}] with {args.strategy}, "
            f"budget {args.budget}, {args.streams} streams x {args.ticks} ticks "
            f"({args.profile})"
        )
        result = tuner.run()
    except TuneError as exc:
        _emit(f"tune: {exc}", stream=sys.stderr)
        return 2
    finally:
        if log is not None:
            log.close()
    text = write_tuned_spec(result.spec, args.out)
    baseline, tuned = result.baseline_result, result.tuned_result
    _emit(
        f"searched {result.evaluations} evaluations in {result.generations} "
        f"generation(s), {result.restarts} restart(s)"
    )
    for name, value in sorted(result.best_values.items()):
        shown = f"{value:.4g}" if isinstance(value, float) else str(value)
        _emit(f"  {name} = {shown}")
    _emit(
        f"baseline: score {baseline.score:.3f}, settle_median {baseline.settle_median:.3f}s, "
        f"in-window {baseline.in_window_fraction:.0%}"
    )
    _emit(
        f"tuned:    score {tuned.score:.3f}, settle_median {tuned.settle_median:.3f}s, "
        f"in-window {tuned.in_window_fraction:.0%}"
    )
    verdict = "beats" if result.improved else "does NOT beat"
    _emit(f"tuned spec {verdict} the baseline on median settle time (held-out seed)")
    _emit(f"wrote {args.out} ({len(text.splitlines())} lines)")
    if args.log:
        _emit(f"flight log: {args.log}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "collect":
            return _cmd_collect(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "adapt":
            return _cmd_adapt(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "tune":
            return _cmd_tune(args)
    except EndpointError as exc:
        _emit(f"{args.command}: {exc}", stream=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C outside the steady-state loop (during bind, attach or
        # teardown): exit with the conventional SIGINT status, no traceback.
        _emit(f"{args.command}: interrupted", stream=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream pipe closed (e.g. `repro collect | head`): exit quietly
        # the way any well-behaved CLI does, with stdout pointed at devnull
        # so interpreter shutdown doesn't print a second traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
