"""Command-line interface: ``python -m repro``.

Two subcommands wrap the networked-telemetry subsystem so a fleet can be
collected and watched without writing any code:

``collect``
    Run a :class:`repro.net.collector.HeartbeatCollector` and periodically
    print a one-line fleet summary.  Binds ``127.0.0.1:0`` by default and
    prints the actual endpoint on startup (machine-readable via
    ``--port-file``), so scripted producers can discover the port.

``watch``
    Render a live fleet table.  With ``--listen`` it runs its own collector
    and watches whatever producers dial in; ``--shm`` and ``--file``
    additionally attach local shared-memory segments and heartbeat log
    files, so one table can mix remote and same-host streams.

Both commands are bounded by ``--duration`` (handy for tests and demos) and
exit cleanly on Ctrl-C.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Sequence

from repro.clock import WallClock
from repro.core.aggregator import FleetSample, HeartbeatAggregator
from repro.core.errors import HeartbeatError
from repro.net.collector import HeartbeatCollector
from repro.net.protocol import parse_address

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heartbeat telemetry tools (Application Heartbeats reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="run a TCP heartbeat collector")
    collect.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="host:port to listen on (default 127.0.0.1:0 — an ephemeral port)",
    )
    collect.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening (for scripts)",
    )
    collect.add_argument(
        "--interval", type=float, default=2.0, help="seconds between summary lines"
    )
    collect.add_argument(
        "--duration", type=float, default=None, help="stop after this many seconds"
    )
    collect.add_argument(
        "--liveness", type=float, default=5.0, help="seconds without a beat before 'stalled'"
    )
    collect.add_argument(
        "--quiet", action="store_true", help="no periodic summaries, just collect"
    )

    watch = sub.add_parser("watch", help="live fleet table from a collector and/or local streams")
    watch.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="run a collector at this address and watch its producers (use port 0 for ephemeral)",
    )
    watch.add_argument(
        "--shm",
        action="append",
        default=[],
        metavar="SEGMENT",
        help="attach a shared-memory heartbeat segment (repeatable)",
    )
    watch.add_argument(
        "--file",
        action="append",
        default=[],
        metavar="PATH",
        help="attach a heartbeat log file (repeatable)",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, help="seconds between table refreshes"
    )
    watch.add_argument(
        "--duration", type=float, default=None, help="stop after this many seconds"
    )
    watch.add_argument(
        "--liveness", type=float, default=5.0, help="seconds without a beat before 'stalled'"
    )
    watch.add_argument("--window", type=int, default=0, help="rate window (0: producer default)")
    watch.add_argument("--once", action="store_true", help="print one table and exit")
    return parser


def _emit(line: str, *, stream=None) -> None:
    print(line, file=stream if stream is not None else sys.stdout, flush=True)


def _fmt_age(age: float | None) -> str:
    return f"{age:6.1f}" if age is not None else "     -"


def _fleet_table(sample: FleetSample) -> str:
    lines = [f"{'stream':<24} {'beats':>9} {'rate':>10} {'target':>17} {'age(s)':>6} status"]
    for name, reading in sample:
        target = f"[{reading.target_min:.1f}, {reading.target_max:.1f}]"
        lines.append(
            f"{name:<24} {reading.total_beats:>9d} {reading.rate:>10.2f} "
            f"{target:>17} {_fmt_age(reading.age)} {reading.status.value}"
        )
    for name, error in sample.errors.items():
        lines.append(f"{name:<24} {'-':>9} {'-':>10} {'-':>17} {'-':>6} error: {error}")
    summary = sample.summary()
    lines.append(
        f"-- {summary.streams} streams, {summary.measurable} measurable | "
        f"mean {summary.mean:.2f} p50 {summary.percentiles[50.0]:.2f} "
        f"p90 {summary.percentiles[90.0]:.2f} p99 {summary.percentiles[99.0]:.2f} | "
        f"{summary.lagging} lagging, {summary.stalled} stalled"
    )
    return "\n".join(lines)


def _run_loop(duration: float | None, interval: float, tick) -> None:
    """Call ``tick()`` every ``interval`` seconds until duration/Ctrl-C."""
    deadline = None if duration is None else time.monotonic() + duration
    try:
        while True:
            tick()
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                time.sleep(min(interval, remaining))
            else:
                time.sleep(interval)
    except KeyboardInterrupt:
        return


def _cmd_collect(args: argparse.Namespace) -> int:
    host, port = parse_address(args.bind)
    try:
        with HeartbeatCollector(host, port) as collector:
            _emit(f"collector listening on {collector.endpoint}")
            if args.port_file:
                with open(args.port_file, "w", encoding="utf-8") as fh:
                    fh.write(f"{collector.port}\n")
            aggregator = HeartbeatAggregator(
                clock=WallClock(rebase=False), liveness_timeout=args.liveness
            )
            aggregator.attach_collector(collector)

            def tick() -> None:
                if args.quiet:
                    return
                summary = aggregator.summary()
                stats = collector.stats()
                _emit(
                    f"streams={summary.streams} beats={stats['records']} "
                    f"mean={summary.mean:.2f} p99={summary.percentiles[99.0]:.2f} "
                    f"lagging={summary.lagging} stalled={summary.stalled} "
                    f"protocol_errors={stats['protocol_errors']}"
                )

            _run_loop(args.duration, args.interval, tick)
            aggregator.close()
    finally:
        # Never leave a stale port file: scripts poll it for discovery.
        if args.port_file:
            try:
                os.unlink(args.port_file)
            except OSError:
                pass
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    if args.listen is None and not args.shm and not args.file:
        _emit("watch: nothing to watch — pass --listen, --shm and/or --file", stream=sys.stderr)
        return 2
    collector: HeartbeatCollector | None = None
    aggregator = HeartbeatAggregator(
        clock=WallClock(rebase=False), window=args.window, liveness_timeout=args.liveness
    )
    try:
        if args.listen is not None:
            host, port = parse_address(args.listen)
            collector = HeartbeatCollector(host, port)
            _emit(f"collector listening on {collector.endpoint}")
            aggregator.attach_collector(collector)
        for segment in args.shm:
            try:
                aggregator.attach_shared_memory(f"shm:{segment}", segment)
            except HeartbeatError as exc:
                _emit(f"cannot attach shared-memory segment {segment!r}: {exc}", stream=sys.stderr)
                return 1
        for path in args.file:
            try:
                aggregator.attach_file(f"file:{os.path.basename(path)}", path)
            except HeartbeatError as exc:
                _emit(f"cannot attach heartbeat log {path!r}: {exc}", stream=sys.stderr)
                return 1

        def tick() -> None:
            _emit(_fleet_table(aggregator.poll()))

        if args.once:
            tick()
        else:
            _run_loop(args.duration, args.interval, tick)
    finally:
        aggregator.close()
        if collector is not None:
            collector.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "collect":
            return _cmd_collect(args)
        if args.command == "watch":
            return _cmd_watch(args)
    except BrokenPipeError:
        # Downstream pipe closed (e.g. `repro collect | head`): exit quietly
        # the way any well-behaved CLI does, with stdout pointed at devnull
        # so interpreter shutdown doesn't print a second traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
