"""Telemetry endpoint URLs — one front door for every wiring style.

Every place a heartbeat stream can live is named by a URL:

==========================================  =====================================
URL                                         meaning
==========================================  =====================================
``mem://``                                  in-process memory backend
``mem://worker?capacity=4096``              named in-process stream
``file:///var/log/svc.hblog``               heartbeat log file (absolute path)
``file://svc.hblog?buffered=0``             log file, write-through appends
``shm://svc?depth=65536``                   shared-memory segment, 65536 slots
``mem-arena://fleet?streams=100000``        one row of an in-process arena slab
``shm-arena://fleet?streams=100000``        one row of a shared-memory arena
``tcp://collector:7717?stream=svc``         ship beats to / collect from TCP
``tcp://0.0.0.0:7717?upstream=root:7717``   edge collector forwarding upstream
==========================================  =====================================

The same string works everywhere: :class:`~repro.session.TelemetrySession`
(``produce`` / ``observe`` / ``fleet``), the declarative
:class:`~repro.adapt.AdaptSpec` (``[engine] attach = [...]``), every ``repro``
CLI subcommand (positional endpoint arguments), ``Heartbeat(backend=url)``
and ``HB_initialize(endpoint=url)``.

URLs parse into frozen, round-trippable :class:`Endpoint` dataclasses —
``Endpoint.parse(str(ep)) == ep`` always holds — and the three factories turn
them into live objects:

* :func:`open_backend` — the producer side: a
  :class:`~repro.core.backends.base.Backend` (which is also a
  :class:`~repro.core.stream.StreamSink`).
* :func:`open_source` — the observer side: a
  :class:`~repro.core.stream.StreamSource` for ``file://`` and ``shm://``
  endpoints (``mem://`` streams are process-local — observe them through the
  session that produced them; ``tcp://`` observation is fleet-shaped — bind a
  collector with :func:`open_collector`).
* :func:`open_sink` — :func:`open_backend` typed as the protocol, for code
  written against :class:`~repro.core.stream.StreamSink` only.

Arena endpoints (``mem-arena://`` / ``shm-arena://``) name *fleets*, not
single streams: the whole fleet's history lives in one columnar slab (see
:mod:`repro.core.backends.arena`), every ``open_backend`` call allocates one
row of it, and observers attach the slab itself — :func:`open_arena`,
``HeartbeatAggregator.attach_arena`` or ``session.fleet`` — to poll all N
streams as one vectorized pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Mapping
from urllib.parse import parse_qsl, quote, unquote, urlencode

from repro.core.errors import HeartbeatError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backends.arena import Arena
    from repro.core.backends.base import Backend
    from repro.core.stream import StreamSink, StreamSource
    from repro.net.collector import HeartbeatCollector

__all__ = [
    "Endpoint",
    "MemEndpoint",
    "FileEndpoint",
    "ShmEndpoint",
    "MemArenaEndpoint",
    "ShmArenaEndpoint",
    "TcpEndpoint",
    "EndpointError",
    "SCHEMES",
    "open_backend",
    "open_source",
    "open_sink",
    "open_collector",
    "open_arena",
    "stream_name_for",
]


class EndpointError(HeartbeatError, ValueError):
    """A telemetry endpoint URL is malformed or unusable in this role."""


#: The canonical URL schemes, one per storage/transport backend.
SCHEMES = ("mem", "file", "shm", "mem-arena", "shm-arena", "tcp")


def _parse_bool(key: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise EndpointError(f"query parameter {key}={raw!r} is not a boolean")


def _parse_int(key: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError as exc:
        raise EndpointError(f"query parameter {key}={raw!r} is not an integer") from exc


def _parse_float(key: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError as exc:
        raise EndpointError(f"query parameter {key}={raw!r} is not a number") from exc


def _positive(key: str, value: int) -> int:
    if value <= 0:
        raise EndpointError(f"{key} must be positive, got {value}")
    return value


def _split_url(url: str) -> tuple[str, str, str]:
    """``(scheme, body, query)`` of a ``scheme://body?query`` URL.

    Deliberately simpler than :func:`urllib.parse.urlsplit`: the body is an
    opaque (percent-encoded) name, path or address — no userinfo, fragments
    or parameter components — so round-tripping stays exact for any name a
    backend accepts.
    """
    scheme, sep, rest = url.partition("://")
    if not sep:
        raise EndpointError(
            f"not an endpoint URL: {url!r} (expected scheme://..., one of {SCHEMES})"
        )
    body, _, query = rest.partition("?")
    return scheme.strip().lower(), body, query


def _query_dict(url: str, query: str, known: tuple[str, ...]) -> dict[str, str]:
    params: dict[str, str] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in known:
            raise EndpointError(
                f"unknown query parameter {key!r} in {url!r}; known: {sorted(known)}"
            )
        if key in params:
            raise EndpointError(f"duplicate query parameter {key!r} in {url!r}")
        params[key] = value
    return params


def _format_query(pairs: "list[tuple[str, object]]") -> str:
    if not pairs:
        return ""
    return "?" + urlencode([(k, _format_value(v)) for k, v in pairs])


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True, slots=True)
class Endpoint:
    """Base class of the parsed, canonical form of one endpoint URL.

    Instances are frozen value objects: ``Endpoint.parse(str(ep)) == ep``
    holds for every endpoint, so URLs can be carried through configs, specs
    and CLIs without drift.  Use :meth:`parse` (or the scheme classes
    directly) to construct one.
    """

    scheme: ClassVar[str] = ""

    @staticmethod
    def parse(url: "str | Endpoint") -> "Endpoint":
        """Parse an endpoint URL (idempotent on already-parsed endpoints)."""
        if isinstance(url, Endpoint):
            return url
        scheme, body, query = _split_url(str(url))
        parser = _PARSERS.get(scheme)
        if parser is None:
            raise EndpointError(
                f"unknown endpoint scheme {scheme!r} in {url!r}; known: {SCHEMES}"
            )
        return parser(str(url), body, query)

    def url(self) -> str:
        """The canonical URL string (``Endpoint.parse`` round-trips it)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.url()


@dataclass(frozen=True, slots=True)
class MemEndpoint(Endpoint):
    """``mem://[name][?capacity=N]`` — an in-process memory backend.

    ``name`` names the stream inside a :class:`~repro.session.TelemetrySession`
    (so ``session.observe("mem://worker")`` finds what
    ``session.produce("mem://worker")`` created); an empty name is anonymous.
    """

    scheme: ClassVar[str] = "mem"

    name: str = ""
    capacity: int | None = None

    def __post_init__(self) -> None:
        if self.capacity is not None:
            _positive("capacity", self.capacity)

    @classmethod
    def _parse(cls, url: str, body: str, query: str) -> "MemEndpoint":
        params = _query_dict(url, query, ("capacity",))
        capacity = params.get("capacity")
        return cls(
            name=unquote(body),
            capacity=None if capacity is None else _parse_int("capacity", capacity),
        )

    def url(self) -> str:
        pairs: list[tuple[str, object]] = []
        if self.capacity is not None:
            pairs.append(("capacity", self.capacity))
        return f"mem://{quote(self.name, safe='')}{_format_query(pairs)}"


@dataclass(frozen=True, slots=True)
class FileEndpoint(Endpoint):
    """``file://PATH[?capacity=N&buffered=0|1&flush_interval=S]`` — a log file.

    ``file:///var/log/x.hblog`` is the absolute path ``/var/log/x.hblog``;
    ``file://x.hblog`` is the relative path ``x.hblog``.  ``buffered=0``
    restores write-through appends (the paper-faithful overhead
    configuration); ``flush_interval`` bounds how long a buffered beat can
    stay invisible to external observers.
    """

    scheme: ClassVar[str] = "file"

    path: str
    capacity: int | None = None
    buffered: bool = True
    flush_interval: float | None = None

    def __post_init__(self) -> None:
        if not self.path:
            raise EndpointError("file endpoint needs a path, got file://")
        if self.capacity is not None:
            _positive("capacity", self.capacity)
        if self.flush_interval is not None and self.flush_interval <= 0:
            raise EndpointError(
                f"flush_interval must be positive, got {self.flush_interval}"
            )

    @classmethod
    def _parse(cls, url: str, body: str, query: str) -> "FileEndpoint":
        params = _query_dict(url, query, ("capacity", "buffered", "flush_interval"))
        capacity = params.get("capacity")
        flush = params.get("flush_interval")
        return cls(
            path=unquote(body),
            capacity=None if capacity is None else _parse_int("capacity", capacity),
            buffered=(
                True
                if "buffered" not in params
                else _parse_bool("buffered", params["buffered"])
            ),
            flush_interval=None if flush is None else _parse_float("flush_interval", flush),
        )

    def url(self) -> str:
        pairs: list[tuple[str, object]] = []
        if self.capacity is not None:
            pairs.append(("capacity", self.capacity))
        if not self.buffered:
            pairs.append(("buffered", False))
        if self.flush_interval is not None:
            pairs.append(("flush_interval", self.flush_interval))
        return f"file://{quote(self.path, safe='/')}{_format_query(pairs)}"


@dataclass(frozen=True, slots=True)
class ShmEndpoint(Endpoint):
    """``shm://NAME[?depth=N]`` — a shared-memory segment on this host.

    ``depth`` is the number of record slots in the segment's circular
    history (the producer sizes the segment; observers ignore it).  An empty
    name lets the producer auto-generate a segment name.

    Each ``shm://`` stream is its own POSIX segment, and hosts commonly cap
    the number of mapped segments around ~512 — fine for hundreds of
    producers, a hard ceiling for large fleets.  Point fleets past that at
    ``shm-arena://`` (:class:`ShmArenaEndpoint`), which packs N streams into
    *one* segment.
    """

    scheme: ClassVar[str] = "shm"

    name: str = ""
    depth: int | None = None

    def __post_init__(self) -> None:
        if self.depth is not None:
            _positive("depth", self.depth)

    @classmethod
    def _parse(cls, url: str, body: str, query: str) -> "ShmEndpoint":
        params = _query_dict(url, query, ("depth", "capacity"))
        if "depth" in params and "capacity" in params:
            raise EndpointError(f"pass depth= or capacity=, not both, in {url!r}")
        depth = params.get("depth", params.get("capacity"))
        return cls(
            name=unquote(body),
            depth=None if depth is None else _parse_int("depth", depth),
        )

    def url(self) -> str:
        pairs: list[tuple[str, object]] = []
        if self.depth is not None:
            pairs.append(("depth", self.depth))
        return f"shm://{quote(self.name, safe='')}{_format_query(pairs)}"


@dataclass(frozen=True, slots=True)
class _ArenaEndpoint(Endpoint):
    """Shared shape of the two arena schemes (see the subclasses).

    ``streams`` / ``depth`` fix the slab geometry when this URL is the first
    in the process to open the arena (later opens inherit — and must not
    conflict).  ``stream`` names the row a producer-side ``open_backend``
    allocates (defaulting to the producing heartbeat's name).
    """

    name: str = ""
    streams: int | None = None
    depth: int | None = None
    stream: str | None = None

    def __post_init__(self) -> None:
        if self.streams is not None:
            _positive("streams", self.streams)
        if self.depth is not None:
            _positive("depth", self.depth)

    @classmethod
    def _parse(cls, url: str, body: str, query: str) -> "_ArenaEndpoint":
        params = _query_dict(url, query, ("streams", "depth", "stream"))
        streams = params.get("streams")
        depth = params.get("depth")
        return cls(
            name=unquote(body),
            streams=None if streams is None else _parse_int("streams", streams),
            depth=None if depth is None else _parse_int("depth", depth),
            stream=params.get("stream"),
        )

    def url(self) -> str:
        pairs: list[tuple[str, object]] = []
        if self.streams is not None:
            pairs.append(("streams", self.streams))
        if self.depth is not None:
            pairs.append(("depth", self.depth))
        if self.stream is not None:
            pairs.append(("stream", self.stream))
        return f"{self.scheme}://{quote(self.name, safe='')}{_format_query(pairs)}"


@dataclass(frozen=True, slots=True)
class MemArenaEndpoint(_ArenaEndpoint):
    """``mem-arena://[name][?streams=N&depth=D&stream=ROW]`` — an in-process arena.

    One anonymous columnar slab holds up to ``streams`` heartbeat streams of
    ``depth`` retained records each (:class:`repro.core.backends.arena.Arena`).
    Producers resolving the same URL in one process share the slab — each
    ``open_backend`` allocates one row — and ``session.fleet`` /
    ``HeartbeatAggregator.attach_arena`` observe all of them as one
    vectorized poll with zero per-stream dispatch.
    """

    scheme: ClassVar[str] = "mem-arena"


@dataclass(frozen=True, slots=True)
class ShmArenaEndpoint(_ArenaEndpoint):
    """``shm-arena://NAME[?streams=N&depth=D&stream=ROW]`` — a shared-memory arena.

    Like ``mem-arena://`` but the slab is a single
    ``multiprocessing.shared_memory`` segment any process on the host can
    attach, so a 100k-stream fleet needs *one* segment instead of one per
    stream (POSIX hosts cap mapped segments around ~512 — the ceiling that
    bounds large ``shm://`` fleets).  The first process to resolve the URL
    creates the segment and owns its lifetime; every later resolver
    attaches.
    """

    scheme: ClassVar[str] = "shm-arena"

    def __post_init__(self) -> None:
        # Explicit base call: dataclass(slots=True) recreates the class, so
        # the zero-argument super() closure would point at the pre-slots one.
        _ArenaEndpoint.__post_init__(self)
        if not self.name:
            raise EndpointError("shm-arena endpoint needs a segment name, got shm-arena://")


@dataclass(frozen=True, slots=True)
class TcpEndpoint(Endpoint):
    """``tcp://HOST:PORT[?stream=NAME&capacity=N&upstream=H:P&...]`` — networked telemetry.

    On the producer side the endpoint is the collector address beats are
    shipped to (``stream`` names the registered stream, ``capacity`` sizes
    the local mirror buffer, ``via=HOST:PORT`` dials the named intermediary
    — typically a :class:`~repro.scenario.ChaosProxy` — instead of the
    collector itself).  On the observer side it is the address a
    :class:`~repro.net.collector.HeartbeatCollector` binds; port ``0`` asks
    the OS for an ephemeral port, ``upstream=HOST:PORT`` binds an *edge*
    collector that forwards every stream to the named parent collector
    (federation — see :mod:`repro.net.relay`), and ``journal=DIR`` enables
    collector persistence (:mod:`repro.net.persistence`): streams are
    journaled behind ingest and replayed when a collector rebinds over the
    same directory.  IPv6 literals use brackets: ``tcp://[::1]:7717``.

    Link-discipline tuning rides along: ``backoff_initial`` /
    ``backoff_max`` set the reconnect backoff window of the endpoint's
    outbound link (the exporter's when producing, the relay forwarder's
    when collecting with ``upstream=``); ``relay_interval`` and
    ``probe_interval`` set an edge collector's forwarding sweep cadence and
    idle-EOF probe cadence.  Defaults are unchanged when the parameters are
    absent.

    >>> ep = Endpoint.parse("tcp://0.0.0.0:7717?upstream=root.example:7717")
    >>> ep.upstream
    'root.example:7717'
    >>> Endpoint.parse(str(ep)) == ep
    True
    """

    scheme: ClassVar[str] = "tcp"

    host: str
    port: int
    stream: str | None = None
    capacity: int | None = None
    flush_interval: float | None = None
    upstream: str | None = None
    via: str | None = None
    backoff_initial: float | None = None
    backoff_max: float | None = None
    journal: str | None = None
    relay_interval: float | None = None
    probe_interval: float | None = None

    def __post_init__(self) -> None:
        if not self.host:
            raise EndpointError("tcp endpoint needs a host, got tcp://")
        if not 0 <= self.port <= 65535:
            raise EndpointError(f"tcp port must be in [0, 65535], got {self.port}")
        if self.capacity is not None:
            _positive("capacity", self.capacity)
        for key in ("flush_interval", "backoff_initial", "backoff_max",
                    "relay_interval", "probe_interval"):
            value = getattr(self, key)
            if value is not None and value <= 0:
                raise EndpointError(f"{key} must be positive, got {value}")
        for key in ("upstream", "via"):
            address = getattr(self, key)
            if address is not None:
                from repro.net.protocol import parse_address

                try:
                    parse_address(address)
                except ValueError as exc:
                    raise EndpointError(
                        f"{key} must be host:port, got {address!r}: {exc}"
                    ) from exc
        if self.journal is not None and not self.journal:
            raise EndpointError("journal= needs a directory path")
        if self.upstream is None:
            for key in ("relay_interval", "probe_interval"):
                if getattr(self, key) is not None:
                    raise EndpointError(
                        f"{key}= tunes the relay link and needs upstream= on {self.url()!r}"
                    )

    @classmethod
    def _parse(cls, url: str, body: str, query: str) -> "TcpEndpoint":
        # host:port syntax (incl. IPv6 bracketing) has exactly one owner:
        # the wire protocol's address parser.
        from repro.net.protocol import parse_address

        params = _query_dict(
            url,
            query,
            ("stream", "capacity", "flush_interval", "upstream", "via",
             "backoff_initial", "backoff_max", "journal",
             "relay_interval", "probe_interval"),
        )
        try:
            host, port = parse_address(unquote(body))
        except ValueError as exc:
            raise EndpointError(
                f"tcp endpoint must be tcp://host:port, got {url!r}: {exc}"
            ) from exc

        def opt_float(key: str) -> float | None:
            raw = params.get(key)
            return None if raw is None else _parse_float(key, raw)

        capacity = params.get("capacity")
        return cls(
            host=host,
            port=port,
            stream=params.get("stream"),
            capacity=None if capacity is None else _parse_int("capacity", capacity),
            flush_interval=opt_float("flush_interval"),
            upstream=params.get("upstream"),
            via=params.get("via"),
            backoff_initial=opt_float("backoff_initial"),
            backoff_max=opt_float("backoff_max"),
            journal=params.get("journal"),
            relay_interval=opt_float("relay_interval"),
            probe_interval=opt_float("probe_interval"),
        )

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` pair for the socket layer."""
        return (self.host, self.port)

    @property
    def dial_address(self) -> tuple[str, int]:
        """Where a producer actually connects: ``via`` if set, else the host.

        The ``via=`` intermediary (a chaos proxy, a port forward) is a
        producer-side concern; the endpoint still *names* the collector.
        """
        if self.via is None:
            return self.address
        from repro.net.protocol import parse_address

        return parse_address(self.via)

    def url(self) -> str:
        host = f"[{self.host}]" if ":" in self.host else self.host
        pairs: list[tuple[str, object]] = []
        for key in ("stream", "capacity", "flush_interval", "upstream", "via",
                    "backoff_initial", "backoff_max", "journal",
                    "relay_interval", "probe_interval"):
            value = getattr(self, key)
            if value is not None:
                pairs.append((key, value))
        return f"tcp://{quote(host, safe='[]:')}:{self.port}{_format_query(pairs)}"


_PARSERS: Mapping[str, Callable[[str, str, str], Endpoint]] = {
    "mem": MemEndpoint._parse,
    "file": FileEndpoint._parse,
    "shm": ShmEndpoint._parse,
    "mem-arena": MemArenaEndpoint._parse,
    "shm-arena": ShmArenaEndpoint._parse,
    "tcp": TcpEndpoint._parse,
}


# --------------------------------------------------------------------------- #
# Factories
# --------------------------------------------------------------------------- #
def open_backend(endpoint: "str | Endpoint", *, stream: str | None = None) -> "Backend":
    """Open the producer side of an endpoint as a storage backend.

    ``stream`` is the default stream name for ``tcp://`` endpoints that do
    not carry a ``?stream=`` parameter themselves (other schemes name their
    storage in the URL and ignore it).

    Returns
    -------
    Backend
        A live :class:`~repro.core.backends.base.Backend` (and therefore
        also a :class:`~repro.core.stream.StreamSink`); the caller owns it
        and must ``close()`` it.

    Raises
    ------
    EndpointError
        On an unparseable URL or collector-side parameters (``upstream=``)
        on a producer endpoint.
    OSError
        When the endpoint's storage cannot be created (file path,
        shared-memory segment).

    >>> backend = open_backend("mem://?capacity=64")
    >>> backend.append(1, 0.01, 0, 1)
    >>> backend.snapshot().total_beats
    1
    >>> backend.close()
    """
    ep = Endpoint.parse(endpoint)
    if isinstance(ep, MemEndpoint):
        from repro.core.backends.memory import MemoryBackend

        return MemoryBackend(ep.capacity if ep.capacity is not None else 2048)
    if isinstance(ep, FileEndpoint):
        from repro.core.backends.file import FileBackend

        kwargs: dict[str, Any] = {"buffered": ep.buffered}
        if ep.flush_interval is not None:
            kwargs["flush_interval"] = ep.flush_interval
        return FileBackend(
            ep.path,
            ep.capacity if ep.capacity is not None else 65536,
            **kwargs,
        )
    if isinstance(ep, ShmEndpoint):
        from repro.core.backends.shared_memory import SharedMemoryBackend

        return SharedMemoryBackend(
            name=ep.name or None,
            capacity=ep.depth if ep.depth is not None else 2048,
        )
    if isinstance(ep, _ArenaEndpoint):
        # One row of the (process-shared) arena slab; the row name defaults
        # to the producing heartbeat's name so fleet observers see it.
        row_name = ep.stream if ep.stream is not None else stream
        return open_arena(ep).allocate(row_name if row_name is not None else "")
    if isinstance(ep, TcpEndpoint):
        from repro.net.exporter import NetworkBackend

        collector_only = [
            key
            for key, value in (
                ("upstream", ep.upstream),
                ("journal", ep.journal),
                ("relay_interval", ep.relay_interval),
                ("probe_interval", ep.probe_interval),
            )
            if value is not None
        ]
        if collector_only:
            raise EndpointError(
                f"{', '.join(collector_only)} are collector-side parameters "
                f"and have no meaning when producing to {ep}; bind the "
                f"collector with open_collector()"
            )
        net_kwargs: dict[str, Any] = {}
        if ep.capacity is not None:
            net_kwargs["capacity"] = ep.capacity
        if ep.flush_interval is not None:
            net_kwargs["flush_interval"] = ep.flush_interval
        if ep.backoff_initial is not None:
            net_kwargs["backoff_initial"] = ep.backoff_initial
        if ep.backoff_max is not None:
            net_kwargs["backoff_max"] = ep.backoff_max
        name = ep.stream if ep.stream is not None else stream
        if name is not None:
            net_kwargs["stream"] = name
        # via= routes the dial through an intermediary (chaos proxy, port
        # forward) without renaming the collector the endpoint refers to.
        return NetworkBackend(ep.dial_address, **net_kwargs)
    raise EndpointError(f"cannot open {ep!r} as a backend")  # pragma: no cover


def open_sink(endpoint: "str | Endpoint", *, stream: str | None = None) -> "StreamSink":
    """Open the producer side of an endpoint, typed as a :class:`StreamSink`.

    Identical to :func:`open_backend`; exists so code written purely against
    the capability protocols never has to name the ``Backend`` ABC.
    """
    return open_backend(endpoint, stream=stream)


def open_source(endpoint: "str | Endpoint") -> "StreamSource":
    """Open the observer side of an endpoint as a :class:`StreamSource`.

    ``file://`` endpoints return a log-file observer (incremental cursored
    tailing included); ``shm://`` endpoints attach a read-only
    :class:`~repro.core.backends.shared_memory.SharedMemoryReader`.  The
    returned object owns its attachment: call ``close()`` (or let the owning
    session do it) to detach.

    ``mem://`` streams are process-local — observe them through the
    :class:`~repro.session.TelemetrySession` that produced them.  ``tcp://``
    observation is fleet-shaped — bind a collector with
    :func:`open_collector` (or ``session.fleet``) and producers dial in.

    Raises
    ------
    EndpointError
        On an unparseable URL, a ``mem://``/``tcp://`` endpoint (see
        above), or a nameless ``shm://``.
    OSError
        When the file or shared-memory segment does not exist.

    >>> open_source("mem://svc")
    Traceback (most recent call last):
        ...
    repro.endpoints.EndpointError: mem://svc is process-local: observe it \
through the TelemetrySession that produced it (session.observe)
    """
    ep = Endpoint.parse(endpoint)
    if isinstance(ep, FileEndpoint):
        from repro.core.monitor import file_observer_sources
        from repro.core.stream import BoundSource

        snapshot, delta, probe = file_observer_sources(ep.path)
        return BoundSource(snapshot, delta, probe)
    if isinstance(ep, ShmEndpoint):
        from repro.core.backends.shared_memory import SharedMemoryReader

        if not ep.name:
            raise EndpointError("observing shm:// needs a segment name")
        return SharedMemoryReader(ep.name)
    if isinstance(ep, MemEndpoint):
        raise EndpointError(
            f"{ep} is process-local: observe it through the TelemetrySession "
            "that produced it (session.observe)"
        )
    if isinstance(ep, _ArenaEndpoint):
        if ep.stream is not None:
            arena = open_arena(ep)
            for index, row_name in enumerate(arena.row_names()):
                if row_name == ep.stream:
                    return arena.row(index)
            raise EndpointError(f"arena {ep.name!r} has no row named {ep.stream!r}")
        raise EndpointError(
            f"{ep} is fleet-shaped: observe the whole slab through "
            "TelemetrySession.fleet() / HeartbeatAggregator.attach_arena() "
            "(or name one row with ?stream=)"
        )
    if isinstance(ep, TcpEndpoint):
        raise EndpointError(
            f"{ep} is fleet-shaped: bind a collector with open_collector() or "
            "observe it through TelemetrySession.fleet()"
        )
    raise EndpointError(f"cannot open {ep!r} as a source")  # pragma: no cover


def open_collector(
    endpoint: "str | Endpoint" = "tcp://127.0.0.1:0",
    *,
    arena: "str | Arena | None" = None,
) -> "HeartbeatCollector":
    """Bind a :class:`~repro.net.collector.HeartbeatCollector` at a ``tcp://`` endpoint.

    Port ``0`` resolves to an ephemeral port; the collector's ``endpoint_url``
    property reports the actually-bound ``tcp://host:port``.  An
    ``?upstream=HOST:PORT`` parameter binds an *edge* collector that forwards
    every registered stream to the named parent collector, so collectors
    compose into a federation tree (producers → edges → root).

    ``arena`` (an :class:`~repro.core.backends.arena.Arena` or a
    ``mem-arena://`` / ``shm-arena://`` URL) puts the collector in arena
    mode: registered streams demux into slab rows, so fleet observers poll
    them through one vectorized pass instead of per-stream dispatch.

    A ``?journal=DIR`` parameter makes the collector durable: every ingested
    frame is appended to a per-stream journal under ``DIR`` and replayed if
    a collector later rebinds over the same directory (failover recovery —
    see :mod:`repro.net.persistence`).  ``relay_interval=``,
    ``probe_interval=``, ``backoff_initial=`` and ``backoff_max=`` tune an
    edge collector's forwarding link.

    Raises
    ------
    EndpointError
        When the endpoint is not ``tcp://`` or carries producer-side
        parameters (``stream``, ``capacity``, ``flush_interval``, ``via``).
    OSError
        When the address cannot be bound (already in use, unresolvable).

    >>> with open_collector("tcp://127.0.0.1:0") as root:
    ...     root.is_edge
    False
    """
    ep = Endpoint.parse(endpoint)
    if not isinstance(ep, TcpEndpoint):
        raise EndpointError(f"collectors bind tcp:// endpoints, not {ep}")
    producer_only = [
        key
        for key, value in (
            ("stream", ep.stream),
            ("capacity", ep.capacity),
            ("flush_interval", ep.flush_interval),
            ("via", ep.via),
        )
        if value is not None
    ]
    if producer_only:
        # Silently dropping them would read as "configured"; stay loud like
        # every other unusable-input path in this module.
        raise EndpointError(
            f"{', '.join(producer_only)} are producer-side parameters and "
            f"have no meaning when binding a collector at {ep}"
        )
    if ep.upstream is None and (ep.backoff_initial is not None or ep.backoff_max is not None):
        raise EndpointError(
            f"backoff_initial/backoff_max tune the relay link and need "
            f"upstream= when binding a collector at {ep}"
        )
    from repro.net.collector import HeartbeatCollector

    collector_kwargs: dict[str, Any] = {}
    if ep.journal is not None:
        collector_kwargs["journal"] = ep.journal
    if ep.relay_interval is not None:
        collector_kwargs["relay_interval"] = ep.relay_interval
    if ep.probe_interval is not None:
        collector_kwargs["relay_probe_interval"] = ep.probe_interval
    if ep.backoff_initial is not None:
        collector_kwargs["relay_backoff_initial"] = ep.backoff_initial
    if ep.backoff_max is not None:
        collector_kwargs["relay_backoff_max"] = ep.backoff_max
    return HeartbeatCollector(
        ep.host, ep.port, upstream=ep.upstream, arena=arena, **collector_kwargs
    )


def open_arena(endpoint: "str | Endpoint") -> "Arena":
    """Resolve an arena endpoint to its (process-shared) slab.

    Producers, observers and sessions resolving the same
    ``mem-arena://``/``shm-arena://`` URL in one process get the same
    :class:`~repro.core.backends.arena.Arena`; for ``shm-arena://`` the
    first process creates the segment and later processes attach.  The URL's
    ``streams``/``depth`` fix the geometry on first open and must not
    conflict afterwards.

    >>> arena = open_arena("mem-arena://doc-fleet?streams=4&depth=16")
    >>> arena.streams, arena.depth
    (4, 16)
    >>> open_arena("mem-arena://doc-fleet") is arena
    True
    """
    from repro.core.backends.arena import arena_for

    ep = Endpoint.parse(endpoint)
    if not isinstance(ep, _ArenaEndpoint):
        raise EndpointError(f"open_arena needs a mem-arena:// or shm-arena:// URL, not {ep}")
    kind = "shm" if isinstance(ep, ShmArenaEndpoint) else "mem"
    return arena_for(kind, ep.name, ep.streams, ep.depth)


def stream_name_for(endpoint: "str | Endpoint") -> str:
    """The default observer-facing stream name of one endpoint.

    The same convention the CLI has always used: ``file:<basename>`` for log
    files, ``shm:<segment>`` for shared memory, the stream/segment name
    otherwise.  Collector streams keep their producer-registered ids.
    """
    ep = Endpoint.parse(endpoint)
    if isinstance(ep, FileEndpoint):
        return f"file:{os.path.basename(ep.path)}"
    if isinstance(ep, ShmEndpoint):
        return f"shm:{ep.name}"
    if isinstance(ep, _ArenaEndpoint):
        return ep.stream if ep.stream is not None else f"arena:{ep.name}"
    if isinstance(ep, MemEndpoint):
        return ep.name or "heartbeat"
    if isinstance(ep, TcpEndpoint):
        return ep.stream if ep.stream is not None else f"tcp:{ep.host}:{ep.port}"
    raise EndpointError(f"no stream name for {ep!r}")  # pragma: no cover
