"""Event-loop ingest tier: one process, 10k+ concurrent producer connections.

:class:`AsyncHeartbeatCollector` is the fan-in point of a remote fleet,
rebuilt on a ``selectors`` event loop.  The original collector ran one thread
per connection, which caps a single process at a few hundred producers (stack
memory, scheduler pressure); here a single loop thread multiplexes every
connection through ``epoll``/``kqueue``, so the connection count is bounded
by file descriptors rather than threads — the step that takes one collector
from "a host's fleet" to an ingest *tier*.

The observation surface is exactly the one the rest of the system already
speaks: per-stream sources (``snapshot`` / ``snapshot_since`` / ``version``),
:meth:`stream_ids`, aggregator attachment via
:meth:`~repro.core.aggregator.HeartbeatAggregator.attach_collector`, and
streams that survive disconnects so a producer death reads ``STALLED``.

Collectors also *compose*.  A collector constructed with ``upstream=`` runs
in **edge mode**: a background :class:`~repro.net.relay.RelayForwarder`
batches every local stream's new records into RELAY frames (see
:mod:`repro.net.protocol`) and ships them to the next collector up the tree,
with reconnect/backoff and ring-buffer drop-oldest backpressure.  Any
collector accepts RELAY links alongside producer links, so trees of any
depth — producers → edges → root — aggregate under unchanged ``tcp://``
semantics at the root.

Design points:

* one event-loop thread owns every socket; per-stream backends are guarded
  by their own locks, so observer threads read concurrently with ingest;
* a malformed byte stream poisons only its own connection — producer or
  relay — and every other link keeps flowing;
* relayed records are deduplicated by beat number per stream, so an edge
  reconnecting after a drop (or a restarted root receiving a full replay)
  never double-counts history;
* the server binds port ``0`` by default and exposes the chosen port, so
  tests and scripts never collide on a fixed port.

>>> with AsyncHeartbeatCollector() as collector:
...     collector.host
'127.0.0.1'
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.backends.arena import Arena
from repro.core.backends.base import Backend, BackendSnapshot, DeltaSnapshot, SnapshotCursor
from repro.core.backends.memory import MemoryBackend
from repro.core.errors import BackendError, MonitorAttachError, ProtocolError
from repro.net import protocol
from repro.net.persistence import JournalWriter, StreamJournal
from repro.obs.registry import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.relay import RelayForwarder

__all__ = ["AsyncHeartbeatCollector", "CollectorStreamInfo"]

#: Bounds applied to the capacity hint producers send in HELLO.
_MIN_STREAM_CAPACITY = 16
_MAX_STREAM_CAPACITY = 1 << 20

#: Largest single ``recv`` and the cap on consecutive reads per readiness
#: event, so one firehose connection cannot starve ten thousand quiet ones.
_RECV_SIZE = 1 << 16
_MAX_READS_PER_EVENT = 8


@dataclass(frozen=True, slots=True)
class CollectorStreamInfo:
    """Metadata of one registered stream (not its records).

    ``reported_total`` is the final beat count the producer declared in its
    CLOSE frame (``None`` until then); comparing it with ``total_beats``
    exposes how many records the producer's drop-oldest backpressure shed.
    ``via_relay`` is true for streams fed by a downstream collector rather
    than a directly-connected producer.
    """

    stream_id: str
    name: str
    pid: int
    connected: bool
    closed: bool
    total_beats: int
    reported_total: int | None
    via_relay: bool = False


class _CollectorStream:
    """One registered stream: a locked in-memory backend plus liveness state.

    The backend is written by the collector's event-loop thread and read by
    any number of observer threads, so every access goes through ``lock``.
    """

    __slots__ = (
        "stream_id", "name", "pid", "nonce", "lock", "backend", "capacity",
        "connected", "closed", "reported_total", "conn_gen",
        "target_min", "target_max", "default_window", "last_beat", "via_relay",
        "journal",
    )

    def __init__(
        self,
        stream_id: str,
        hello: protocol.Hello,
        capacity: int,
        backend: Backend | None = None,
    ) -> None:
        self.stream_id = stream_id
        self.name = hello.name
        self.pid = hello.pid
        self.nonce = hello.nonce
        self.capacity = capacity
        self.lock = threading.Lock()
        self.backend: Backend = backend if backend is not None else MemoryBackend(capacity)
        self.backend.set_default_window(hello.default_window)
        self.backend.set_targets(hello.target_min, hello.target_max)
        self.connected = True
        self.closed = False
        self.reported_total: int | None = None
        #: Connection generation: bumped on every (re)registration so a
        #: superseded connection cannot clobber its successor's state.
        self.conn_gen = 1
        #: Mirrors of the backend's metadata, so relay ingestion and
        #: forwarding can diff goals without a full snapshot read.
        self.target_min = hello.target_min
        self.target_max = hello.target_max
        self.default_window = hello.default_window
        #: Highest beat number ever appended via a relay link (−1: none);
        #: relay replays are deduplicated against it.
        self.last_beat = -1
        self.via_relay = False
        #: Persistence hook: the stream's journal writer, or ``None``.
        self.journal: "JournalWriter | None" = None

    def snapshot(self) -> BackendSnapshot:
        with self.lock:
            return self.backend.snapshot()

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        with self.lock:
            return self.backend.snapshot_since(cursor)

    def version(self) -> tuple[int, int]:
        with self.lock:
            return self.backend.version()

    def info(self) -> CollectorStreamInfo:
        with self.lock:
            total = self.backend.snapshot().total_beats
            return CollectorStreamInfo(
                stream_id=self.stream_id,
                name=self.name,
                pid=self.pid,
                connected=self.connected,
                closed=self.closed,
                total_beats=total,
                reported_total=self.reported_total,
                via_relay=self.via_relay,
            )


class _Connection:
    """Per-socket state owned exclusively by the event-loop thread."""

    __slots__ = ("sock", "decoder", "stream", "gen", "is_relay", "relay_streams", "peer", "latency")

    def __init__(self, sock: socket.socket, peer: str = "?") -> None:
        self.sock = sock
        self.decoder = protocol.FrameDecoder()
        #: Producer-link state: the HELLO-registered stream and its
        #: registration generation.
        self.stream: _CollectorStream | None = None
        self.gen = 0
        #: Relay-link state: edge-local stream id → (stream, generation).
        self.is_relay = False
        self.relay_streams: dict[str, tuple[_CollectorStream, int]] = {}
        #: Peer address ("ip:port") and, for annotated relay links, the
        #: per-link delivery-latency histogram (created on first sample).
        self.peer = peer
        self.latency: Histogram | None = None


class AsyncHeartbeatCollector:
    """Event-loop TCP fan-in server turning remote producers into streams.

    Parameters
    ----------
    host, port:
        Listening address.  The defaults (``127.0.0.1``, port ``0``) bind a
        loopback ephemeral port; read :attr:`port` (or :attr:`endpoint`) for
        the address the OS actually assigned.
    default_capacity:
        Record slots per stream when a producer's HELLO carries no capacity
        hint; hints are clipped to a sane range either way.
    backlog:
        ``listen()`` backlog.  Raise it for connect storms of thousands of
        producers (the kernel clamps it to ``net.core.somaxconn``).
    poll_timeout:
        Upper bound on one ``select()`` wait, which doubles as the shutdown
        poll interval for the loop thread.
    upstream:
        ``"host:port"`` (or ``(host, port)``) of the next collector up the
        tree.  When given, the collector runs in edge mode: a background
        forwarder relays every stream's new records upstream — see
        :class:`repro.net.relay.RelayForwarder` for the full discipline.
    relay_interval:
        Edge mode only: seconds between forwarding sweeps (the relay
        analogue of the exporter's ``flush_interval``).
    relay_backoff_initial, relay_backoff_max:
        Edge mode only: the forwarder's reconnect backoff window (delay
        starts at the initial value and doubles per failed dial up to the
        max).  Scenario runs tighten these so a healed partition reconnects
        in milliseconds; the defaults match the forwarder's.
    relay_probe_interval:
        Edge mode only: seconds between idle-EOF probes of the upstream
        link (``None``, the default, probes on every sweep — the historic
        behaviour).
    journal:
        A :class:`~repro.net.persistence.StreamJournal` (or a directory
        path) enabling collector persistence: every registered stream's
        frames are appended to a per-stream journal behind the ingest path,
        and on construction any journals already in the directory are
        *replayed* — a killed-and-restarted collector resumes its streams'
        retained histories, (pid, nonce) resumption identities, relay dedup
        high-water marks and CLOSE state instead of starting empty.
        Restored streams begin disconnected (their producers redial, their
        relay links re-register) and their ``total_beats`` restarts from
        the retained window.  Pass a path to let the collector own the
        journal's lifetime (closed with the collector).
    arena:
        An :class:`~repro.core.backends.arena.Arena` (or a
        ``mem-arena://`` / ``shm-arena://`` endpoint URL) that becomes the
        backing store for registered streams: incoming BATCH and RELAY
        frames demux straight into slab rows instead of per-stream
        :class:`MemoryBackend` objects, so an aggregator attaching this
        collector observes the whole fleet through one vectorized
        ``snapshot_since_all`` pass.  Streams arriving after the slab is
        full fall back to private in-memory backends (and are reported by
        :meth:`unpooled_stream_ids`).  The arena's lifetime is the
        caller's/registry's — the collector never closes it.
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` holding this
        collector's counters (and, in edge mode, its forwarder's).  A
        private registry is created when omitted; pass a shared one to
        scrape several subsystems from one page.

    Raises
    ------
    OSError
        When the listening address cannot be bound (already in use,
        unresolvable host, privileged port).

    >>> with AsyncHeartbeatCollector() as root:
    ...     with AsyncHeartbeatCollector(upstream=root.endpoint) as edge:
    ...         edge.is_edge, root.is_edge
    (True, False)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        default_capacity: int = 4096,
        backlog: int = 128,
        poll_timeout: float = 0.25,
        upstream: str | tuple[str, int] | None = None,
        relay_interval: float = 0.05,
        relay_backoff_initial: float = 0.05,
        relay_backoff_max: float = 2.0,
        relay_probe_interval: float | None = None,
        arena: "Arena | str | None" = None,
        journal: "StreamJournal | str | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._default_capacity = int(default_capacity)
        self._poll_timeout = float(poll_timeout)
        self._lock = threading.Lock()
        self._streams: dict[str, _CollectorStream] = {}
        if isinstance(arena, str):
            from repro.endpoints import Endpoint, _ArenaEndpoint, open_arena

            ep = Endpoint.parse(arena)
            if not isinstance(ep, _ArenaEndpoint):
                raise MonitorAttachError(
                    f"collector arena must be a mem-arena:// or shm-arena:// "
                    f"endpoint, got {arena!r}"
                )
            arena = open_arena(ep)
        self._arena: Arena | None = arena
        #: Arena mode only: stream ids that overflowed the slab and run on
        #: private in-memory backends (insertion order preserved).
        self._unpooled: dict[str, None] = {}
        self._streams_changed = threading.Condition(self._lock)
        self._stopping = False
        self._closed = False

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._accepted = self.metrics.counter(
            "collector_connections_accepted_total", help="connections accepted over the lifetime"
        )
        self._frames = self.metrics.counter(
            "collector_frames_total", help="protocol frames ingested"
        )
        self._records = self.metrics.counter(
            "collector_records_total", help="heartbeat records ingested (producer + relay)"
        )
        self._protocol_errors = self.metrics.counter(
            "collector_protocol_errors_total", help="connections dropped for malformed input"
        )
        self._relay_frames = self.metrics.counter(
            "collector_relay_frames_total", help="RELAY frames ingested"
        )
        self._relay_records = self.metrics.counter(
            "collector_relay_records_total", help="records ingested over relay links"
        )
        self._relay_duplicates = self.metrics.counter(
            "collector_relay_duplicates_total", help="replayed records discarded by dedup"
        )
        self.metrics.gauge(
            "collector_open_connections",
            help="currently open connections",
            fn=lambda: float(len(self._connections)),
        )
        self.metrics.gauge(
            "collector_streams",
            help="registered streams",
            fn=lambda: float(len(self._streams)),
        )
        #: peer address → per-link delivery-latency histogram (annotated
        #: relay links only), for :meth:`link_latencies`.
        self._link_latency: dict[str, Histogram] = {}

        #: fd → connection; touched only by the event-loop thread.
        self._connections: dict[int, _Connection] = {}

        if isinstance(journal, str):
            journal = StreamJournal(journal, metrics=self.metrics)
        self._journal: StreamJournal | None = journal
        if self._journal is not None:
            # Replay before the loop thread exists, so restored streams are
            # visible to the very first connection (and to the relay's
            # first sweep in edge mode).
            self._restore_from_journal()

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._server.bind((host, port))
            self._server.listen(backlog)
            self._server.setblocking(False)
        except OSError:
            self._server.close()
            raise
        self.host, self.port = self._server.getsockname()[:2]

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._server, selectors.EVENT_READ, None)
        #: Self-pipe so close() interrupts a parked select() immediately.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)

        self._relay: "RelayForwarder | None" = None
        if upstream is not None:
            from repro.net.relay import RelayForwarder

            self._relay = RelayForwarder(
                self,
                upstream,
                interval=float(relay_interval),
                backoff_initial=float(relay_backoff_initial),
                backoff_max=float(relay_backoff_max),
                probe_interval=relay_probe_interval,
                metrics=self.metrics,
            )

        self._loop_thread = threading.Thread(
            target=self._run_loop, name=f"hb-collector-{self.port}", daemon=True
        )
        self._loop_thread.start()
        if self._relay is not None:
            self._relay.start()

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolved to the real one)."""
        return (self.host, self.port)

    @property
    def endpoint(self) -> str:
        """The bound address as the ``"host:port"`` string producers dial."""
        return f"{self.host}:{self.port}"

    @property
    def endpoint_url(self) -> str:
        """The bound address as a ``tcp://host:port`` endpoint URL.

        The string producers pass to ``TelemetrySession.produce`` /
        ``open_backend`` / ``Heartbeat(backend=...)`` to dial this collector
        (port ``0`` already resolved to the real port).
        """
        from repro.endpoints import TcpEndpoint

        return str(TcpEndpoint(host=str(self.host), port=int(self.port)))

    @property
    def is_edge(self) -> bool:
        """True when this collector forwards its streams to an upstream."""
        return self._relay is not None

    @property
    def upstream_address(self) -> tuple[str, int] | None:
        """``(host, port)`` of the upstream collector, or ``None`` at a root."""
        return None if self._relay is None else self._relay.address

    # ------------------------------------------------------------------ #
    # Observation surface (what the aggregator consumes)
    # ------------------------------------------------------------------ #
    def stream_ids(self) -> list[str]:
        """Registered stream ids, in registration order."""
        with self._lock:
            return list(self._streams)

    @property
    def arena(self) -> Arena | None:
        """The arena slab backing registered streams (``None``: per-object).

        Observers use this for the slab fast path:
        :meth:`HeartbeatAggregator.attach_collector
        <repro.core.aggregator.HeartbeatAggregator.attach_collector>` sees
        it and attaches the whole slab as one vectorized shard instead of
        one source per stream.
        """
        return self._arena

    def unpooled_stream_ids(self) -> list[str]:
        """Stream ids *not* backed by the arena slab, in registration order.

        Without an arena this is every stream (equal to :meth:`stream_ids`);
        in arena mode it is only the overflow streams that arrived after the
        slab filled up.  Observers that already watch the slab attach just
        these the per-object way.
        """
        with self._lock:
            if self._arena is None:
                return list(self._streams)
            return list(self._unpooled)

    def snapshot(self, stream_id: str) -> BackendSnapshot:
        """A consistent snapshot of one stream's retained history."""
        return self._get_stream(stream_id).snapshot()

    def source(self, stream_id: str) -> "_CollectorStream":
        """One registered stream as a :class:`~repro.core.stream.StreamSource`.

        The returned per-stream view carries the full capability set —
        ``snapshot`` / ``snapshot_since`` / ``version`` — so it attaches
        anywhere a source does (``HeartbeatMonitor.for_source``,
        ``HeartbeatAggregator.attach_stream``, a ``ControlLoop`` rate
        source) with incremental polling intact.
        """
        return self._get_stream(stream_id)

    def snapshot_source(self, stream_id: str) -> Callable[[], BackendSnapshot]:
        """A zero-argument snapshot provider for aggregator attachment."""
        return self._get_stream(stream_id).snapshot

    def delta_source(
        self, stream_id: str
    ) -> Callable[[SnapshotCursor | None], tuple[DeltaSnapshot, SnapshotCursor]]:
        """A cursored delta provider: poll cost proportional to new records."""
        return self._get_stream(stream_id).snapshot_since

    def version_source(self, stream_id: str) -> Callable[[], tuple[int, int]]:
        """A cheap change-token provider for the aggregator's idle-skip path."""
        return self._get_stream(stream_id).version

    def streams(self) -> list[CollectorStreamInfo]:
        """Metadata for every registered stream."""
        with self._lock:
            streams = list(self._streams.values())
        return [stream.info() for stream in streams]

    def stats(self) -> dict[str, int]:
        """Server counters (connections, frames, records, errors, relay).

        Returns
        -------
        dict
            ``connections_accepted`` / ``open_connections`` — lifetime and
            current connection counts; ``frames`` / ``records`` — ingest
            totals; ``protocol_errors`` — connections dropped for malformed
            input; ``streams`` — registered streams; ``relay_frames`` /
            ``relay_records`` / ``relay_duplicates`` — RELAY-link ingest and
            the replayed records deduplication discarded.

        This is a view over the collector's :attr:`metrics` registry; the
        keys predate the registry and stay stable.
        """
        with self._lock:
            streams = len(self._streams)
        return {
            "connections_accepted": int(self._accepted.value),
            "open_connections": len(self._connections),
            "frames": int(self._frames.value),
            "records": int(self._records.value),
            "protocol_errors": int(self._protocol_errors.value),
            "streams": streams,
            "relay_frames": int(self._relay_frames.value),
            "relay_records": int(self._relay_records.value),
            "relay_duplicates": int(self._relay_duplicates.value),
        }

    def relay_stats(self) -> dict[str, int]:
        """Edge-mode forwarding counters (empty dict at a root collector)."""
        return {} if self._relay is None else self._relay.stats()

    def link_latencies(self) -> dict[str, dict[str, float]]:
        """Per-link delivery latency roll-ups, keyed by downstream peer.

        Each value is a histogram summary (``count`` / ``mean`` / ``min`` /
        ``max`` / ``p50`` / ``p99``, seconds) of edge→here RELAY delivery
        latency, measured from the hop timestamp annotated on v2 RELAY
        frames.  Empty at a leaf collector, and for links whose sender does
        not annotate (v1 edges).  Hop timestamps are monotonic-clock
        readings, so the numbers are meaningful when sender and receiver
        share a host clock (the in-tree federation and loopback cases).
        """
        with self._lock:
            links = dict(self._link_latency)
        return {peer: hist.summary() for peer, hist in links.items()}

    def wait_for_streams(self, count: int, timeout: float = 5.0) -> bool:
        """Block until at least ``count`` streams registered (True) or timeout."""
        deadline = time.monotonic() + timeout
        with self._streams_changed:
            while len(self._streams) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._streams_changed.wait(timeout=remaining)
        return True

    def _get_stream(self, stream_id: str) -> _CollectorStream:
        with self._lock:
            stream = self._streams.get(stream_id)
        if stream is None:
            raise MonitorAttachError(f"no stream {stream_id!r} is registered with this collector")
        return stream

    # ------------------------------------------------------------------ #
    # Internal surface for the relay forwarder
    # ------------------------------------------------------------------ #
    def _relay_streams(self) -> list[_CollectorStream]:
        """Every registered stream object (forwarder sweep; order stable)."""
        with self._lock:
            return list(self._streams.values())

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting, drop every connection, keep histories.  Idempotent.

        Edge mode first stops the forwarder (one final flush attempt toward
        the upstream, bounded by its close deadline), then tears down the
        event loop.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
        if self._relay is not None:
            self._relay.close()
        try:
            self._wake_w.send(b"x")
        except OSError:  # pragma: no cover - loop already gone
            pass
        self._loop_thread.join(timeout=5.0)
        self._server.close()
        self._wake_w.close()
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "AsyncHeartbeatCollector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "edge" if self.is_edge else "root"
        return (
            f"{type(self).__name__}(endpoint={self.endpoint!r}, role={role}, "
            f"streams={len(self.stream_ids())})"
        )

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        try:
            while not self._stopping:
                events = self._selector.select(timeout=self._poll_timeout)
                for key, _mask in events:
                    if key.fileobj is self._server:
                        self._accept_ready()
                    elif key.fileobj is self._wake_r:
                        self._drain_wake()
                    else:
                        self._service(key.fileobj)  # type: ignore[arg-type]
        finally:
            for conn in list(self._connections.values()):
                self._drop_connection(conn)
            self._selector.close()
            self._wake_r.close()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _accept_ready(self) -> None:
        """Accept every pending connection (storms arrive in bursts)."""
        while True:
            try:
                sock, _peer = self._server.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listening socket closed under us
            if self._stopping:
                sock.close()
                return
            sock.setblocking(False)
            try:
                peer = f"{_peer[0]}:{_peer[1]}"
            except (IndexError, TypeError):  # pragma: no cover - non-INET family
                peer = str(_peer)
            conn = _Connection(sock, peer)
            self._connections[sock.fileno()] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            self._accepted.inc()

    def _service(self, sock: socket.socket) -> None:
        conn = self._connections.get(sock.fileno())
        if conn is None:  # pragma: no cover - stale readiness after a drop
            return
        for _ in range(_MAX_READS_PER_EVENT):
            try:
                data = sock.recv(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._drop_connection(conn)
                return
            if not data:
                self._drop_connection(conn)  # peer hung up
                return
            try:
                for frame in conn.decoder.feed(data):
                    self._handle_frame(conn, frame)
            except ProtocolError:
                self._protocol_errors.inc()
                self._drop_connection(conn)
                return
            if len(data) < _RECV_SIZE:
                return

    def _drop_connection(self, conn: _Connection) -> None:
        fd = conn.sock.fileno()
        if fd >= 0 and fd in self._connections:
            del self._connections[fd]
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover - already gone
                pass
        conn.sock.close()
        if conn.stream is not None:
            with conn.stream.lock:
                # Only the stream's current connection may mark it
                # disconnected; a superseded connection (the producer
                # already redialled) must not clobber its successor.
                if conn.stream.conn_gen == conn.gen:
                    conn.stream.connected = False
        for stream, gen in conn.relay_streams.values():
            with stream.lock:
                if stream.conn_gen == gen:
                    stream.connected = False
        conn.relay_streams.clear()

    # ------------------------------------------------------------------ #
    # Frame handling (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _handle_frame(self, conn: _Connection, frame: protocol.Frame) -> None:
        self._frames.inc()
        if frame.type == protocol.FRAME_RELAY:
            if conn.stream is not None:
                raise ProtocolError("RELAY frame on a producer connection")
            conn.is_relay = True
            relay = protocol.decode_relay_frame(frame.payload)
            if relay.hop_timestamp is not None:
                self._observe_link_latency(conn, time.perf_counter() - relay.hop_timestamp)
            self._ingest_relay(conn, relay.entries)
            return
        if conn.is_relay:
            raise ProtocolError("producer frame on a relay connection")
        if frame.type == protocol.FRAME_HELLO:
            if conn.stream is not None:
                raise ProtocolError("duplicate HELLO on one connection")
            conn.stream, conn.gen = self._register(protocol.decode_hello(frame.payload))
            return
        stream = conn.stream
        if stream is None:
            raise ProtocolError("first frame of a connection must be HELLO")
        if frame.type == protocol.FRAME_BATCH:
            records = protocol.decode_batch(frame.payload)
            with stream.lock:
                stream.backend.append_many(records)
                if stream.journal is not None:
                    # The journal is the wire capture: the payload is
                    # appended as received, one frame in, one frame out.
                    stream.journal.append_frame(protocol.FRAME_BATCH, frame.payload)
            self._records.inc(int(records.shape[0]))
            self._maybe_compact(stream)
        elif frame.type == protocol.FRAME_TARGETS:
            tmin, tmax = protocol.decode_targets(frame.payload)
            with stream.lock:
                stream.backend.set_targets(tmin, tmax)
                stream.target_min, stream.target_max = tmin, tmax
                if stream.journal is not None:
                    stream.journal.append_frame(protocol.FRAME_TARGETS, frame.payload)
        elif frame.type == protocol.FRAME_CLOSE:
            reported = protocol.decode_close(frame.payload)
            with stream.lock:
                if stream.conn_gen == conn.gen:
                    stream.closed = True
                    stream.connected = False
                    stream.reported_total = reported
                    if stream.journal is not None:
                        stream.journal.append_frame(protocol.FRAME_CLOSE, frame.payload)

    def _ingest_relay(self, conn: _Connection, entries: list[protocol.RelayEntry]) -> None:
        appended = 0
        duplicates = 0
        for entry in entries:
            known = conn.relay_streams.get(entry.stream_id)
            if known is None:
                hello = protocol.Hello(
                    name=entry.stream_id,
                    pid=entry.pid,
                    default_window=entry.default_window,
                    capacity=0,
                    target_min=entry.target_min,
                    target_max=entry.target_max,
                    nonce=entry.nonce,
                )
                stream, gen = self._register(hello, via_relay=True)
                conn.relay_streams[entry.stream_id] = (stream, gen)
            else:
                stream, gen = known
            records = entry.records
            with stream.lock:
                # Replays (edge reconnect, root restart) are deduplicated by
                # beat number: the origin beat counter is monotonic, so
                # anything at or below the high-water mark was already seen.
                if records.shape[0] and stream.last_beat >= 0:
                    fresh = records["beat"] > stream.last_beat
                    if not fresh.all():
                        duplicates += int(records.shape[0] - np.count_nonzero(fresh))
                        records = records[fresh]
                if records.shape[0]:
                    stream.backend.append_many(records)
                    stream.last_beat = int(records["beat"][-1])
                    appended += int(records.shape[0])
                    if stream.journal is not None:
                        # Journal only what survived dedup, so a restart
                        # replays exactly the records this collector holds.
                        stream.journal.append_records(records)
                if (entry.target_min, entry.target_max) != (
                    stream.target_min, stream.target_max,
                ):
                    stream.backend.set_targets(entry.target_min, entry.target_max)
                    stream.target_min = entry.target_min
                    stream.target_max = entry.target_max
                    if stream.journal is not None:
                        stream.journal.append_targets(entry.target_min, entry.target_max)
                if entry.default_window != stream.default_window:
                    stream.backend.set_default_window(entry.default_window)
                    stream.default_window = entry.default_window
                if stream.conn_gen == gen:
                    stream.connected = entry.connected
                    if entry.closed and not stream.closed:
                        stream.closed = True
                        stream.reported_total = entry.reported_total
                        if stream.journal is not None:
                            stream.journal.append_close(
                                -1 if entry.reported_total is None else entry.reported_total
                            )
            self._maybe_compact(stream)
        self._relay_frames.inc()
        self._relay_records.inc(appended)
        self._relay_duplicates.inc(duplicates)
        self._records.inc(appended)

    def _observe_link_latency(self, conn: _Connection, latency: float) -> None:
        """Record one hop's delivery latency in the link's histogram."""
        hist = conn.latency
        if hist is None:
            hist = self.metrics.histogram(
                "relay_link_latency_seconds",
                help="edge-to-here RELAY delivery latency per downstream link",
                labels={"peer": conn.peer},
            )
            conn.latency = hist
            with self._lock:
                self._link_latency[conn.peer] = hist
        # Sender and receiver sample the same monotonic clock only when they
        # share a host; clamp the tiny negative skews scheduling can produce.
        hist.observe(latency if latency > 0.0 else 0.0)

    def _register(
        self, hello: protocol.Hello, *, via_relay: bool = False
    ) -> tuple[_CollectorStream, int]:
        capacity = hello.capacity if hello.capacity > 0 else self._default_capacity
        capacity = min(max(capacity, _MIN_STREAM_CAPACITY), _MAX_STREAM_CAPACITY)
        with self._streams_changed:
            stream_id = hello.name
            suffix = 1
            while stream_id in self._streams:
                # A reconnecting producer resumes its own stream — identified
                # by (pid, nonce), so a same-named sibling backend in the
                # same process can never splice into another's history.  The
                # nonce is unique per backend instance, so a matching HELLO
                # supersedes the old connection even if the loop has not yet
                # observed the disconnect.  Other collisions get a distinct
                # id instead.
                existing = self._streams[stream_id]
                with existing.lock:
                    if existing.pid == hello.pid and existing.nonce == hello.nonce:
                        existing.conn_gen += 1
                        existing.connected = True
                        existing.closed = False
                        existing.reported_total = None
                        existing.backend.set_default_window(hello.default_window)
                        existing.backend.set_targets(hello.target_min, hello.target_max)
                        existing.target_min = hello.target_min
                        existing.target_max = hello.target_max
                        existing.default_window = hello.default_window
                        if existing.journal is not None:
                            # Journal the re-registration: replay applies
                            # the freshest metadata, later HELLOs winning.
                            existing.journal.append_hello(hello)
                        return existing, existing.conn_gen
                suffix += 1
                stream_id = f"{hello.name}@{suffix}"
            backend: Backend | None = None
            if self._arena is not None:
                try:
                    backend = self._arena.allocate(stream_id)
                except BackendError:
                    # Slab full: this stream overflows onto a private
                    # backend and stays observable the per-object way.
                    self._unpooled[stream_id] = None
            stream = _CollectorStream(stream_id, hello, capacity, backend)
            stream.via_relay = via_relay
            if self._journal is not None:
                stream.journal = self._journal.writer(
                    stream_id, hello, via_relay=via_relay
                )
            self._streams[stream_id] = stream
            self._streams_changed.notify_all()
            return stream, stream.conn_gen

    def _restore_from_journal(self) -> None:
        """Re-register every journaled stream (construction time only).

        Restored streams start disconnected — their producers redial with
        the same (pid, nonce) and resume, their relay links re-register and
        are deduplicated against the restored ``last_beat`` high-water mark.
        ``total_beats`` restarts from the retained window (the ring never
        journaled what it had already shed).
        """
        assert self._journal is not None
        for replayed in self._journal.replay():
            hello = replayed.hello
            capacity = hello.capacity if hello.capacity > 0 else self._default_capacity
            capacity = min(max(capacity, _MIN_STREAM_CAPACITY), _MAX_STREAM_CAPACITY)
            backend: Backend | None = None
            if self._arena is not None:
                try:
                    backend = self._arena.allocate(replayed.stream_id)
                except BackendError:
                    self._unpooled[replayed.stream_id] = None
            stream = _CollectorStream(replayed.stream_id, hello, capacity, backend)
            stream.connected = False
            stream.closed = replayed.closed
            stream.reported_total = replayed.reported_total
            stream.via_relay = replayed.via_relay
            stream.last_beat = replayed.last_beat
            if replayed.records.shape[0]:
                stream.backend.append_many(replayed.records)
            try:
                stream.journal = self._journal.resume(replayed)
            except OSError:
                stream.journal = None  # restored read-only; ingest continues
            with self._streams_changed:
                self._streams[replayed.stream_id] = stream
                self._streams_changed.notify_all()

    def _maybe_compact(self, stream: _CollectorStream) -> None:
        """Rewrite an oversized journal from the stream's retained window."""
        writer = stream.journal
        if writer is None or not writer.oversized:
            return
        with stream.lock:
            snapshot = stream.backend.snapshot()
            hello = protocol.Hello(
                name=stream.name,
                pid=stream.pid,
                nonce=stream.nonce,
                default_window=stream.default_window,
                capacity=stream.capacity,
                target_min=stream.target_min,
                target_max=stream.target_max,
            )
            writer.rewrite(
                hello,
                snapshot.records,
                via_relay=stream.via_relay,
                closed=stream.closed,
                reported_total=stream.reported_total,
            )
