"""Wire protocol for networked heartbeat telemetry.

A heartbeat stream crosses the network as a sequence of *frames*.  Every
frame is length-prefixed and carries a CRC of its payload, so a collector
can reject truncated or corrupted input deterministically instead of
misparsing it; the protocol is versioned so the layout can evolve without
silently breaking old peers.

Frame layout (network byte order)
---------------------------------
========  ======  ====================================================
offset    type    field
========  ======  ====================================================
0         4s      magic (``b"HBTP"``)
4         u8      protocol version (currently 1)
5         u8      frame type (hello / batch / targets / close)
6         u16     flags (reserved, must be zero)
8         u32     payload length in bytes
12        u32     CRC-32 of the payload
16        --      payload
========  ======  ====================================================

Frame types
-----------
``HELLO``
    Sent once per connection before anything else; registers the stream with
    the collector.  Carries the stream name, producer PID, default rate
    window, capacity hint and current target range, so a reconnecting
    producer re-synchronises the collector's per-stream metadata in one
    frame.
``BATCH``
    One or more heartbeat records packed exactly as the shared
    :data:`repro.core.record.RECORD_DTYPE` (little-endian on the wire).  On
    little-endian hosts — the common case — encoding is zero-copy: the
    frame's payload *is* the records array's buffer.
``TARGETS``
    A target heart-rate range update (``HB_set_target_rate`` made visible to
    remote observers).
``CLOSE``
    Graceful end of stream, carrying the producer's final beat count; a
    connection that drops without a CLOSE is a producer death, not a
    shutdown.
``RELAY``
    A collector→collector frame: one batch of per-stream *delta* entries —
    stream id, origin identity (pid, nonce), goals, liveness flags and any
    new records — letting an edge collector forward its whole fleet upstream
    in a handful of frames.  The payload carries its own version byte and
    record itemsize, so relay links are re-negotiable independently of the
    outer frame version and a root rejects mismatched record layouts
    deterministically.  A connection's first frame chooses its role: HELLO
    makes it a producer link, RELAY makes it a relay link, and the two frame
    families must not be mixed afterwards.

The byte-exact layouts, versioning rules and compatibility guarantees are
specified normatively in ``docs/wire-protocol.md``; this module is the
reference implementation.

>>> frame = encode_targets(8.0, 12.0)
>>> frame[:4], len(frame)
(b'HBTP', 32)
>>> decoder = FrameDecoder()
>>> [f.type for f in decoder.feed(frame)] == [FRAME_TARGETS]
True
"""

from __future__ import annotations

import struct
import sys
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ProtocolError
from repro.core.record import RECORD_DTYPE

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER",
    "MAX_PAYLOAD",
    "FRAME_HELLO",
    "FRAME_BATCH",
    "FRAME_TARGETS",
    "FRAME_CLOSE",
    "FRAME_RELAY",
    "RELAY_VERSION",
    "RELAY_MIN_VERSION",
    "MAX_RELAY_ENTRIES",
    "Frame",
    "FrameDecoder",
    "Hello",
    "RelayEntry",
    "RelayFrame",
    "ProtocolError",
    "encode_frame",
    "frame_buffers",
    "encode_hello",
    "decode_hello",
    "batch_payload",
    "decode_batch",
    "encode_targets",
    "decode_targets",
    "encode_close",
    "decode_close",
    "encode_relay",
    "decode_relay",
    "decode_relay_frame",
    "relay_entry_size",
    "strip_header",
    "parse_address",
]

MAGIC = b"HBTP"
PROTOCOL_VERSION = 1

#: magic, version, frame type, flags, payload length, payload CRC-32.
HEADER = struct.Struct("!4sBBHII")
HEADER_SIZE = HEADER.size

#: Upper bound on a frame payload.  Large enough for any realistic record
#: batch (16 MiB ≈ 500k records) while bounding what a garbage length prefix
#: can make a collector buffer.
MAX_PAYLOAD = 16 * 1024 * 1024

FRAME_HELLO = 1
FRAME_BATCH = 2
FRAME_TARGETS = 3
FRAME_CLOSE = 4
FRAME_RELAY = 5
_KNOWN_FRAMES = frozenset((FRAME_HELLO, FRAME_BATCH, FRAME_TARGETS, FRAME_CLOSE, FRAME_RELAY))

#: Version byte of the RELAY payload itself.  Relay links are
#: collector↔collector, so their layout can evolve (new flags, compression)
#: without bumping :data:`PROTOCOL_VERSION` and breaking every producer.
#: Version 2 widened the payload header with a hop-timestamp field so a
#: parent can measure per-link delivery latency; senders always emit the
#: current version, receivers accept every version down to
#: :data:`RELAY_MIN_VERSION`.
RELAY_VERSION = 2

#: Oldest RELAY payload version a receiver still decodes.  Version 1 frames
#: (no hop timestamp) decode as unannotated, so a new root keeps accepting
#: old edges during a rolling upgrade.
RELAY_MIN_VERSION = 1

#: Upper bound on stream entries in one RELAY frame (the count field is u16).
MAX_RELAY_ENTRIES = 0xFFFF

#: On-the-wire record layout: the shared record dtype, little-endian.  On
#: little-endian hosts this *is* :data:`RECORD_DTYPE`, so packing a batch is
#: a buffer view rather than a copy.
WIRE_RECORD_DTYPE = RECORD_DTYPE.newbyteorder("<")
_NATIVE_IS_WIRE = sys.byteorder == "little"

#: pid, nonce, window, capacity, itemsize, tmin, tmax, name length.  The
#: nonce is unique per producer backend instance, so a collector can tell a
#: reconnect of the *same* stream from a same-named sibling in one process.
_HELLO = struct.Struct("!qqqqqddH")
_TARGETS = struct.Struct("!dd")
_CLOSE = struct.Struct("!q")

#: RELAY v1 payload header: relay version, record itemsize, entry count.
_RELAY_HEADER_V1 = struct.Struct("!BHH")
#: RELAY v2 payload header: v1 fields plus the sender's hop timestamp (an
#: f64 ``time.perf_counter()`` reading; 0.0 means "not annotated").
_RELAY_HEADER_V2 = struct.Struct("!BHHd")
#: One RELAY entry header: pid, nonce, default window, target min/max,
#: reported total (-1: none), flags, stream-id byte length, record count.
_RELAY_ENTRY = struct.Struct("!qqqddqBHI")

#: RELAY entry flag bits (liveness propagated from the edge).
RELAY_FLAG_CONNECTED = 0x01
RELAY_FLAG_CLOSED = 0x02


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded frame: its type and raw payload bytes."""

    type: int
    payload: bytes


@dataclass(frozen=True, slots=True)
class Hello:
    """Decoded stream registration (the first frame of every connection)."""

    name: str
    pid: int
    default_window: int
    capacity: int
    target_min: float
    target_max: float
    nonce: int = 0


# ---------------------------------------------------------------------- #
# Encoding
# ---------------------------------------------------------------------- #
def frame_buffers(ftype: int, payload: bytes | memoryview) -> tuple[bytes, bytes | memoryview]:
    """Return ``(header, payload)`` buffers for one frame.

    The payload buffer is returned as given, so a large record batch can be
    written to a socket without ever being copied into a joined bytestring.
    """
    length = len(payload) if isinstance(payload, bytes) else payload.nbytes
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload of {length} bytes exceeds the {MAX_PAYLOAD} byte limit")
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, ftype, 0, length, zlib.crc32(payload))
    return header, payload


def encode_frame(ftype: int, payload: bytes | memoryview = b"") -> bytes:
    """One frame as a single contiguous bytestring (convenience for tests)."""
    header, body = frame_buffers(ftype, payload)
    return header + bytes(body)


def encode_hello(
    name: str,
    *,
    pid: int = 0,
    nonce: int = 0,
    default_window: int = 0,
    capacity: int = 0,
    target_min: float = 0.0,
    target_max: float = 0.0,
) -> bytes:
    """Encode a stream registration frame."""
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"stream name of {len(raw)} bytes is too long")
    payload = (
        _HELLO.pack(
            pid, nonce, default_window, capacity, RECORD_DTYPE.itemsize, target_min, target_max, len(raw)
        )
        + raw
    )
    return encode_frame(FRAME_HELLO, payload)


def decode_hello(payload: bytes) -> Hello:
    """Decode a HELLO payload, validating the record layout it announces."""
    if len(payload) < _HELLO.size:
        raise ProtocolError(f"hello payload truncated: {len(payload)} bytes")
    pid, nonce, window, capacity, itemsize, tmin, tmax, name_len = _HELLO.unpack_from(payload)
    if itemsize != RECORD_DTYPE.itemsize:
        raise ProtocolError(
            f"peer records are {itemsize} bytes per record, expected {RECORD_DTYPE.itemsize}"
        )
    raw = payload[_HELLO.size : _HELLO.size + name_len]
    if len(raw) != name_len:
        raise ProtocolError("hello payload truncated: name shorter than its declared length")
    try:
        name = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"stream name is not valid UTF-8: {exc}") from exc
    if not name:
        raise ProtocolError("stream name must not be empty")
    return Hello(
        name=name,
        pid=int(pid),
        default_window=int(window),
        capacity=int(capacity),
        target_min=float(tmin),
        target_max=float(tmax),
        nonce=int(nonce),
    )


def batch_payload(records: np.ndarray) -> bytes | memoryview:
    """Pack a record batch for the wire.

    On little-endian hosts the returned buffer is a zero-copy view of the
    array's memory; big-endian hosts pay one byteswapped copy.
    """
    if records.dtype != RECORD_DTYPE:
        raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
    wire = records if _NATIVE_IS_WIRE else records.astype(WIRE_RECORD_DTYPE)
    if not wire.flags.c_contiguous:  # pragma: no cover - callers pass fresh arrays
        wire = np.ascontiguousarray(wire)
    return memoryview(wire).cast("B")


def decode_batch(payload: bytes) -> np.ndarray:
    """Unpack a BATCH payload into a native-endian record array.

    The returned array is read-only on little-endian hosts (it views the
    payload bytes); callers that store it copy it into their own buffer.
    """
    if len(payload) == 0:
        raise ProtocolError("batch frame carries no records")
    if len(payload) % WIRE_RECORD_DTYPE.itemsize:
        raise ProtocolError(
            f"batch payload of {len(payload)} bytes is not a whole number of "
            f"{WIRE_RECORD_DTYPE.itemsize}-byte records"
        )
    records = np.frombuffer(payload, dtype=WIRE_RECORD_DTYPE)
    return records if _NATIVE_IS_WIRE else records.astype(RECORD_DTYPE)


def encode_targets(target_min: float, target_max: float) -> bytes:
    """Encode a target heart-rate range update."""
    return encode_frame(FRAME_TARGETS, _TARGETS.pack(target_min, target_max))


def decode_targets(payload: bytes) -> tuple[float, float]:
    if len(payload) != _TARGETS.size:
        raise ProtocolError(f"targets payload must be {_TARGETS.size} bytes, got {len(payload)}")
    tmin, tmax = _TARGETS.unpack(payload)
    return float(tmin), float(tmax)


def encode_close(total_beats: int = 0) -> bytes:
    """Encode a graceful end-of-stream frame with the final beat count."""
    return encode_frame(FRAME_CLOSE, _CLOSE.pack(total_beats))


def decode_close(payload: bytes) -> int:
    if len(payload) != _CLOSE.size:
        raise ProtocolError(f"close payload must be {_CLOSE.size} bytes, got {len(payload)}")
    return int(_CLOSE.unpack(payload)[0])


# ---------------------------------------------------------------------- #
# Relay frames (collector → collector)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class RelayEntry:
    """One stream's contribution to a RELAY frame.

    Every entry is self-describing: it carries the stream's edge-local id,
    the *origin producer's* identity (``pid``, ``nonce`` — forwarded
    unchanged so a root applies the same reconnect-resumption rule to
    relayed streams as to direct producers), the current goals, liveness
    flags and zero or more new records.  A root that has never seen the
    stream registers it from the entry alone; no HELLO is required on a
    relay link.

    Parameters
    ----------
    stream_id:
        The edge collector's id for the stream (its registration key at the
        next hop, subject to the usual collision suffixing).
    pid, nonce:
        Identity of the origin producer backend, forwarded end to end.
    default_window, target_min, target_max:
        Stream metadata, always current (cheap to re-send; the receiver
        applies them only on change).
    connected, closed, reported_total:
        Liveness as the edge sees it: ``connected`` tracks the producer's
        link to the edge, ``closed``/``reported_total`` propagate a graceful
        CLOSE.  ``reported_total`` is ``None`` until the producer closed.
    records:
        New records since the previous RELAY entry for this stream (dtype
        :data:`repro.core.record.RECORD_DTYPE`), possibly empty for a pure
        metadata/liveness update.

    >>> import numpy as np
    >>> from repro.core.record import RECORD_DTYPE
    >>> entry = RelayEntry(stream_id="svc", pid=7, nonce=1,
    ...                    records=np.zeros(2, dtype=RECORD_DTYPE))
    >>> [e.records.shape[0] for e in decode_relay(strip_header(encode_relay([entry])))]
    [2]
    """

    stream_id: str
    pid: int = 0
    nonce: int = 0
    default_window: int = 0
    target_min: float = 0.0
    target_max: float = 0.0
    connected: bool = True
    closed: bool = False
    reported_total: int | None = None
    records: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.records is None:
            object.__setattr__(self, "records", np.empty(0, dtype=RECORD_DTYPE))


@dataclass(frozen=True, slots=True)
class RelayFrame:
    """One decoded RELAY payload: its entries plus the hop annotation.

    ``hop_timestamp`` is the sending collector's ``time.perf_counter()``
    reading at the moment the frame was encoded, or ``None`` for a v1 frame
    (or a v2 frame whose sender chose not to annotate).  It is only
    meaningful to a receiver on the *same host* time base or one measuring
    latency against its own clock via round-trip-free estimation; the
    collector uses it for same-process federation trees and loopback hops,
    where sender and receiver share one monotonic clock.
    """

    entries: list[RelayEntry]
    hop_timestamp: float | None = None


def relay_entry_size(stream_id: str, record_count: int) -> int:
    """Encoded size of one entry, for chunking frames under :data:`MAX_PAYLOAD`."""
    return (
        _RELAY_ENTRY.size
        + len(stream_id.encode("utf-8"))
        + record_count * WIRE_RECORD_DTYPE.itemsize
    )


def encode_relay(
    entries: "list[RelayEntry] | tuple[RelayEntry, ...]",
    *,
    hop_timestamp: float | None = None,
) -> bytes:
    """Encode one RELAY frame carrying ``entries``.

    ``hop_timestamp`` stamps the frame with the sender's monotonic send
    time (v2 annotation); ``None`` encodes the "not annotated" sentinel.
    The caller is responsible for keeping the total payload under
    :data:`MAX_PAYLOAD` (use :func:`relay_entry_size` to chunk); an
    oversized payload raises :class:`ProtocolError` like any other frame.
    """
    if len(entries) > MAX_RELAY_ENTRIES:
        raise ProtocolError(f"{len(entries)} entries exceed the {MAX_RELAY_ENTRIES} per-frame limit")
    stamp = 0.0 if hop_timestamp is None else float(hop_timestamp)
    parts = [_RELAY_HEADER_V2.pack(RELAY_VERSION, RECORD_DTYPE.itemsize, len(entries), stamp)]
    for entry in entries:
        raw_id = entry.stream_id.encode("utf-8")
        if not raw_id:
            raise ProtocolError("relay entry stream id must not be empty")
        if len(raw_id) > 0xFFFF:
            raise ProtocolError(f"relay stream id of {len(raw_id)} bytes is too long")
        if entry.records.dtype != RECORD_DTYPE:
            raise ValueError(
                f"records dtype must be {RECORD_DTYPE}, got {entry.records.dtype}"
            )
        flags = (RELAY_FLAG_CONNECTED if entry.connected else 0) | (
            RELAY_FLAG_CLOSED if entry.closed else 0
        )
        reported = -1 if entry.reported_total is None else int(entry.reported_total)
        parts.append(
            _RELAY_ENTRY.pack(
                entry.pid,
                entry.nonce,
                entry.default_window,
                entry.target_min,
                entry.target_max,
                reported,
                flags,
                len(raw_id),
                int(entry.records.shape[0]),
            )
        )
        parts.append(raw_id)
        if entry.records.shape[0]:
            parts.append(bytes(batch_payload(entry.records)))
    return encode_frame(FRAME_RELAY, b"".join(parts))


def decode_relay(payload: bytes) -> list[RelayEntry]:
    """Decode a RELAY payload into its stream entries.

    A convenience wrapper over :func:`decode_relay_frame` for callers that
    do not care about the hop annotation.
    """
    return decode_relay_frame(payload).entries


def decode_relay_frame(payload: bytes) -> RelayFrame:
    """Decode a RELAY payload into entries plus its hop annotation.

    Accepts payload versions :data:`RELAY_MIN_VERSION` through
    :data:`RELAY_VERSION` (v1 frames decode with ``hop_timestamp=None``);
    rejects anything else and mismatched record layouts up front — a relay
    link negotiates nothing, so the first frame already proves (or
    disproves) compatibility.
    """
    if len(payload) < _RELAY_HEADER_V1.size:
        raise ProtocolError(f"relay payload truncated: {len(payload)} bytes")
    version = payload[0]
    if not RELAY_MIN_VERSION <= version <= RELAY_VERSION:
        raise ProtocolError(f"unsupported relay version {version}")
    hop_timestamp: float | None = None
    if version >= 2:
        if len(payload) < _RELAY_HEADER_V2.size:
            raise ProtocolError(f"relay payload truncated: {len(payload)} bytes")
        version, itemsize, count, stamp = _RELAY_HEADER_V2.unpack_from(payload)
        if stamp > 0.0:
            hop_timestamp = float(stamp)
        offset = _RELAY_HEADER_V2.size
    else:
        version, itemsize, count = _RELAY_HEADER_V1.unpack_from(payload)
        offset = _RELAY_HEADER_V1.size
    if itemsize != RECORD_DTYPE.itemsize:
        raise ProtocolError(
            f"relay records are {itemsize} bytes per record, expected {RECORD_DTYPE.itemsize}"
        )
    entries: list[RelayEntry] = []
    for _ in range(count):
        if len(payload) - offset < _RELAY_ENTRY.size:
            raise ProtocolError("relay payload truncated: entry header incomplete")
        (
            pid, nonce, window, tmin, tmax, reported, flags, id_len, n_records,
        ) = _RELAY_ENTRY.unpack_from(payload, offset)
        offset += _RELAY_ENTRY.size
        raw_id = payload[offset : offset + id_len]
        if len(raw_id) != id_len:
            raise ProtocolError("relay payload truncated: stream id incomplete")
        offset += id_len
        try:
            stream_id = raw_id.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"relay stream id is not valid UTF-8: {exc}") from exc
        if not stream_id:
            raise ProtocolError("relay entry stream id must not be empty")
        nbytes = n_records * WIRE_RECORD_DTYPE.itemsize
        raw_records = payload[offset : offset + nbytes]
        if len(raw_records) != nbytes:
            raise ProtocolError("relay payload truncated: records incomplete")
        offset += nbytes
        records = (
            decode_batch(raw_records) if n_records else np.empty(0, dtype=RECORD_DTYPE)
        )
        entries.append(
            RelayEntry(
                stream_id=stream_id,
                pid=int(pid),
                nonce=int(nonce),
                default_window=int(window),
                target_min=float(tmin),
                target_max=float(tmax),
                connected=bool(flags & RELAY_FLAG_CONNECTED),
                closed=bool(flags & RELAY_FLAG_CLOSED),
                reported_total=None if reported < 0 else int(reported),
                records=records,
            )
        )
    if offset != len(payload):
        raise ProtocolError(
            f"relay payload has {len(payload) - offset} trailing bytes after its entries"
        )
    return RelayFrame(entries=entries, hop_timestamp=hop_timestamp)


def strip_header(frame: bytes) -> bytes:
    """The payload of one already-encoded frame (a test/doctest convenience).

    >>> strip_header(encode_close(3)) == _CLOSE.pack(3)
    True
    """
    return frame[HEADER_SIZE:]


# ---------------------------------------------------------------------- #
# Decoding
# ---------------------------------------------------------------------- #
class FrameDecoder:
    """Incremental frame parser over a TCP byte stream.

    Feed it whatever ``recv`` returned; it yields every complete frame and
    retains the trailing partial one for the next call.  Any malformed input
    — bad magic, unknown version or frame type, oversized length prefix, CRC
    mismatch — raises :class:`ProtocolError`, after which the decoder is
    poisoned and the caller must drop the connection: a byte stream that has
    lost framing cannot be trusted to regain it.
    """

    __slots__ = ("_buffer", "_poisoned")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet parsed into a frame."""
        return len(self._buffer)

    def feed(self, data: bytes | memoryview) -> list[Frame]:
        """Consume ``data`` and return every frame it completes."""
        if self._poisoned:
            raise ProtocolError("decoder already failed; the connection must be dropped")
        self._buffer.extend(data)
        frames: list[Frame] = []
        try:
            while True:
                frame = self._next_frame()
                if frame is None:
                    return frames
                frames.append(frame)
        except ProtocolError:
            self._poisoned = True
            raise

    def _next_frame(self) -> Frame | None:
        buffer = self._buffer
        if len(buffer) < HEADER_SIZE:
            return None
        magic, version, ftype, flags, length, crc = HEADER.unpack_from(buffer)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if ftype not in _KNOWN_FRAMES:
            raise ProtocolError(f"unknown frame type {ftype}")
        if flags != 0:
            raise ProtocolError(f"reserved frame flags set ({flags:#x})")
        if length > MAX_PAYLOAD:
            raise ProtocolError(f"frame payload of {length} bytes exceeds the {MAX_PAYLOAD} byte limit")
        if len(buffer) < HEADER_SIZE + length:
            return None
        payload = bytes(buffer[HEADER_SIZE : HEADER_SIZE + length])
        if zlib.crc32(payload) != crc:
            raise ProtocolError("frame payload failed its CRC check")
        del buffer[: HEADER_SIZE + length]
        return Frame(type=ftype, payload=payload)


# ---------------------------------------------------------------------- #
# Addresses
# ---------------------------------------------------------------------- #
def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """Normalise ``"host:port"`` (or a ``(host, port)`` pair) to a tuple.

    IPv6 literals use the standard bracket form, ``"[::1]:7717"``; the
    brackets are stripped for the socket layer.
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    elif ":" in host:
        raise ValueError(
            f"IPv6 addresses must be bracketed, e.g. '[::1]:7717', got {address!r}"
        )
    if not host:
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"address must look like 'host:port', got {address!r}") from exc
