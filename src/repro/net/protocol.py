"""Wire protocol for networked heartbeat telemetry.

A heartbeat stream crosses the network as a sequence of *frames*.  Every
frame is length-prefixed and carries a CRC of its payload, so a collector
can reject truncated or corrupted input deterministically instead of
misparsing it; the protocol is versioned so the layout can evolve without
silently breaking old peers.

Frame layout (network byte order)
---------------------------------
========  ======  ====================================================
offset    type    field
========  ======  ====================================================
0         4s      magic (``b"HBTP"``)
4         u8      protocol version (currently 1)
5         u8      frame type (hello / batch / targets / close)
6         u16     flags (reserved, must be zero)
8         u32     payload length in bytes
12        u32     CRC-32 of the payload
16        --      payload
========  ======  ====================================================

Frame types
-----------
``HELLO``
    Sent once per connection before anything else; registers the stream with
    the collector.  Carries the stream name, producer PID, default rate
    window, capacity hint and current target range, so a reconnecting
    producer re-synchronises the collector's per-stream metadata in one
    frame.
``BATCH``
    One or more heartbeat records packed exactly as the shared
    :data:`repro.core.record.RECORD_DTYPE` (little-endian on the wire).  On
    little-endian hosts — the common case — encoding is zero-copy: the
    frame's payload *is* the records array's buffer.
``TARGETS``
    A target heart-rate range update (``HB_set_target_rate`` made visible to
    remote observers).
``CLOSE``
    Graceful end of stream, carrying the producer's final beat count; a
    connection that drops without a CLOSE is a producer death, not a
    shutdown.
"""

from __future__ import annotations

import struct
import sys
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ProtocolError
from repro.core.record import RECORD_DTYPE

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER",
    "MAX_PAYLOAD",
    "FRAME_HELLO",
    "FRAME_BATCH",
    "FRAME_TARGETS",
    "FRAME_CLOSE",
    "Frame",
    "FrameDecoder",
    "Hello",
    "ProtocolError",
    "encode_frame",
    "frame_buffers",
    "encode_hello",
    "decode_hello",
    "batch_payload",
    "decode_batch",
    "encode_targets",
    "decode_targets",
    "encode_close",
    "decode_close",
    "parse_address",
]

MAGIC = b"HBTP"
PROTOCOL_VERSION = 1

#: magic, version, frame type, flags, payload length, payload CRC-32.
HEADER = struct.Struct("!4sBBHII")
HEADER_SIZE = HEADER.size

#: Upper bound on a frame payload.  Large enough for any realistic record
#: batch (16 MiB ≈ 500k records) while bounding what a garbage length prefix
#: can make a collector buffer.
MAX_PAYLOAD = 16 * 1024 * 1024

FRAME_HELLO = 1
FRAME_BATCH = 2
FRAME_TARGETS = 3
FRAME_CLOSE = 4
_KNOWN_FRAMES = frozenset((FRAME_HELLO, FRAME_BATCH, FRAME_TARGETS, FRAME_CLOSE))

#: On-the-wire record layout: the shared record dtype, little-endian.  On
#: little-endian hosts this *is* :data:`RECORD_DTYPE`, so packing a batch is
#: a buffer view rather than a copy.
WIRE_RECORD_DTYPE = RECORD_DTYPE.newbyteorder("<")
_NATIVE_IS_WIRE = sys.byteorder == "little"

#: pid, nonce, window, capacity, itemsize, tmin, tmax, name length.  The
#: nonce is unique per producer backend instance, so a collector can tell a
#: reconnect of the *same* stream from a same-named sibling in one process.
_HELLO = struct.Struct("!qqqqqddH")
_TARGETS = struct.Struct("!dd")
_CLOSE = struct.Struct("!q")


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded frame: its type and raw payload bytes."""

    type: int
    payload: bytes


@dataclass(frozen=True, slots=True)
class Hello:
    """Decoded stream registration (the first frame of every connection)."""

    name: str
    pid: int
    default_window: int
    capacity: int
    target_min: float
    target_max: float
    nonce: int = 0


# ---------------------------------------------------------------------- #
# Encoding
# ---------------------------------------------------------------------- #
def frame_buffers(ftype: int, payload: bytes | memoryview) -> tuple[bytes, bytes | memoryview]:
    """Return ``(header, payload)`` buffers for one frame.

    The payload buffer is returned as given, so a large record batch can be
    written to a socket without ever being copied into a joined bytestring.
    """
    length = len(payload) if isinstance(payload, bytes) else payload.nbytes
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload of {length} bytes exceeds the {MAX_PAYLOAD} byte limit")
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, ftype, 0, length, zlib.crc32(payload))
    return header, payload


def encode_frame(ftype: int, payload: bytes | memoryview = b"") -> bytes:
    """One frame as a single contiguous bytestring (convenience for tests)."""
    header, body = frame_buffers(ftype, payload)
    return header + bytes(body)


def encode_hello(
    name: str,
    *,
    pid: int = 0,
    nonce: int = 0,
    default_window: int = 0,
    capacity: int = 0,
    target_min: float = 0.0,
    target_max: float = 0.0,
) -> bytes:
    """Encode a stream registration frame."""
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"stream name of {len(raw)} bytes is too long")
    payload = (
        _HELLO.pack(
            pid, nonce, default_window, capacity, RECORD_DTYPE.itemsize, target_min, target_max, len(raw)
        )
        + raw
    )
    return encode_frame(FRAME_HELLO, payload)


def decode_hello(payload: bytes) -> Hello:
    """Decode a HELLO payload, validating the record layout it announces."""
    if len(payload) < _HELLO.size:
        raise ProtocolError(f"hello payload truncated: {len(payload)} bytes")
    pid, nonce, window, capacity, itemsize, tmin, tmax, name_len = _HELLO.unpack_from(payload)
    if itemsize != RECORD_DTYPE.itemsize:
        raise ProtocolError(
            f"peer records are {itemsize} bytes per record, expected {RECORD_DTYPE.itemsize}"
        )
    raw = payload[_HELLO.size : _HELLO.size + name_len]
    if len(raw) != name_len:
        raise ProtocolError("hello payload truncated: name shorter than its declared length")
    try:
        name = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"stream name is not valid UTF-8: {exc}") from exc
    if not name:
        raise ProtocolError("stream name must not be empty")
    return Hello(
        name=name,
        pid=int(pid),
        default_window=int(window),
        capacity=int(capacity),
        target_min=float(tmin),
        target_max=float(tmax),
        nonce=int(nonce),
    )


def batch_payload(records: np.ndarray) -> bytes | memoryview:
    """Pack a record batch for the wire.

    On little-endian hosts the returned buffer is a zero-copy view of the
    array's memory; big-endian hosts pay one byteswapped copy.
    """
    if records.dtype != RECORD_DTYPE:
        raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
    wire = records if _NATIVE_IS_WIRE else records.astype(WIRE_RECORD_DTYPE)
    if not wire.flags.c_contiguous:  # pragma: no cover - callers pass fresh arrays
        wire = np.ascontiguousarray(wire)
    return memoryview(wire).cast("B")


def decode_batch(payload: bytes) -> np.ndarray:
    """Unpack a BATCH payload into a native-endian record array.

    The returned array is read-only on little-endian hosts (it views the
    payload bytes); callers that store it copy it into their own buffer.
    """
    if len(payload) == 0:
        raise ProtocolError("batch frame carries no records")
    if len(payload) % WIRE_RECORD_DTYPE.itemsize:
        raise ProtocolError(
            f"batch payload of {len(payload)} bytes is not a whole number of "
            f"{WIRE_RECORD_DTYPE.itemsize}-byte records"
        )
    records = np.frombuffer(payload, dtype=WIRE_RECORD_DTYPE)
    return records if _NATIVE_IS_WIRE else records.astype(RECORD_DTYPE)


def encode_targets(target_min: float, target_max: float) -> bytes:
    """Encode a target heart-rate range update."""
    return encode_frame(FRAME_TARGETS, _TARGETS.pack(target_min, target_max))


def decode_targets(payload: bytes) -> tuple[float, float]:
    if len(payload) != _TARGETS.size:
        raise ProtocolError(f"targets payload must be {_TARGETS.size} bytes, got {len(payload)}")
    tmin, tmax = _TARGETS.unpack(payload)
    return float(tmin), float(tmax)


def encode_close(total_beats: int = 0) -> bytes:
    """Encode a graceful end-of-stream frame with the final beat count."""
    return encode_frame(FRAME_CLOSE, _CLOSE.pack(total_beats))


def decode_close(payload: bytes) -> int:
    if len(payload) != _CLOSE.size:
        raise ProtocolError(f"close payload must be {_CLOSE.size} bytes, got {len(payload)}")
    return int(_CLOSE.unpack(payload)[0])


# ---------------------------------------------------------------------- #
# Decoding
# ---------------------------------------------------------------------- #
class FrameDecoder:
    """Incremental frame parser over a TCP byte stream.

    Feed it whatever ``recv`` returned; it yields every complete frame and
    retains the trailing partial one for the next call.  Any malformed input
    — bad magic, unknown version or frame type, oversized length prefix, CRC
    mismatch — raises :class:`ProtocolError`, after which the decoder is
    poisoned and the caller must drop the connection: a byte stream that has
    lost framing cannot be trusted to regain it.
    """

    __slots__ = ("_buffer", "_poisoned")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet parsed into a frame."""
        return len(self._buffer)

    def feed(self, data: bytes | memoryview) -> list[Frame]:
        """Consume ``data`` and return every frame it completes."""
        if self._poisoned:
            raise ProtocolError("decoder already failed; the connection must be dropped")
        self._buffer.extend(data)
        frames: list[Frame] = []
        try:
            while True:
                frame = self._next_frame()
                if frame is None:
                    return frames
                frames.append(frame)
        except ProtocolError:
            self._poisoned = True
            raise

    def _next_frame(self) -> Frame | None:
        buffer = self._buffer
        if len(buffer) < HEADER_SIZE:
            return None
        magic, version, ftype, flags, length, crc = HEADER.unpack_from(buffer)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if ftype not in _KNOWN_FRAMES:
            raise ProtocolError(f"unknown frame type {ftype}")
        if flags != 0:
            raise ProtocolError(f"reserved frame flags set ({flags:#x})")
        if length > MAX_PAYLOAD:
            raise ProtocolError(f"frame payload of {length} bytes exceeds the {MAX_PAYLOAD} byte limit")
        if len(buffer) < HEADER_SIZE + length:
            return None
        payload = bytes(buffer[HEADER_SIZE : HEADER_SIZE + length])
        if zlib.crc32(payload) != crc:
            raise ProtocolError("frame payload failed its CRC check")
        del buffer[: HEADER_SIZE + length]
        return Frame(type=ftype, payload=payload)


# ---------------------------------------------------------------------- #
# Addresses
# ---------------------------------------------------------------------- #
def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """Normalise ``"host:port"`` (or a ``(host, port)`` pair) to a tuple.

    IPv6 literals use the standard bracket form, ``"[::1]:7717"``; the
    brackets are stripped for the socket layer.
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    elif ":" in host:
        raise ValueError(
            f"IPv6 addresses must be bracketed, e.g. '[::1]:7717', got {address!r}"
        )
    if not host:
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"address must look like 'host:port', got {address!r}") from exc
