"""Edge-collector forwarding: ship local streams upstream in RELAY frames.

:class:`RelayForwarder` is the other half of collector federation (see
:mod:`repro.net.async_collector`).  An edge collector absorbs producer
fan-in locally; this forwarder's single background thread sweeps every
registered stream on a fixed interval, pulls *new* records through the
backend's cursored :meth:`snapshot_since` delta path, and batches them —
many streams per frame — into the versioned RELAY frames defined by
:mod:`repro.net.protocol`, shipped over one upstream TCP connection.

The discipline is the exporter's, applied one tier up:

* **reconnect with exponential backoff** — the upstream being down never
  blocks local ingest; the forwarder retries from 50 ms up to 2 s;
* **full replay on reconnect** — every per-stream cursor is discarded when
  a connection is established, so the next sweep re-sends each stream's
  retained history.  A restarted (empty) root rebuilds the fleet from the
  replay; a root that never went away deduplicates the overlap by beat
  number, so replay is idempotent;
* **drop-oldest backpressure** — unsent records are *not* queued here; they
  live in the edge's per-stream ring buffers.  If the upstream stays down
  long enough for a ring to lap, the delta path resynchronizes from the
  retained window and the oldest records are the ones lost;
* **at-least-once delivery** — cursors commit only after a successful send,
  so a connection lost mid-sweep re-sends from the last committed cursor.

>>> def chunks(total, per_entry):
...     return (total + per_entry - 1) // per_entry
>>> chunks(10_000, 4096)  # a lapped ring replays in a handful of entries
3
"""

from __future__ import annotations

import socket
import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.backends.base import SnapshotCursor
from repro.net import protocol
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.async_collector import AsyncHeartbeatCollector, _CollectorStream

__all__ = ["RelayForwarder"]

#: Per-frame payload budget, below the protocol hard cap so header and entry
#: overheads can never push a frame over :data:`repro.net.protocol.MAX_PAYLOAD`.
_FRAME_BUDGET = protocol.MAX_PAYLOAD - 4096

#: Metadata/liveness fingerprint of one stream as last sent upstream.
_Meta = tuple[float, float, int, bool, bool, "int | None"]


class _StreamState:
    """Forwarding state for one local stream (forwarder thread only)."""

    __slots__ = ("cursor", "sent_meta")

    def __init__(self) -> None:
        self.cursor: SnapshotCursor | None = None
        self.sent_meta: _Meta | None = None


class RelayForwarder:
    """Background thread relaying an edge collector's streams upstream.

    Parameters
    ----------
    collector:
        The owning edge collector; its registered streams are the source.
    upstream:
        ``"host:port"`` string or ``(host, port)`` tuple of the next
        collector up the tree.
    interval:
        Seconds between forwarding sweeps while the link is healthy.
    connect_timeout, send_timeout:
        Socket timeouts for dialling and for one ``sendall``.
    backoff_initial, backoff_max:
        Reconnect backoff window (doubles on each failure).
    probe_interval:
        Seconds between idle-EOF probes of the upstream link.  ``None``
        (the default) probes on every sweep — the historic cadence; a
        positive value rate-limits the probe for high-frequency sweeps.
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` to register
        forwarding counters into (labelled by upstream address); the owning
        collector passes its own registry so one scrape covers both tiers.
        A private registry is created when omitted.

    Raises
    ------
    ValueError
        When ``upstream`` is not a parseable address.

    >>> RelayForwarder.parse_upstream("127.0.0.1:9000")
    ('127.0.0.1', 9000)
    """

    def __init__(
        self,
        collector: "AsyncHeartbeatCollector",
        upstream: str | tuple[str, int],
        *,
        interval: float = 0.05,
        connect_timeout: float = 2.0,
        send_timeout: float = 5.0,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
        probe_interval: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._collector = collector
        self.address = self.parse_upstream(upstream)
        self._interval = float(interval)
        self._connect_timeout = float(connect_timeout)
        self._send_timeout = float(send_timeout)
        self._backoff_initial = float(backoff_initial)
        self._backoff_max = float(backoff_max)
        self._probe_interval = None if probe_interval is None else float(probe_interval)

        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closing = False
        self._sock: socket.socket | None = None
        self._states: dict[str, _StreamState] = {}

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        labels = {"upstream": f"{self.address[0]}:{self.address[1]}"}
        self._connects = self.metrics.counter(
            "relay_connects_total", help="upstream connections established", labels=labels
        )
        self._connect_failures = self.metrics.counter(
            "relay_connect_failures_total", help="failed upstream dials", labels=labels
        )
        self._frames_sent = self.metrics.counter(
            "relay_frames_sent_total", help="RELAY frames shipped upstream", labels=labels
        )
        self._entries_sent = self.metrics.counter(
            "relay_entries_sent_total", help="stream entries shipped upstream", labels=labels
        )
        self._records_sent = self.metrics.counter(
            "relay_records_sent_total", help="records shipped upstream", labels=labels
        )
        self._send_errors = self.metrics.counter(
            "relay_send_errors_total", help="connections lost mid-send", labels=labels
        )

        self._thread = threading.Thread(
            target=self._run, name=f"hb-relay-{self.address[1]}", daemon=True
        )

    @staticmethod
    def parse_upstream(upstream: str | tuple[str, int]) -> tuple[str, int]:
        """Normalize an upstream spec to ``(host, port)``.

        Accepts a ``(host, port)`` tuple or a ``"host:port"`` string (an
        optional ``tcp://`` prefix is tolerated so collector endpoint
        strings can be passed through unchanged).
        """
        if isinstance(upstream, tuple):
            host, port = upstream
            return (str(host), int(port))
        spec = upstream.strip()
        if spec.startswith("tcp://"):
            spec = spec[len("tcp://"):]
        host, sep, port_text = spec.rpartition(":")
        if not sep or not host:
            raise ValueError(f"upstream must be 'host:port', got {upstream!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"upstream port must be an integer, got {upstream!r}") from None
        if not 0 < port < 65536:
            raise ValueError(f"upstream port out of range in {upstream!r}")
        return (host, port)

    def start(self) -> None:
        """Start the forwarding thread (called once by the edge collector)."""
        self._thread.start()

    def close(self, timeout: float = 5.0) -> None:
        """Stop forwarding after one final flush attempt.  Idempotent.

        The thread gets one last sweep toward the upstream (bounded by the
        socket timeouts), then the connection is shut down.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)
        self._shutdown_socket()

    def stats(self) -> dict[str, int]:
        """Forwarding counters.

        Returns
        -------
        dict
            ``connects`` / ``connect_failures`` — upstream dial attempts;
            ``frames_sent`` / ``entries_sent`` / ``records_sent`` — shipped
            volume; ``send_errors`` — connections lost mid-send (the unsent
            tail is replayed from committed cursors).

        This is a view over the forwarder's :attr:`metrics` registry
        counters; the keys predate the registry and stay stable.
        """
        return {
            "connects": int(self._connects.value),
            "connect_failures": int(self._connect_failures.value),
            "frames_sent": int(self._frames_sent.value),
            "entries_sent": int(self._entries_sent.value),
            "records_sent": int(self._records_sent.value),
            "send_errors": int(self._send_errors.value),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(upstream={self.address[0]}:{self.address[1]})"

    # ------------------------------------------------------------------ #
    # Forwarding thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        backoff = self._backoff_initial
        next_attempt = 0.0
        next_probe = 0.0
        while True:
            self._wake.wait(timeout=self._interval)
            self._wake.clear()
            with self._lock:
                closing = self._closing
            if self._sock is None:
                now = time.monotonic()
                if now < next_attempt and not closing:
                    continue
                if not self._connect():
                    backoff = min(backoff * 2.0, self._backoff_max)
                    next_attempt = time.monotonic() + backoff
                    if closing:
                        return  # no peer; a final flush is pointless
                    continue
                backoff = self._backoff_initial
            sock = self._sock
            if sock is not None and (
                self._probe_interval is None or time.monotonic() >= next_probe
            ):
                if self._probe_interval is not None:
                    next_probe = time.monotonic() + self._probe_interval
                if not self._link_alive(sock):
                    # The upstream went away quietly (FIN, no RST): without
                    # this probe an *idle* link would never error and never
                    # reconnect.
                    self._shutdown_socket()
                    continue
            self._sweep()
            if closing:
                return

    def _link_alive(self, sock: socket.socket) -> bool:
        """Probe the upstream link for a half-closed/ dead peer.

        Collectors never send on relay links, so a readable socket means
        EOF (peer closed) or an error; nothing-to-read means healthy.
        """
        try:
            sock.setblocking(False)
            try:
                data = sock.recv(4096)
            finally:
                sock.settimeout(self._send_timeout)
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            return False
        return data != b""

    def _connect(self) -> bool:
        try:
            sock = socket.create_connection(self.address, timeout=self._connect_timeout)
            sock.settimeout(self._send_timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            self._connect_failures.inc()
            return False
        with self._lock:
            self._sock = sock
        self._connects.inc()
        # A fresh connection replays everything: discarding the cursors makes
        # the next sweep re-send each stream's retained history, which a
        # restarted root needs and a surviving root deduplicates.
        self._states.clear()
        return True

    def _sweep(self) -> None:
        """Forward one round of per-stream deltas; commit cursors on success."""
        streams = self._collector._relay_streams()
        pending: list[protocol.RelayEntry] = []
        commits: list[tuple[_StreamState, SnapshotCursor, _Meta]] = []
        pending_size = 0
        for stream in streams:
            state = self._states.get(stream.stream_id)
            if state is None:
                state = self._states[stream.stream_id] = _StreamState()
            delta, cursor = stream.snapshot_since(state.cursor)
            with stream.lock:
                meta: _Meta = (
                    stream.target_min,
                    stream.target_max,
                    stream.default_window,
                    stream.connected,
                    stream.closed,
                    stream.reported_total,
                )
                pid, nonce = stream.pid, stream.nonce
            if delta.records.shape[0] == 0 and meta == state.sent_meta:
                # cursors for pure clock-stamp advances still need committing
                state.cursor = cursor
                continue
            entries = self._build_entries(stream.stream_id, pid, nonce, meta, delta.records)
            for i, entry in enumerate(entries):
                size = protocol.relay_entry_size(entry.stream_id, entry.records.shape[0])
                if pending and (
                    pending_size + size > _FRAME_BUDGET
                    or len(pending) >= protocol.MAX_RELAY_ENTRIES
                ):
                    if not self._send(pending, commits):
                        return
                    pending, commits, pending_size = [], [], 0
                pending.append(entry)
                pending_size += size
                if i == len(entries) - 1:
                    # Commit rides with the stream's *last* entry: a send
                    # failure before it leaves the cursor untouched, so the
                    # whole delta is replayed (and deduplicated upstream).
                    commits.append((state, cursor, meta))
        if pending:
            self._send(pending, commits)

    def _build_entries(
        self,
        stream_id: str,
        pid: int,
        nonce: int,
        meta: _Meta,
        records: np.ndarray,
    ) -> list[protocol.RelayEntry]:
        """One stream's delta as entries, each small enough for one frame."""
        target_min, target_max, window, connected, closed, reported = meta
        base = protocol.relay_entry_size(stream_id, 0)
        per_entry = max(1, (_FRAME_BUDGET - base) // protocol.WIRE_RECORD_DTYPE.itemsize)

        def make(chunk: np.ndarray) -> protocol.RelayEntry:
            return protocol.RelayEntry(
                stream_id=stream_id,
                pid=pid,
                nonce=nonce,
                default_window=window,
                target_min=target_min,
                target_max=target_max,
                connected=connected,
                closed=closed,
                reported_total=reported,
                records=chunk,
            )

        n = int(records.shape[0])
        if n <= per_entry:
            return [make(records)]
        return [make(records[start:start + per_entry]) for start in range(0, n, per_entry)]

    def _send(
        self,
        entries: list[protocol.RelayEntry],
        commits: list[tuple[_StreamState, SnapshotCursor, _Meta]],
    ) -> bool:
        sock = self._sock
        if sock is None:  # pragma: no cover - only racing a close
            return False
        try:
            # Stamp the frame with this hop's monotonic send time so the
            # parent can histogram edge→root delivery latency per link.
            frame = protocol.encode_relay(entries, hop_timestamp=time.perf_counter())
            sock.sendall(frame)
        except OSError:
            self._send_errors.inc()
            self._shutdown_socket()
            return False
        records = sum(int(e.records.shape[0]) for e in entries)
        for state, cursor, meta in commits:
            state.cursor = cursor
            state.sent_meta = meta
        self._frames_sent.inc()
        self._entries_sent.inc(len(entries))
        self._records_sent.inc(records)
        return True

    def _shutdown_socket(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close barely ever raises
                pass
