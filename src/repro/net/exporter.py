"""Producer-side network backend.

:class:`NetworkBackend` implements the :class:`repro.core.backends.Backend`
interface on top of a TCP connection to a
:class:`repro.net.collector.HeartbeatCollector`.  Its contract mirrors the
paper's overhead story: registering a heartbeat must stay cheap and
predictable no matter what the observer is doing, so the beat path only ever
touches process-local state —

* every record lands in a local :class:`~repro.core.buffer.CircularBuffer`
  (the producer can still observe itself, exactly like ``MemoryBackend``);
* records are *also* queued for a background sender thread that frames them
  with :mod:`repro.net.protocol` and ships them over TCP;
* the queue is bounded: when the collector is slow, unreachable or dead, the
  oldest queued records are dropped (and counted) instead of the producer
  blocking — heartbeats are telemetry, and recent beats are worth more than
  old ones;
* a lost connection is retried with exponential backoff, and every
  (re)connect replays a HELLO frame carrying the stream's metadata so the
  collector is re-synchronised without any extra bookkeeping here.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from collections import deque

import numpy as np

from repro.core.backends.base import Backend, BackendSnapshot
from repro.core.buffer import CircularBuffer
from repro.core.errors import BackendError
from repro.core.record import RECORD_DTYPE
from repro.net import protocol
from repro.obs.registry import MetricsRegistry

__all__ = ["NetworkBackend"]

#: Per-process backend instance counter.  Combined with the PID in HELLO it
#: gives every backend a fleet-unique nonce, so a collector can tell a
#: reconnect of the same stream from a same-named sibling in one process.
_nonce_counter = itertools.count(1)


class NetworkBackend(Backend):
    """Ship one heartbeat stream to a remote collector over TCP.

    Parameters
    ----------
    address:
        Collector endpoint as ``"host:port"`` or a ``(host, port)`` tuple.
    stream:
        Stream name registered with the collector.  Defaults to
        ``"hb-<pid>"`` so several unnamed producers on one host stay
        distinguishable.
    capacity:
        Record slots in the local history buffer (what :meth:`snapshot`
        serves) and the capacity hint sent to the collector.
    max_pending:
        Upper bound on records queued for transmission.  Beyond it the
        oldest queued records are dropped; the producer never blocks.
    flush_interval:
        Longest time the sender lets queued records sit before shipping
        them, in seconds.
    max_batch_records:
        Largest number of records coalesced into one BATCH frame.
    connect_timeout / send_timeout:
        Socket timeouts for connecting and sending, in seconds.
    backoff_initial / backoff_max:
        Reconnect backoff: delay starts at ``backoff_initial`` and doubles
        per failed attempt up to ``backoff_max``.
    close_deadline:
        Longest :meth:`close` waits for the pending queue to flush.
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` holding the
        exporter's transmission counters (labelled by stream name).  A
        private registry is created when omitted.

    Raises
    ------
    ValueError
        When ``address`` is not a parseable ``host:port``.
    BackendError
        From :meth:`append` after the backend is closed.

    >>> from repro.net import HeartbeatCollector
    >>> with HeartbeatCollector() as collector:
    ...     backend = NetworkBackend(collector.address, stream="svc", flush_interval=0.01)
    ...     backend.append(1, 0.01, 0, 1)
    ...     backend.close()                      # flushes, then CLOSE
    ...     collector.wait_for_streams(1, timeout=5.0)
    True
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        stream: str | None = None,
        capacity: int = 2048,
        max_pending: int = 65536,
        flush_interval: float = 0.05,
        max_batch_records: int = 8192,
        connect_timeout: float = 1.0,
        send_timeout: float = 2.0,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
        close_deadline: float = 2.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity <= 0:
            raise BackendError(f"capacity must be positive, got {capacity}")
        if max_pending <= 0:
            raise BackendError(f"max_pending must be positive, got {max_pending}")
        if max_batch_records <= 0:
            raise BackendError(f"max_batch_records must be positive, got {max_batch_records}")
        self.address = protocol.parse_address(address)
        self.stream = stream if stream is not None else f"hb-{os.getpid()}"
        self._nonce = next(_nonce_counter)
        self.capacity = int(capacity)
        self._buffer = CircularBuffer(self.capacity)
        self._target_min = 0.0
        self._target_max = 0.0
        self._default_window = 0
        self._max_pending = int(max_pending)
        self._flush_interval = float(flush_interval)
        self._max_batch_records = int(max_batch_records)
        self._connect_timeout = float(connect_timeout)
        self._send_timeout = float(send_timeout)
        self._backoff_initial = float(backoff_initial)
        self._backoff_max = float(backoff_max)
        self._close_deadline = float(close_deadline)

        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._queue: deque[np.ndarray] = deque()
        self._pending_records = 0
        self._targets_dirty = False
        self._closing = False
        self._closed = False

        # Transmission statistics, registered so one scrape covers every
        # exporter sharing a registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        labels = {"stream": self.stream}
        self._sent_batches = self.metrics.counter(
            "exporter_sent_batches_total", help="BATCH frames shipped", labels=labels
        )
        self._sent_records = self.metrics.counter(
            "exporter_sent_records_total", help="records shipped", labels=labels
        )
        self._dropped_records = self.metrics.counter(
            "exporter_dropped_records_total",
            help="records shed by drop-oldest backpressure", labels=labels,
        )
        self._connects = self.metrics.counter(
            "exporter_connects_total", help="collector connections established", labels=labels
        )
        self._connect_failures = self.metrics.counter(
            "exporter_connect_failures_total", help="failed collector dials", labels=labels
        )
        self.metrics.gauge(
            "exporter_pending_records", help="records queued for transmission",
            labels=labels, fn=lambda: float(self._pending_records),
        )
        self.metrics.gauge(
            "exporter_connected", help="1 while the collector link is up",
            labels=labels, fn=lambda: 1.0 if self._sock is not None else 0.0,
        )

        self._sock: socket.socket | None = None
        self._sender = threading.Thread(
            target=self._sender_loop, name=f"hb-net-{self.stream}", daemon=True
        )
        self._sender.start()

    # ------------------------------------------------------------------ #
    # Backend interface — the producer's beat path
    # ------------------------------------------------------------------ #
    def append(self, beat: int, timestamp: float, tag: int, thread_id: int) -> None:
        if self._closed or self._closing:
            raise BackendError("network backend is closed")
        record = np.empty(1, dtype=RECORD_DTYPE)
        record[0] = (beat, timestamp, tag, thread_id)
        self._buffer.push_many(record)
        self._enqueue(record)

    def append_many(self, records: np.ndarray) -> None:
        if self._closed or self._closing:
            raise BackendError("network backend is closed")
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"records dtype must be {RECORD_DTYPE}, got {records.dtype}")
        if records.shape[0] == 0:
            return
        self._buffer.push_many(records)
        # The queue keeps its own copy: the caller may reuse its array.
        self._enqueue(records.copy())

    def set_targets(self, target_min: float, target_max: float) -> None:
        if self._closed:
            raise BackendError("network backend is closed")
        with self._lock:
            self._target_min = float(target_min)
            self._target_max = float(target_max)
            self._targets_dirty = True
        self._wake.set()

    def set_default_window(self, window: int) -> None:
        if self._closed:
            raise BackendError("network backend is closed")
        self._default_window = int(window)

    def snapshot(self, n: int | None = None) -> BackendSnapshot:
        """Local view of the stream (identical semantics to ``MemoryBackend``).

        Like ``MemoryBackend``, keeps serving the final history after
        :meth:`close`, so local observers of a finished producer read its
        last state instead of an error.
        """
        return BackendSnapshot(
            records=self._buffer.last_array(n),
            total_beats=self._buffer.total,
            target_min=self._target_min,
            target_max=self._target_max,
            default_window=self._default_window,
        )

    def close(self) -> None:
        """Flush the pending queue (bounded by ``close_deadline``) and stop.

        Idempotent, and deliberately exception-free: teardown must succeed
        even when the collector died first, the socket is half-open, or
        close() races a second close() — the network analogue of the
        shared-memory backend surviving an external unlink.
        """
        with self._lock:
            if self._closed:
                return
            self._closing = True
        # Never join while holding the lock: the sender needs it to drain.
        self._wake.set()
        self._sender.join(timeout=self._close_deadline)
        with self._lock:
            if not self._closed:  # a concurrent close() settles exactly once
                self._closed = True
                undelivered = self._pending_records
                self._pending_records = 0
                self._queue.clear()
                if undelivered:
                    self._dropped_records.inc(undelivered)
        if self._sender.is_alive():
            # The sender is wedged on a slow or dead peer; abort its socket.
            # Setting _closed above makes its loop exit on the next pass, so
            # an abandoned sender can never reconnect and keep transmitting.
            self._abort_socket()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int | bool]:
        """Transmission counters (sent / dropped / reconnects / queue depth).

        A view over the backend's :attr:`metrics` registry; the keys predate
        the registry and stay stable.
        """
        with self._lock:
            pending = self._pending_records
            connected = self._sock is not None
        return {
            "sent_batches": int(self._sent_batches.value),
            "sent_records": int(self._sent_records.value),
            "dropped_records": int(self._dropped_records.value),
            "pending_records": pending,
            "connects": int(self._connects.value),
            "connect_failures": int(self._connect_failures.value),
            "connected": connected,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"NetworkBackend(stream={self.stream!r}, address={host}:{port})"

    # ------------------------------------------------------------------ #
    # Queueing (called from the beat path; must never block on the network)
    # ------------------------------------------------------------------ #
    def _enqueue(self, records: np.ndarray) -> None:
        n = int(records.shape[0])
        with self._lock:
            if n > self._max_pending:
                # A batch larger than the whole queue keeps its newest tail.
                self._dropped_records.inc(n - self._max_pending)
                records = records[n - self._max_pending :]
                n = self._max_pending
            self._queue.append(records)
            self._pending_records += n
            self._trim_pending_locked()
        self._wake.set()

    def _trim_pending_locked(self) -> None:
        """Drop the oldest queued records down to the bound (lock held)."""
        while self._pending_records > self._max_pending:
            oldest = self._queue[0]
            overflow = self._pending_records - self._max_pending
            if oldest.shape[0] <= overflow:
                self._queue.popleft()
                self._pending_records -= oldest.shape[0]
                self._dropped_records.inc(oldest.shape[0])
            else:
                self._queue[0] = oldest[overflow:]
                self._pending_records -= overflow
                self._dropped_records.inc(overflow)

    # ------------------------------------------------------------------ #
    # Sender thread
    # ------------------------------------------------------------------ #
    def _sender_loop(self) -> None:
        backoff = self._backoff_initial
        next_attempt = 0.0
        while True:
            self._wake.wait(timeout=self._flush_interval)
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return  # close() gave up on us; do not touch the wire again
                closing = self._closing
                has_work = bool(self._queue) or self._targets_dirty
            if closing and not has_work:
                break
            if not has_work:
                continue
            now = time.monotonic()
            if self._sock is None:
                if now < next_attempt and not closing:
                    continue
                if not self._connect():
                    backoff = min(backoff * 2.0, self._backoff_max)
                    next_attempt = time.monotonic() + backoff
                    if closing:
                        break  # flush deadline work is pointless with no peer
                    continue
                backoff = self._backoff_initial
            if not self._drain_once():
                continue  # connection lost mid-send; records were requeued
        self._shutdown_socket()

    def _connect(self) -> bool:
        try:
            sock = socket.create_connection(self.address, timeout=self._connect_timeout)
            sock.settimeout(self._send_timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                hello = protocol.encode_hello(
                    self.stream,
                    pid=os.getpid(),
                    nonce=self._nonce,
                    default_window=self._default_window,
                    capacity=self.capacity,
                    target_min=self._target_min,
                    target_max=self._target_max,
                )
                # HELLO already carries the current targets.
                self._targets_dirty = False
            sock.sendall(hello)
        except OSError:
            self._connect_failures.inc()
            return False
        with self._lock:
            self._sock = sock
        self._connects.inc()
        return True

    def _drain_once(self) -> bool:
        """Ship queued targets/records; False when the connection dropped."""
        sock = self._sock
        if sock is None:  # pragma: no cover - only racing an abort
            return False
        with self._lock:
            targets = (self._target_min, self._target_max) if self._targets_dirty else None
            self._targets_dirty = False
            batch = self._pop_batch_locked()
        try:
            if targets is not None:
                sock.sendall(protocol.encode_targets(*targets))
            if batch is not None:
                header, payload = protocol.frame_buffers(
                    protocol.FRAME_BATCH, protocol.batch_payload(batch)
                )
                sock.sendall(header)
                sock.sendall(payload)
        except OSError:
            self._drop_connection(requeue=batch, targets_dirty=targets is not None)
            return False
        if batch is not None:
            self._sent_batches.inc()
            self._sent_records.inc(int(batch.shape[0]))
            if self._queue:
                self._wake.set()  # more pending; come straight back
        return True

    def _pop_batch_locked(self) -> np.ndarray | None:
        """Coalesce up to ``max_batch_records`` queued records (lock held)."""
        if not self._queue:
            return None
        parts: list[np.ndarray] = []
        taken = 0
        while self._queue and taken < self._max_batch_records:
            chunk = self._queue[0]
            room = self._max_batch_records - taken
            if chunk.shape[0] <= room:
                parts.append(self._queue.popleft())
                taken += chunk.shape[0]
            else:
                parts.append(chunk[:room])
                self._queue[0] = chunk[room:]
                taken += room
        self._pending_records -= taken
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _drop_connection(self, *, requeue: np.ndarray | None, targets_dirty: bool) -> None:
        self._shutdown_socket()
        with self._lock:
            if self._closed:
                # close() already settled the books (queue cleared, pending
                # counted as dropped); the in-flight batch joins the dropped
                # tally instead of resurrecting pending on a closed backend.
                if requeue is not None:
                    self._dropped_records.inc(int(requeue.shape[0]))
                return
            if targets_dirty:
                self._targets_dirty = True
            if requeue is not None:
                # Unsent records return to the head of the queue so ordering
                # holds; the bound still applies, trimming their oldest part.
                self._queue.appendleft(requeue)
                self._pending_records += int(requeue.shape[0])
                self._trim_pending_locked()

    def _shutdown_socket(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            if not self._closing:
                sock.close()
                return
            try:
                sock.sendall(protocol.encode_close(self._buffer.total))
            except OSError:
                pass
            sock.close()

    def _abort_socket(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close barely ever raises
                pass
