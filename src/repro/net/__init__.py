"""Networked heartbeat telemetry.

The paper requires the heartbeat buffer to live "in a universally accessible
location" so that *any* external observer can read it.  The memory, file and
shared-memory backends satisfy that on one host; this package carries
heartbeats across machine boundaries so the observer of Figure 1(b) can be a
fleet manager on a different machine entirely:

* :mod:`repro.net.protocol` — the versioned, length-prefixed binary frame
  format (hello / batch / targets / close) with CRC sanity checks and
  zero-copy numpy packing of the shared record dtype;
* :mod:`repro.net.exporter` — :class:`NetworkBackend`, a storage backend that
  buffers beats locally and ships them over TCP on a background thread with
  bounded queueing and drop-oldest backpressure, so the producer's beat path
  never blocks on the network;
* :mod:`repro.net.async_collector` — :class:`AsyncHeartbeatCollector` (also
  exported under its historic name :class:`HeartbeatCollector` from
  :mod:`repro.net.collector`), an event-loop TCP server that multiplexes
  thousands of producer connections through one ``selectors`` loop thread,
  demultiplexes their streams into per-stream in-memory backends and exposes
  them to :class:`repro.core.aggregator.HeartbeatAggregator` via
  ``attach_collector()``;
* :mod:`repro.net.relay` — :class:`RelayForwarder`, the edge half of
  collector federation: collectors built with ``upstream=`` batch their
  streams' deltas into RELAY frames and forward them up a collector tree
  with reconnect/backoff and idempotent replay.

The full byte-level frame format is specified in ``docs/wire-protocol.md``.

Producers that will be observed remotely should stamp beats with a time base
the collector host shares — on the same host ``WallClock(rebase=False)``; the
:func:`repro.core.api.HB_initialize` ``remote=`` mode selects that default.
"""

from repro.net.async_collector import AsyncHeartbeatCollector
from repro.net.collector import CollectorStreamInfo, HeartbeatCollector
from repro.net.exporter import NetworkBackend
from repro.net.protocol import (
    FRAME_BATCH,
    FRAME_CLOSE,
    FRAME_HELLO,
    FRAME_RELAY,
    FRAME_TARGETS,
    Frame,
    FrameDecoder,
    Hello,
    ProtocolError,
    RelayEntry,
    decode_relay,
    encode_relay,
    parse_address,
)
from repro.net.relay import RelayForwarder

__all__ = [
    "NetworkBackend",
    "HeartbeatCollector",
    "AsyncHeartbeatCollector",
    "RelayForwarder",
    "CollectorStreamInfo",
    "RelayEntry",
    "encode_relay",
    "decode_relay",
    "FRAME_RELAY",
    "Frame",
    "FrameDecoder",
    "Hello",
    "ProtocolError",
    "FRAME_HELLO",
    "FRAME_BATCH",
    "FRAME_TARGETS",
    "FRAME_CLOSE",
    "parse_address",
]
